"""DynamicOperand correctness: exactness, accounting, cache hygiene.

The dynamic-operand seam is only admissible if (a) a noiseless operand's
GEMV is *exactly* the integer product of its appended codes on every
kernel (reference / fast / fused gemm) and both growth axes, (b) every
appended cell is accounted — initial programs vs re-programs in
:class:`~repro.rram.crossbar.GemvStats`, pulses in the wear ledger's
dynamic channel — and (c) partial-region writes invalidate *only* the
operand's own tile: static matrices sharing the backend must keep their
cached stacked planes (object identity, not just value equality).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram import (
    CrossbarConfig,
    DynamicOperand,
    FaultModel,
    FaultySimBackend,
    GemvStats,
    KernelPolicy,
    MLC2,
    ProgrammedMatrix,
    SimBackend,
)

WIDTH = 8
CAPACITY = 20


def _codes(rng: np.random.Generator, t: int) -> np.ndarray:
    return rng.integers(-128, 128, size=(t, WIDTH), dtype=np.int64)


def _inputs(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
    return rng.integers(-128, 128, size=(n, dim), dtype=np.int64)


def _operand(grow: str, backend=None, **kwargs) -> DynamicOperand:
    return DynamicOperand(
        CAPACITY,
        WIDTH,
        cell=MLC2,
        grow=grow,
        backend=backend if backend is not None else SimBackend(),
        **kwargs,
    )


class TestExactness:
    @pytest.mark.parametrize("grow", ["wordlines", "bitlines"])
    @pytest.mark.parametrize("mode", ["reference", "fast", "gemm"])
    def test_noiseless_gemv_is_exact_integer_product(self, grow, mode):
        """Chunked appends + every kernel == x @ W.T over the valid prefix."""
        rng = np.random.default_rng(0)
        op = _operand(grow, policy=KernelPolicy(mode=mode))
        rows = []
        for t in (3, 1, 5):
            rows.append(_codes(rng, t))
            op.append(rows[-1])
        dense = np.concatenate(rows)  # (length, WIDTH)
        assert op.length == 9
        if grow == "wordlines":
            x = _inputs(rng, 4, op.length)
            expected = x @ dense
        else:
            x = _inputs(rng, 4, WIDTH)
            expected = x @ dense.T
        out = op.gemv(x)
        np.testing.assert_array_equal(np.asarray(out, dtype=np.int64), expected)

    @pytest.mark.parametrize("grow", ["wordlines", "bitlines"])
    def test_append_after_truncate_overwrites_recycled_rows(self, grow):
        """Recycled rows serve the *new* codes (no stale physical levels)."""
        rng = np.random.default_rng(1)
        op = _operand(grow)
        op.append(_codes(rng, 6))
        op.truncate(2)
        fresh = _codes(rng, 3)
        op.append(fresh)
        x = np.eye(op.length if grow == "wordlines" else WIDTH, dtype=np.int64)
        out = np.asarray(op.gemv(x), dtype=np.int64)
        if grow == "wordlines":
            np.testing.assert_array_equal(out[2:5], fresh)
        else:
            np.testing.assert_array_equal(out[:, 2:5].T, fresh)

    def test_noisy_operand_deviates_but_is_seeded(self):
        """σ > 0 perturbs reads; identical seeds reproduce them exactly."""
        rng_codes = np.random.default_rng(2)
        codes = _codes(rng_codes, 10)
        x = _inputs(rng_codes, 4, 10)
        outs = []
        for _ in range(2):
            op = _operand(
                "wordlines", noise_sigma=0.05, rng=np.random.default_rng(9)
            )
            op.append(codes)
            outs.append(np.asarray(op.gemv(x)))
        np.testing.assert_array_equal(outs[0], outs[1])
        assert np.any(outs[0] != x @ codes)


class TestAccounting:
    def test_watermark_splits_initial_vs_reprogram(self):
        """Rows above the high watermark are initial programs; recycled rows
        are re-programs."""
        rng = np.random.default_rng(3)
        op = _operand("wordlines")
        cells_per_row = WIDTH * op.num_slices
        op.append(_codes(rng, 5))
        assert op.stats.cells_initial_programmed == 5 * cells_per_row
        assert op.stats.cells_reprogrammed == 0
        op.truncate(2)
        op.append(_codes(rng, 4))  # rows 2..5: one above watermark 5
        assert op.stats.cells_initial_programmed == 6 * cells_per_row
        assert op.stats.cells_reprogrammed == 3 * cells_per_row
        assert op.written == 6 and op.length == 6

    def test_explicit_stats_sink_overrides_default(self):
        rng = np.random.default_rng(4)
        op = _operand("bitlines")
        sink = GemvStats()
        op.append(_codes(rng, 2), stats=sink)
        assert sink.cells_initial_programmed == 2 * WIDTH * op.num_slices
        assert op.stats.cells_initial_programmed == 0

    def test_ledger_dynamic_channel_records_appends(self):
        rng = np.random.default_rng(5)
        backend = SimBackend()
        op = _operand("wordlines", backend=backend)
        op.append(_codes(rng, 3))
        op.append(_codes(rng, 1))
        assert backend.ledger.dynamic_writes == 2
        pulses = backend.ledger.dynamic_write_pulses
        assert set(pulses) == {op.tile_id} and pulses[op.tile_id] > 0
        assert backend.health_report()["dynamic_writes"] == 2
        assert op.wear_fraction() > 0.0


class TestCacheHygiene:
    def test_static_stacked_planes_survive_dynamic_appends(self):
        """Partial writes must not invalidate *other* tiles' derived planes."""
        rng = np.random.default_rng(6)
        backend = SimBackend()
        static = ProgrammedMatrix(
            rng.integers(-8, 8, size=(6, 12)).astype(np.float64),
            cell=MLC2,
            backend=backend,
        )
        before = static.stacked_planes()
        op = _operand("wordlines", backend=backend)
        op.append(_codes(rng, 4))
        assert static.stacked_planes() is before

    def test_dynamic_view_reflects_appends_immediately(self):
        """The operand's own derived cache re-keys on every append."""
        rng = np.random.default_rng(7)
        op = _operand("wordlines")
        first = _codes(rng, 3)
        op.append(first)
        x = np.eye(3, dtype=np.int64)
        np.testing.assert_array_equal(np.asarray(op.gemv(x), np.int64), first)
        second = _codes(rng, 2)
        op.append(second)
        x5 = np.eye(5, dtype=np.int64)
        np.testing.assert_array_equal(
            np.asarray(op.gemv(x5), np.int64), np.concatenate([first, second])
        )


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(ValueError, match="positive"):
            DynamicOperand(0, WIDTH, backend=SimBackend())
        with pytest.raises(ValueError, match="grow"):
            DynamicOperand(4, WIDTH, grow="diagonal", backend=SimBackend())

    def test_append_shape_capacity_and_truncate_bounds(self):
        rng = np.random.default_rng(8)
        op = _operand("wordlines")
        with pytest.raises(ValueError, match="expected"):
            op.append(np.zeros((2, WIDTH + 1), dtype=np.int64))
        with pytest.raises(ValueError, match="capacity"):
            op.append(_codes(rng, CAPACITY + 1))
        op.append(_codes(rng, 2))
        with pytest.raises(ValueError, match=r"\[0, 2\]"):
            op.truncate(3)
        with pytest.raises(ValueError, match=r"\[0, 2\]"):
            op.truncate(-1)
        assert op.append(np.zeros((0, WIDTH))) == 2  # no-op append

    def test_gemv_guards(self):
        rng = np.random.default_rng(9)
        op = _operand("wordlines")
        with pytest.raises(ValueError, match="empty"):
            op.gemv(np.zeros((1, 1), dtype=np.int64))
        op.append(_codes(rng, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            op.gemv(np.zeros((1, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="signed"):
            op.gemv(np.full((1, 3), 200, dtype=np.int64))


class TestFaultyBackend:
    def test_stuck_cells_are_deterministic_and_ignore_appends(self):
        """Same seed → bit-identical lifetime; stuck cells defy programming."""
        rng = np.random.default_rng(10)
        codes = _codes(rng, 10)
        x = _inputs(rng, 4, 10)
        outs = []
        for _ in range(2):
            backend = FaultySimBackend(
                fault=FaultModel(stuck_off_rate=0.05, stuck_on_rate=0.02), seed=11
            )
            op = _operand("wordlines", backend=backend)
            op.append(codes[:6])
            op.append(codes[6:])
            outs.append(np.asarray(op.gemv(x)))
        np.testing.assert_array_equal(outs[0], outs[1])
        clean = _operand("wordlines")
        clean.append(codes)
        assert np.any(outs[0] != np.asarray(clean.gemv(x)))
