"""Sharded multi-chip execution: tensor/pipeline parallelism over a mesh.

The functional counterpart of :mod:`repro.arch.scaling` (Fig. 17): a
:class:`DeviceMesh` of virtual HyFlexPIM chips, a :class:`ShardPlan` that
partitions every crossbar-deployed layer's mapped arrays across PUs
(tensor parallelism, OCI partial-sum aggregation) and assigns whole
Transformer blocks to chips (pipeline parallelism, PCIe-6.0 hidden-vector
handoffs), and a :class:`HardwareProjection` that turns the deployed
geometry plus the links actually exercised into projected latency and
throughput.

>>> mesh = DeviceMesh(num_chips=1)
>>> plan = ShardPlan.build(layer_plans, mesh, tensor_parallel=4)
>>> deploy_sharded(hybrid_layers, plan)        # per-shard programmed arrays
>>> HardwareProjection(plan, hidden_dim=d_model).pipeline_rate_tokens_per_s()
"""

from repro.dist.attention import AttentionPlacement, place_attention_heads
from repro.dist.mesh import DeviceMesh, LinkTraffic
from repro.dist.pipeline import PipelinedBlockExecutor
from repro.dist.plan import (
    LayerShardAssignment,
    ShardPlan,
    compacted_tile_aligned,
    shard_layer_plan,
)
from repro.dist.projection import HardwareProjection

__all__ = [
    "AttentionPlacement",
    "DeviceMesh",
    "HardwareProjection",
    "LayerShardAssignment",
    "LinkTraffic",
    "PipelinedBlockExecutor",
    "ShardPlan",
    "compacted_tile_aligned",
    "deploy_sharded",
    "place_attention_heads",
    "shard_layer_plan",
]


def deploy_sharded(layers, plan: ShardPlan, parallel: bool = False) -> ShardPlan:
    """Deploy every :class:`~repro.pim.hybrid.HybridLinear` per ``plan``.

    ``layers`` is the name -> layer mapping returned by
    :func:`repro.pim.attach_hybrid_layers`; each layer is partitioned into
    the plan's rank slices on the plan's mesh.  Layers the plan does not
    cover are left unsharded.  Returns ``plan`` for chaining.
    """
    for name, layer in dict(layers).items():
        assignment = plan.layers.get(name)
        if assignment is None:
            continue
        layer.deploy(
            plan.mesh,
            rank_slices=assignment.rank_slices,
            chip=assignment.chip,
            parallel=parallel,
        )
    return plan
