"""CrossbarBackend protocol tests: golden traces, faults, drift, wear.

The backend refactor is only admissible because :class:`SimBackend` is
*bitwise-equal* to the pre-backend inline code path — the golden hashes
below were captured on the seed tree before ``repro.rram.backend`` existed
and pin down the exact outputs of both kernels over every cell type, noisy
and clean, unsharded and 1/2/4-way sharded.  On top, the fault backend's
mechanisms (stuck cells, drift, temperature noise, wear) must be seeded,
deterministic, and only able to change effective planes across
``advance``/``reprogram`` epochs.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.dist import DeviceMesh
from repro.pim.hybrid import HybridLinear
from repro.rram import (
    CELL_TYPES,
    CrossbarConfig,
    DEFAULT_NOISE,
    FaultModel,
    FaultySimBackend,
    GemvStats,
    KernelPolicy,
    MLC2,
    ProgrammedMatrix,
    SLC,
    SimBackend,
    WearLedger,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.rram.noise import NoiseSpec
from repro.svd.pipeline import LayerPlan

# Captured on the pre-backend seed tree (see module docstring).
GOLDEN = {
    "gemv/SLC/clean/fast": "b10ce57987072426",
    "gemv/SLC/clean/reference": "b10ce57987072426",
    "gemv/SLC/noisy/fast": "b10ce57987072426",
    "gemv/SLC/noisy/reference": "b10ce57987072426",
    "gemv/MLC2/clean/fast": "b10ce57987072426",
    "gemv/MLC2/clean/reference": "b10ce57987072426",
    "gemv/MLC2/noisy/fast": "ebdcfc6d5fc45d7c",
    "gemv/MLC2/noisy/reference": "ebdcfc6d5fc45d7c",
    "gemv/MLC3/clean/fast": "cd2e951b239f45a7",
    "gemv/MLC3/clean/reference": "cd2e951b239f45a7",
    "gemv/MLC3/noisy/fast": "b370b63c100feee6",
    "gemv/MLC3/noisy/reference": "b370b63c100feee6",
    "gemv/MLC4/clean/fast": "9187e4103ec5cc22",
    "gemv/MLC4/clean/reference": "9187e4103ec5cc22",
    "gemv/MLC4/noisy/fast": "9392712a34e11db7",
    "gemv/MLC4/noisy/reference": "9392712a34e11db7",
    "hybrid/clean/1way": "760b1320902dbf1d",
    "hybrid/clean/2way": "760b1320902dbf1d",
    "hybrid/clean/4way": "760b1320902dbf1d",
    "hybrid/noisy/1way": "4da8fdaefeaa6d0a",
    "hybrid/noisy/2way": "bff41899844b0f49",
    "hybrid/noisy/4way": "8f480e8178b05f75",
}


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _config_for(cell_name: str) -> CrossbarConfig:
    """3-/4-bit cells need fewer rows to fit the 7-bit physical SAR ADC."""
    if CELL_TYPES[cell_name].bits <= 2:
        return CrossbarConfig()
    return CrossbarConfig(rows=16, cols=32)


class TestGoldenTraces:
    """SimBackend must replay the pre-backend outputs bit-for-bit."""

    @pytest.mark.parametrize("cell_name", sorted(CELL_TYPES))
    @pytest.mark.parametrize("noisy", [False, True], ids=["clean", "noisy"])
    @pytest.mark.parametrize("mode", ["fast", "reference"])
    def test_gemv_matches_pre_backend_hash(self, cell_name, noisy, mode):
        cell = CELL_TYPES[cell_name]
        rng = np.random.default_rng(1234)
        x = rng.integers(-128, 128, size=(4, 100))
        w = rng.integers(-128, 128, size=(48, 100))
        matrix = ProgrammedMatrix(
            w,
            cell,
            noise_sigma=DEFAULT_NOISE.sigma(cell) if noisy else 0.0,
            rng=np.random.default_rng(7),
            config=_config_for(cell_name),
            policy=KernelPolicy(mode=mode),
        )
        out = matrix.gemv(x, stats=GemvStats())
        key = f"gemv/{cell_name}/{'noisy' if noisy else 'clean'}/{mode}"
        assert _digest(out) == GOLDEN[key]

    @pytest.mark.parametrize("noisy", [False, True], ids=["clean", "noisy"])
    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_sharded_hybrid_matches_pre_backend_hash(self, noisy, ways):
        rank, din, dout = 40, 64, 32
        prng = np.random.default_rng(5)
        plan = LayerPlan(
            name="blocks.0.l",
            a_matrix=prng.normal(size=(rank, din)) * 0.1,
            b_matrix=prng.normal(size=(dout, rank)) * 0.1,
            bias=None,
            protected_ranks=np.arange(rank) < 8,
            sigma_gradients=np.linspace(1, 0, rank),
        )
        xf = prng.normal(size=(3, din))
        noise = DEFAULT_NOISE if noisy else NoiseSpec.noiseless()
        layer = HybridLinear(plan, noise=noise, mode="crossbar", seed=3)
        layer.deploy(DeviceMesh(num_chips=1), tensor_parallel=ways)
        out = layer.forward(xf)
        key = f"hybrid/{'noisy' if noisy else 'clean'}/{ways}way"
        assert _digest(out.data.astype(np.float64)) == GOLDEN[key]

    def test_explicit_sim_backend_equals_default(self):
        rng = np.random.default_rng(11)
        w = rng.integers(-128, 128, size=(8, 32))
        x = rng.integers(-128, 128, size=(2, 32))
        via_default = ProgrammedMatrix(
            w, MLC2, noise_sigma=0.05, rng=np.random.default_rng(3)
        ).gemv(x)
        via_explicit = ProgrammedMatrix(
            w, MLC2, noise_sigma=0.05, rng=np.random.default_rng(3),
            backend=SimBackend(),
        ).gemv(x)
        np.testing.assert_array_equal(via_default, via_explicit)


class TestBackendPlumbing:
    def test_default_backend_roundtrip(self):
        original = get_default_backend()
        replacement = SimBackend()
        try:
            assert set_default_backend(replacement) is original
            assert get_default_backend() is replacement
            assert resolve_backend(None) is replacement
            other = SimBackend()
            assert resolve_backend(other) is other
        finally:
            set_default_backend(original)

    def test_set_default_backend_rejects_non_backend(self):
        with pytest.raises(TypeError):
            set_default_backend(object())

    def test_noiseless_planes_are_the_integer_slices(self):
        w = np.arange(-8, 8).reshape(4, 4)
        matrix = ProgrammedMatrix(w, SLC, noise_sigma=0.0, backend=SimBackend())
        assert matrix.is_noiseless
        assert matrix.planes is matrix.slices.values

    def test_health_report_shape(self):
        backend = SimBackend()
        ProgrammedMatrix(np.ones((2, 4)), SLC, noise_sigma=0.0, backend=backend)
        report = backend.health_report()
        assert report["backend"] == "sim"
        assert report["tiles"] == 1
        assert report["programs"] == 1
        assert report["reprograms"] == 0
        assert report["total_write_pulses"] == 2 * 4 * 8  # cells x SLC pulses
        assert report["max_wear_fraction"] > 0.0

    def test_advance_rejects_negative(self):
        backend = SimBackend()
        with pytest.raises(ValueError):
            backend.advance(seconds=-1.0)
        with pytest.raises(ValueError):
            backend.advance(writes=-1)


class TestFaultModelValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultModel(stuck_off_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(stuck_off_rate=0.7, stuck_on_rate=0.7)
        with pytest.raises(ValueError):
            FaultModel(drift_nu=-1.0)
        with pytest.raises(ValueError):
            FaultModel(drift_t0_s=0.0)
        with pytest.raises(ValueError):
            FaultModel(temp_sigma_per_c=-0.01)

    def test_active_flag(self):
        assert not FaultModel().active
        assert FaultModel(stuck_off_rate=0.01).active
        assert FaultModel(drift_nu=0.05).active
        assert FaultModel(temperature_c=85.0, temp_sigma_per_c=1e-4).active
        # Below-reference temperature adds no noise.
        assert not FaultModel(temperature_c=0.0, temp_sigma_per_c=1e-4).active

    def test_drift_factor_monotone(self):
        fault = FaultModel(drift_nu=0.05, drift_t0_s=3600.0)
        day = fault.drift_factor(86_400.0)
        week = fault.drift_factor(7 * 86_400.0)
        assert 0.0 < week < day < 1.0
        assert fault.drift_factor(0.0) == 1.0
        assert FaultModel().drift_factor(1e9) == 1.0


class TestFaultySimBackend:
    def _matrix(self, backend, seed=7, sigma=0.02, shape=(12, 40)):
        rng = np.random.default_rng(99)
        w = rng.integers(-128, 128, size=shape)
        return ProgrammedMatrix(
            w, MLC2, noise_sigma=sigma, rng=np.random.default_rng(seed),
            backend=backend,
        )

    def test_identical_seeds_reproduce_planes_bitwise(self):
        fault = FaultModel(
            stuck_off_rate=0.01,
            stuck_on_rate=0.01,
            drift_nu=0.05,
            temperature_c=85.0,
            temp_sigma_per_c=1e-4,
        )
        planes = []
        for _ in range(2):
            backend = FaultySimBackend(fault=fault, seed=42)
            matrix = self._matrix(backend)
            backend.advance(seconds=86_400.0)
            planes.append(np.array(matrix.planes))
        np.testing.assert_array_equal(planes[0], planes[1])

    def test_planes_stable_within_epoch_and_change_across(self):
        fault = FaultModel(temperature_c=85.0, temp_sigma_per_c=1e-4)
        backend = FaultySimBackend(fault=fault, seed=1)
        matrix = self._matrix(backend)
        first = np.array(matrix.planes)
        np.testing.assert_array_equal(first, matrix.planes)  # cached, same epoch
        backend.advance(seconds=1.0)
        assert not np.array_equal(first, matrix.planes)  # fresh read-noise draw

    def test_stuck_cells_pin_levels_and_fraction(self):
        fault = FaultModel(stuck_off_rate=0.05, stuck_on_rate=0.05)
        backend = FaultySimBackend(fault=fault, seed=3)
        matrix = self._matrix(backend, sigma=0.0)
        planes = np.asarray(matrix.planes)
        tile = matrix._tile
        assert tile.stuck_off.any() and tile.stuck_on.any()
        np.testing.assert_array_equal(planes[tile.stuck_off], 0.0)
        np.testing.assert_array_equal(planes[tile.stuck_on], float(MLC2.max_level))
        fraction = backend.stuck_cell_fraction()
        assert 0.0 < fraction < 0.2
        assert not matrix.is_noiseless  # faults forbid the exact shortcut

    def test_drift_shrinks_levels_and_reprogram_resets(self):
        fault = FaultModel(drift_nu=0.1, drift_t0_s=3600.0)
        backend = FaultySimBackend(fault=fault, seed=5)
        matrix = self._matrix(backend, sigma=0.0)
        fresh = np.asarray(matrix.planes, dtype=np.float64)
        backend.advance(seconds=30 * 86_400.0)
        drifted = np.asarray(matrix.planes, dtype=np.float64)
        assert drifted[fresh > 0].max() < fresh[fresh > 0].max()
        expected = fault.drift_factor(30 * 86_400.0)
        ratio = drifted[fresh > 0] / fresh[fresh > 0]
        np.testing.assert_allclose(ratio, expected, rtol=1e-4)
        matrix.reprogram()
        recovered = np.asarray(matrix.planes, dtype=np.float64)
        np.testing.assert_allclose(
            recovered[fresh > 0] / fresh[fresh > 0], 1.0, rtol=1e-6
        )

    def test_gemv_runs_under_faults_and_drift_hurts_accuracy(self):
        fault = FaultModel(stuck_off_rate=0.02, drift_nu=0.2, drift_t0_s=3600.0)
        backend = FaultySimBackend(fault=fault, seed=9)
        matrix = self._matrix(backend, sigma=0.0)
        x = np.random.default_rng(0).integers(-128, 128, size=(3, 40))
        out_fresh = matrix.gemv(x)
        assert out_fresh.shape == (3, 12)
        backend.advance(seconds=365 * 86_400.0)
        out_drifted = matrix.gemv(x)
        # A year of drift must perturb the analog result more than day zero.
        dense_t = (
            matrix.slices.values.astype(np.int64) @ matrix.slices.slice_factors
            - matrix.slices.offset
        )
        exact = x @ dense_t
        err_fresh = np.abs(out_fresh - exact).sum()
        err_drifted = np.abs(out_drifted - exact).sum()
        assert err_drifted > err_fresh

    def test_health_report_includes_fault_fields(self):
        fault = FaultModel(stuck_off_rate=0.01, drift_nu=0.05, temperature_c=60.0)
        backend = FaultySimBackend(fault=fault, seed=2)
        self._matrix(backend)
        backend.advance(seconds=86_400.0)
        report = backend.health_report()
        assert report["backend"] == "faulty-sim"
        assert report["stuck_cell_fraction"] > 0.0
        assert 0.0 < report["worst_drift_factor"] < 1.0
        assert report["temperature_c"] == 60.0


class TestWearRoundTrip:
    """rram.endurance wear accounting round-trips through advance()."""

    def test_program_and_reprogram_totals_match_ledger(self):
        backend = SimBackend()
        slc = ProgrammedMatrix(np.ones((4, 8)), SLC, backend=backend)
        mlc = ProgrammedMatrix(np.ones((4, 8)), MLC2, backend=backend)
        slc_cells = slc._tile.num_cells  # 8*4*8 slices
        mlc_cells = mlc._tile.num_cells
        assert slc_cells == 8 * 4 * 8 and mlc_cells == 8 * 4 * 4
        expected = slc_cells * SLC.write_pulses + mlc_cells * MLC2.write_pulses
        assert backend.ledger.total_write_pulses == expected
        stats = GemvStats()
        slc.reprogram(stats=stats)
        slc.reprogram(stats=stats)
        mlc.reprogram(stats=stats)
        assert stats.cells_reprogrammed == 2 * slc_cells + mlc_cells
        assert backend.ledger.programs == 2
        assert backend.ledger.reprograms == 3
        assert backend.ledger.total_write_pulses == (
            3 * slc_cells * SLC.write_pulses + 2 * mlc_cells * MLC2.write_pulses
        )

    def test_wear_fraction_counts_programs_and_background(self):
        ledger = WearLedger(endurance_cycles=1000.0)
        backend = SimBackend(ledger=ledger)
        matrix = ProgrammedMatrix(np.ones((2, 4)), SLC, backend=backend)
        tile_id = matrix._tile.tile_id
        assert ledger.wear_fraction(tile_id) == pytest.approx(1 / 1000)
        matrix.reprogram()
        assert ledger.wear_fraction(tile_id) == pytest.approx(2 / 1000)
        backend.advance(writes=500)
        assert ledger.wear_fraction(tile_id) == pytest.approx(502 / 1000)
        assert ledger.wear_fraction(999) == pytest.approx(500 / 1000)  # background only

    def test_wear_scaled_reprogram_sigma(self):
        """A worn tile re-programs with inflated sigma on the faulty backend."""
        fault = FaultModel(wear_sigma_growth=100.0, endurance_cycles=1000.0)
        backend = FaultySimBackend(fault=fault, seed=0)
        worn = FaultySimBackend(fault=fault, seed=0)
        rng = np.random.default_rng(31)
        w = rng.integers(-128, 128, size=(8, 16))
        m_fresh = ProgrammedMatrix(
            w, MLC2, noise_sigma=0.02, rng=np.random.default_rng(1), backend=backend
        )
        m_worn = ProgrammedMatrix(
            w, MLC2, noise_sigma=0.02, rng=np.random.default_rng(1), backend=worn
        )
        worn.advance(writes=900)  # near end-of-life
        m_fresh.reprogram()
        m_worn.reprogram()
        ideal = m_fresh._tile.ideal_levels.astype(np.float64)
        dev_fresh = np.abs(np.asarray(m_fresh.planes) - ideal)
        dev_worn = np.abs(np.asarray(m_worn.planes) - ideal)
        assert dev_worn.mean() > dev_fresh.mean()

    def test_ledger_report_and_validation(self):
        ledger = WearLedger()
        with pytest.raises(ValueError):
            ledger.record_program(0, 0, 1)
        with pytest.raises(ValueError):
            ledger.record_background(-1.0)
        ledger.record_program(0, 10, 4)
        ledger.record_program(0, 10, 4, reprogram=True)
        report = ledger.report()
        assert report["programs"] == 1
        assert report["reprograms"] == 1
        assert report["total_write_pulses"] == 80
