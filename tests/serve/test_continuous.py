"""Tests for iteration-level (continuous) batching in the serving engine.

Covers the golden-trace equivalence (static ≡ continuous ≡ one-shot
generate, across GEMV kernel modes), deterministic fake-clock admission
edges (every engine timestamp rides the injectable clock), TTFT/TPOT
accounting, streaming callbacks and the max_tokens admission budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.rram import KernelPolicy, kernel_policy
from repro.serve import ServingEngine
from repro.svd.pipeline import LayerPlan


@pytest.fixture
def model():
    return DecoderLM(
        TransformerConfig(
            vocab_size=40,
            d_model=32,
            num_heads=4,
            num_layers=2,
            d_ff=64,
            max_seq_len=32,
            seed=5,
        )
    )


class FakeClock:
    """Deterministic injectable time source for scheduler tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _golden_trace(vocab: int, seed: int = 77) -> list[tuple[np.ndarray, int]]:
    """Fixed seeded mixed-length request trace (prompt, budget)."""
    rng = np.random.default_rng(seed)
    trace = []
    for i in range(7):
        prompt = rng.integers(0, vocab, size=int(rng.integers(2, 9)))
        budget = 12 if i % 3 == 2 else int(rng.integers(2, 6))
        trace.append((prompt, budget))
    return trace


def _replay(engine: ServingEngine, trace) -> dict[int, list[int]]:
    ids = [engine.submit(prompt, budget) for prompt, budget in trace]
    results = {r.request_id: r for r in engine.run_until_idle()}
    return {i: results[rid].tokens.tolist() for i, rid in enumerate(ids)}


class TestGoldenTrace:
    def test_static_continuous_and_solo_identical(self, model):
        """The deterministic trace emits identical per-request tokens under
        static scheduling, continuous scheduling and one-shot generate."""
        trace = _golden_trace(model.config.vocab_size)
        static = _replay(ServingEngine(model, max_batch_size=3, scheduler="static"), trace)
        continuous = _replay(
            ServingEngine(model, max_batch_size=3, scheduler="continuous"), trace
        )
        assert static == continuous
        for i, (prompt, budget) in enumerate(trace):
            solo = model.generate(prompt, budget)
            assert continuous[i] == solo[len(prompt) :].tolist()

    def test_trace_with_eos_identical(self, model):
        trace = _golden_trace(model.config.vocab_size, seed=13)
        # Pick an EOS id that actually occurs in free-running generation so
        # early stopping is exercised, not vacuous.
        free = model.generate(trace[0][0], 12)
        eos = int(free[len(trace[0][0])])
        static = _replay(
            ServingEngine(model, max_batch_size=3, scheduler="static", eos_id=eos), trace
        )
        continuous = _replay(
            ServingEngine(model, max_batch_size=3, scheduler="continuous", eos_id=eos),
            trace,
        )
        assert static == continuous
        assert any(tokens and tokens[-1] == eos for tokens in continuous.values())

    @pytest.mark.slow
    def test_trace_identical_across_kernel_modes(self):
        """Crossbar-deployed trace replay: reference ≡ fast kernels, and
        static ≡ continuous within each mode."""
        rng = np.random.default_rng(3)
        config = TransformerConfig(
            vocab_size=16, d_model=8, num_heads=2, num_layers=1, d_ff=16,
            max_seq_len=24, seed=3,
        )
        lm = DecoderLM(config)
        plans = {}
        for name, linear in lm.iter_static_linears():
            out_f, in_f = linear.weight.data.shape
            r = min(out_f, in_f)
            mask = np.zeros(r, dtype=bool)
            mask[: r // 2] = True
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(r),
            )
        calib = rng.integers(0, 16, size=(2, 8))
        trace = [
            (np.array([1, 5, 3]), 4),
            (np.array([2, 2, 7, 9, 4]), 6),
            (np.array([8, 1]), 3),
            (np.array([4, 11, 6, 2]), 5),
        ]
        outputs = {}
        for mode in ("reference", "fast"):
            with kernel_policy(KernelPolicy(mode=mode)):
                for scheduler in ("static", "continuous"):
                    engine = ServingEngine.deploy(
                        lm, plans, calibration_prompts=calib, mode="crossbar",
                        max_batch_size=2, scheduler=scheduler,
                    )
                    outputs[(mode, scheduler)] = _replay(engine, trace)
        reference = outputs[("reference", "static")]
        for key, value in outputs.items():
            assert value == reference, key


class TestContinuousSemantics:
    def test_long_request_does_not_stall_short_ones(self, model, rng):
        """The headline behaviour: a long generation keeps decoding while
        short requests admitted later finish and new ones join mid-flight."""
        engine = ServingEngine(model, max_batch_size=2)
        long_id = engine.submit(rng.integers(0, 40, size=4), 24)
        short_a = engine.submit(rng.integers(0, 40, size=4), 2)
        # Fill both rows, decode until the short request retires.
        results: dict[int, object] = {}
        while short_a not in results:
            for r in engine.step(force=True):
                results[r.request_id] = r
        assert engine.in_flight == 1  # long request still decoding
        # A request submitted now joins mid-flight (no batch boundary).
        # One step = admission prefill (first token) + one decode token, so
        # a budget of 4 is still in flight after a single step.
        short_b = engine.submit(rng.integers(0, 40, size=4), 4)
        engine.step()
        assert engine.in_flight == 2
        for r in engine.run_until_idle():
            results[r.request_id] = r
        assert results[long_id].tokens.size == 24
        assert results[short_b].tokens.size == 4

    def test_no_joint_geometry_constraint(self, model, rng):
        """Long-prompt/short-budget + short-prompt/long-budget cannot share
        a static batch (32 positions) but decode concurrently under
        continuous scheduling, each row at its own length."""
        engine = ServingEngine(model, max_batch_size=2)
        a = engine.submit(rng.integers(0, 40, size=24), 8)
        b = engine.submit(rng.integers(0, 40, size=4), 28)
        engine.step(force=True)
        assert engine.in_flight == 2  # admitted together; static must split
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[a].tokens.size == 8
        assert results[b].tokens.size == 28

    def test_zero_budget_request_completes_immediately(self, model, rng):
        engine = ServingEngine(model)
        rid = engine.submit(rng.integers(0, 40, size=4), 0)
        [result] = engine.run_until_idle()
        assert result.request_id == rid
        assert result.tokens.size == 0
        assert engine.in_flight == 0

    def test_row_compaction_under_churn(self, model, rng):
        """Mixed budgets force mid-prefix retirements; every request still
        matches its solo generation (compaction must not corrupt rows)."""
        engine = ServingEngine(model, max_batch_size=4)
        prompts = [rng.integers(0, 40, size=int(n)) for n in rng.integers(2, 9, size=10)]
        budgets = [int(b) for b in rng.integers(1, 14, size=10)]
        ids = [engine.submit(p, b) for p, b in zip(prompts, budgets)]
        results = {r.request_id: r for r in engine.run_until_idle()}
        for rid, prompt, budget in zip(ids, prompts, budgets):
            solo = model.generate(prompt, budget)
            np.testing.assert_array_equal(results[rid].tokens, solo[len(prompt) :])
        churn = engine._continuous.slots.stats
        assert churn.checkouts == 10
        assert churn.retirements == 10
        assert churn.compaction_moves > 0  # mid-prefix retirements happened
        assert engine._continuous.live == 0
        assert engine._continuous.reserved_tokens == 0


class TestFakeClockAdmission:
    def test_idle_engine_respects_max_wait_edge(self, model, rng):
        """Admission edge: strictly below max_wait_s nothing starts; at
        exactly max_wait_s the oldest request is admitted."""
        clock = FakeClock()
        engine = ServingEngine(
            model, max_batch_size=4, max_wait_s=1.0, clock=clock, scheduler="continuous"
        )
        engine.submit(rng.integers(0, 40, size=4), 3)
        assert engine.step() == []
        assert engine.in_flight == 0
        clock.now = 0.999999
        assert engine.step() == []
        clock.now = 1.0  # inclusive edge: waited >= max_wait_s
        engine.step()
        assert engine.in_flight == 1

    def test_full_queue_starts_without_waiting(self, model, rng):
        clock = FakeClock()
        engine = ServingEngine(
            model, max_batch_size=2, max_wait_s=100.0, clock=clock
        )
        engine.submit(rng.integers(0, 40, size=4), 4)
        assert engine.step() == []
        engine.submit(rng.integers(0, 40, size=4), 4)
        engine.step()  # queue reached max_batch_size -> start immediately
        assert engine.in_flight == 2

    def test_mid_flight_join_ignores_max_wait(self, model, rng):
        """Once rows are live, a fresh request joins the moment a row is
        free — max_wait_s only gates starting from idle."""
        clock = FakeClock()
        engine = ServingEngine(
            model, max_batch_size=2, max_wait_s=100.0, clock=clock
        )
        engine.submit(rng.integers(0, 40, size=4), 6)
        clock.now = 100.0  # let the first request start
        engine.step()
        assert engine.in_flight == 1
        late = engine.submit(rng.integers(0, 40, size=4), 4)
        engine.step()  # clock has NOT advanced past 100 + max_wait
        assert engine.in_flight == 2
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[late].tokens.size == 4

    def test_all_timing_rides_the_injected_clock(self, model, rng):
        """submitted_at / TTFT / latency are deterministic functions of the
        fake clock — no wall-clock flakiness anywhere in the pipeline."""
        clock = FakeClock()
        engine = ServingEngine(model, clock=clock)
        rid = engine.submit(rng.integers(0, 40, size=4), 3)
        assert engine._ingress[0].submitted_at == 0.0
        clock.now = 5.0
        engine.step(force=True)  # prefill + tokens 1 and 2 at t=5
        clock.now = 6.0
        [result] = engine.run_until_idle()  # third token at t=6
        assert result.request_id == rid
        assert result.ttft_s == 5.0
        assert result.latency_s == 6.0
        assert result.tpot_s == 0.5  # (6 - 5) / (3 - 1)
        assert result.queued_s == 5.0
        assert engine.stats.mean_ttft_s == 5.0


class TestLatencyStats:
    def test_ttft_precedes_completion_for_long_requests(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2)
        [result] = engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=12)
        assert 0 < result.ttft_s < result.latency_s
        assert result.tpot_s > 0
        stats = engine.stats.as_dict()
        assert stats["mean_ttft_s"] < stats["mean_latency_s"]
        assert stats["iterations"] > 0 and stats["batches"] == 0

    def test_static_ttft_equals_latency(self, model, rng):
        """Static batches cannot stream: the first token is only visible at
        batch completion, and the stats must say so honestly."""
        engine = ServingEngine(model, scheduler="static")
        [result] = engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=6)
        assert result.ttft_s == result.latency_s
        assert result.tpot_s > 0
        assert engine.stats.batches == 1 and engine.stats.iterations == 0


class TestStreamingCallbacks:
    def test_tokens_stream_in_emission_order(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2)
        seen: list[tuple[int, int]] = []
        ids = [
            engine.submit(
                rng.integers(0, 40, size=4), 5, on_token=lambda r, t: seen.append((r, t))
            )
            for _ in range(2)
        ]
        results = {r.request_id: r for r in engine.run_until_idle()}
        for rid in ids:
            streamed = [t for r, t in seen if r == rid]
            assert streamed == results[rid].tokens.tolist()

    def test_streaming_starts_before_completion(self, model, rng):
        """Continuous scheduling delivers the first token while decode is
        still in flight — the whole point of iteration-level batching."""
        engine = ServingEngine(model)
        seen: list[int] = []
        engine.submit(rng.integers(0, 40, size=4), 8, on_token=lambda r, t: seen.append(t))
        engine.step(force=True)
        assert len(seen) >= 1  # first token already out
        assert engine.in_flight == 1  # …but the request is not done
        [result] = engine.run_until_idle()
        assert seen == result.tokens.tolist()

    def test_static_fires_callbacks_at_batch_completion(self, model, rng):
        engine = ServingEngine(model, scheduler="static")
        seen: list[int] = []
        rid = engine.submit(
            rng.integers(0, 40, size=4), 4, on_token=lambda r, t: seen.append(t)
        )
        assert seen == []
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert seen == results[rid].tokens.tolist()


class TestTokenBudgetAdmission:
    def test_budget_limits_concurrency(self, model, rng):
        """max_tokens bounds reserved KV positions; the third request waits
        even though a row is free."""
        engine = ServingEngine(model, max_batch_size=4, max_tokens=20)
        for _ in range(3):
            engine.submit(rng.integers(0, 40, size=4), 6)  # 10 tokens each
        engine.step(force=True)
        assert engine.in_flight == 2  # 2 x 10 <= 20; a third would overflow
        assert engine.pending == 1
        results = engine.run_until_idle()
        assert len(results) == 3
        assert all(r.tokens.size == 6 for r in results)

    def test_head_of_line_keeps_fifo(self, model, rng):
        """A big head request never lets smaller later ones jump the queue."""
        engine = ServingEngine(model, max_batch_size=4, max_tokens=24)
        small_a = engine.submit(rng.integers(0, 40, size=4), 6)  # 10
        big = engine.submit(rng.integers(0, 40, size=8), 12)  # 20: must wait
        small_b = engine.submit(rng.integers(0, 40, size=4), 2)  # 6: fits, but FIFO
        engine.step(force=True)
        assert engine.in_flight == 1  # only small_a; big blocks the line
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[big].tokens.size == 12
        assert results[small_a].tokens.size == 6
        assert results[small_b].tokens.size == 2

    def test_submit_rejects_request_over_budget(self, model, rng):
        engine = ServingEngine(model, max_batch_size=4, max_tokens=10)
        with pytest.raises(ValueError):
            engine.submit(rng.integers(0, 40, size=8), 8)

    def test_static_rejects_max_tokens(self, model):
        with pytest.raises(ValueError):
            ServingEngine(model, scheduler="static", max_tokens=32)

    def test_rejects_unknown_scheduler(self, model):
        with pytest.raises(ValueError):
            ServingEngine(model, scheduler="adaptive")


class TestSlotPoolIntegration:
    def test_cache_released_between_busy_periods(self, model, rng):
        engine = ServingEngine(model, max_batch_size=4)
        for _ in range(3):
            engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
            assert engine.slot_pool.in_flight == 0  # returned on drain
        assert engine.slot_pool.stats.misses == 1
        assert engine.slot_pool.stats.hits == 2  # buffers reused across periods

    def test_pim_deployed_continuous_serving_counts_traffic(self, rng):
        config = TransformerConfig(
            vocab_size=16, d_model=8, num_heads=2, num_layers=1, d_ff=16,
            max_seq_len=16, seed=0,
        )
        lm = DecoderLM(config)
        plans = {}
        for name, linear in lm.iter_static_linears():
            out_f, in_f = linear.weight.data.shape
            r = min(out_f, in_f)
            mask = np.zeros(r, dtype=bool)
            mask[: r // 2] = True
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(r),
            )
        engine = ServingEngine.deploy(
            lm, plans, calibration_prompts=rng.integers(0, 16, size=(2, 6)),
            mode="crossbar", scheduler="continuous", max_batch_size=2,
        )
        assert engine.gemv_stats().adc_conversions == 0
        [result] = engine.serve([rng.integers(0, 16, size=3)], max_new_tokens=2)
        assert result.tokens.size == 2
        assert engine.gemv_stats().adc_conversions > 0
