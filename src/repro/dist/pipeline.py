"""Stage-pipelined block execution over the ShardPlan pipeline assignment.

The mesh ledger has always *costed* PCIe pipeline handoffs between the
chips a :class:`~repro.dist.ShardPlan` assigns transformer blocks to —
but execution stayed sequential in-process: stage *i+1* of a decode step
never started until stage *i* had finished the whole batch.
:class:`PipelinedBlockExecutor` actually overlaps the stages: the decode
batch is split into micro-batches of contiguous cache rows, and stage *i*
of micro-batch *t* runs concurrently with stage *i−1* of micro-batch
*t+1* on a :class:`~repro.utils.parallel.StagePipeline` of persistent
worker threads (one per stage — the software analogue of one chip per
pipeline stage).

Bitwise equivalence with the sequential path holds by construction:

- every per-row computation in the decode forward (embedding lookup,
  LayerNorm, attention over the row's own cached prefix, FFN, LM head)
  is independent across rows, and numpy/BLAS row-slicing is bitwise
  stable, so running rows ``[a, b)`` alone produces exactly the rows
  ``[a, b)`` of the full-batch forward (the same property that makes
  continuous batching bitwise-equal to one-shot ``generate``);
- each stage owns a disjoint set of transformer blocks and each
  micro-batch owns a disjoint set of cache rows, so no array is ever
  written by two workers (per-layer GemvStats sinks are touched only by
  their stage's single thread; the shared
  :class:`~repro.rram.kernels.PlaneCache` is content-keyed and locked).

Speedups come from BLAS releasing the GIL inside each stage's matmuls;
they require real cores — on a single-CPU host the pipeline degrades to
interleaved sequential execution plus queue overhead.
"""

from __future__ import annotations

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.utils.parallel import StagePipeline

__all__ = ["PipelinedBlockExecutor"]


class _PinnedWidthView(KVCache):
    """A rows view that reports the *step-global* maximum length.

    The attention key width of a decode step is ``max_length + 1`` — the
    full batch uses the maximum over **all** rows, while a plain sub-view
    would use only its own rows' maximum.  A narrower key width changes
    the reduction lengths inside softmax/attention (numpy's unrolled
    summations round differently per length), so even exactly-masked
    extra columns break bitwise equality with the sequential path.
    Pinning every micro-batch to the width the full batch would use makes
    each row's computation identical down to the reduction trees; the
    columns between a row's own length and the pinned width hold the same
    buffer contents the full-batch forward reads, and the key-validity
    mask blocks them identically.
    """

    _pinned_max: int

    @property
    def max_length(self) -> int:
        return self._pinned_max

    def key_padding_mask(self, total: int) -> np.ndarray | None:
        # The aligned-rows `None` shortcut is only valid when these rows
        # actually reach the pinned width; otherwise the mask row must
        # match the corresponding row of the full-batch mask (all-False
        # rows are bitwise-equivalent to None under masked_fill).
        if (
            int(self.lengths.max(initial=0)) == self._pinned_max
            and np.all(self.lengths == self.lengths[0])
        ):
            return None
        offsets = total - self._pinned_max + self.lengths
        return np.arange(total)[None, :] >= offsets[:, None]


def _pin_view(view: KVCache, pinned_max: int) -> _PinnedWidthView:
    """Rebrand ``view`` as a :class:`_PinnedWidthView` (zero-copy)."""
    pinned = object.__new__(_PinnedWidthView)
    pinned.__dict__.update(view.__dict__)
    pinned._pinned_max = pinned_max
    return pinned


def _even_stage_bounds(num_layers: int, num_stages: int) -> list[tuple[int, int]]:
    """Split ``num_layers`` blocks into ``num_stages`` contiguous ranges."""
    num_stages = max(1, min(num_stages, num_layers))
    bounds = []
    start = 0
    for s in range(num_stages):
        stop = ((s + 1) * num_layers) // num_stages
        if stop > start:
            bounds.append((start, stop))
            start = stop
    return bounds


def _plan_stage_bounds(chip_of_block: dict[int, int], num_layers: int) -> list[tuple[int, int]]:
    """Contiguous block ranges per chip, in pipeline order.

    ``chip_of_block`` assigns blocks to chips monotonically (the HyFlexPIM
    chip mapper lays the pipeline out in block order); consecutive blocks
    on the same chip form one stage.
    """
    bounds: list[tuple[int, int]] = []
    start = 0
    for block in range(1, num_layers):
        if chip_of_block.get(block, 0) != chip_of_block.get(block - 1, 0):
            bounds.append((start, block))
            start = block
    bounds.append((start, num_layers))
    return bounds


class PipelinedBlockExecutor:
    """Pipeline-parallel one-token decode over a model's transformer blocks.

    Drop-in replacement for the continuous scheduler's batch decode
    forward (installed via ``ServingEngine(pipeline=...)``): stages are
    the contiguous block ranges of the :class:`~repro.dist.ShardPlan`'s
    chip assignment (or an even ``num_stages``-way split when no plan is
    given), and micro-batches are contiguous row ranges of the decode
    batch.  :meth:`forward` matches the sequential
    ``model.forward(feeds, cache=view).data[:, -1]`` bitwise for
    noiseless deployments.

    Parameters
    ----------
    model:
        The served :class:`~repro.nn.transformer.DecoderLM`.
    shard_plan:
        Optional :class:`~repro.dist.ShardPlan`; its ``chip_of_block``
        assignment defines the stage boundaries (one stage per chip).
    num_stages:
        Stage count when no plan is given (also overrides the plan's
        boundaries when both are passed).  Clamped to ``num_layers``.
    micro_batch_rows:
        Rows per micro-batch (default and minimum 2).  Larger
        micro-batches amortize queue overhead at the cost of pipeline
        bubbles on small batches.  Two is the bitwise floor: NumPy
        dispatches one-row 2D matmuls to BLAS *gemv*, whose accumulation
        order differs from the *gemm* the full batch uses, so a 1-row
        micro-batch would diverge from the sequential path in the last
        ulp.  Row blocks of >= 2 stay on gemm, which slices bitwise-
        stably (a trailing 1-row remainder is folded into the previous
        micro-batch for the same reason).
    """

    def __init__(
        self,
        model,
        shard_plan=None,
        num_stages: int | None = None,
        micro_batch_rows: int = 2,
    ) -> None:
        if micro_batch_rows < 2:
            raise ValueError(f"micro_batch_rows must be >= 2, got {micro_batch_rows}")
        self.model = model
        self.micro_batch_rows = micro_batch_rows
        num_layers = model.config.num_layers
        if num_stages is not None:
            if num_stages < 1:
                raise ValueError(f"num_stages must be >= 1, got {num_stages}")
            self.stage_bounds = _even_stage_bounds(num_layers, num_stages)
        elif shard_plan is not None and getattr(shard_plan, "chip_of_block", None):
            self.stage_bounds = _plan_stage_bounds(shard_plan.chip_of_block, num_layers)
        else:
            raise ValueError("pass a shard_plan with a chip assignment or num_stages")
        stages = [self._head_stage()]
        stages.extend(self._block_stage(a, b) for a, b in self.stage_bounds)
        stages.append(self._tail_stage())
        self._pipeline = StagePipeline(stages)
        self.steps = 0  # forward() calls served
        self.micro_batches = 0  # micro-batches pushed through the pipeline

    @property
    def num_stages(self) -> int:
        """Transformer-block stages (head/tail embedding stages excluded)."""
        return len(self.stage_bounds)

    # ------------------------------------------------------------------
    # Stage bodies.  Payload flowing between stages:
    #   (feeds (m,1), view KVCache over rows [a,b), x Tensor, mask)
    # Rows, blocks and per-layer stats sinks are disjoint across workers.
    # ------------------------------------------------------------------
    def _head_stage(self):
        model = self.model

        def head(index: int, payload):
            feeds, view = payload
            positions = view.lengths[:, None] + np.arange(1)[None, :]
            x = model.token_embedding(feeds) + model.position_embedding(positions)
            x = model.embed_dropout(x)
            mask = view.key_padding_mask(view.max_length + 1)
            return view, x, mask

        return head

    def _block_stage(self, start: int, stop: int):
        model = self.model

        def run_blocks(index: int, payload):
            view, x, mask = payload
            for i in range(start, stop):
                x = model.blocks[i](x, attention_mask=mask, cache=view.layer(i))
            return view, x, mask

        return run_blocks

    def _tail_stage(self):
        model = self.model

        def tail(index: int, payload):
            view, x, _ = payload
            logits = model.lm_head(model.final_norm(x))
            view.advance(1)
            return logits.data[:, -1]

        return tail

    # ------------------------------------------------------------------
    def forward(self, feeds: np.ndarray, cache) -> np.ndarray:
        """Last-position logits ``(n, vocab)`` for one decode step.

        ``feeds`` is ``(n, 1)`` next-input tokens, ``cache`` the live-row
        ``rows_view`` the sequential path would decode over.  Each row's
        K/V row is appended and its length advanced exactly once, as in
        the sequential forward.
        """
        n = int(feeds.shape[0])
        step = self.micro_batch_rows
        # Captured once, before any micro-batch advances its rows: every
        # micro-batch attends over the key width the full batch would use
        # (see _PinnedWidthView — this is what keeps outputs bitwise-equal).
        pinned_max = int(cache.max_length)
        jobs = []
        for a in range(0, n, step):
            b = min(a + step, n)
            if n - b == 1:
                b = n  # fold a 1-row remainder in (gemv/gemm — see class doc)
            jobs.append((feeds[a:b], _pin_view(cache.rows_view(a, b), pinned_max)))
            if b == n:
                break
        outputs = self._pipeline.run(jobs)
        self.steps += 1
        self.micro_batches += len(jobs)
        return np.concatenate(outputs, axis=0)

    def close(self) -> None:
        """Shut down the stage worker threads (idempotent)."""
        self._pipeline.close()
