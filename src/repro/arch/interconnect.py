"""Interconnect models: OCI, global bus and PCIe-6.0 (Section 3.1 / 5.4).

The paper's scalability argument rests on three transfer paths:

- the inner-unit shared bus moving stage outputs between modules in a PU;
- the 1000 GB/s on-chip interconnect (OCI) aggregating partial sums
  between collaborating PUs (<3 KB per PU, ~24 cycles);
- the 128 GB/s PCIe-6.0 link carrying one hidden vector (0.75-2 KB) between
  cascaded chips, 6-16 cycles per layer handoff.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Link",
    "OCI_LINK",
    "PCIE6_LINK",
    "transfer_cycles",
    "partial_sum_aggregation_cycles",
    "hidden_vector_handoff_cycles",
]


@dataclass(frozen=True)
class Link:
    """A bandwidth-limited transfer path.

    Bandwidth is validated at construction (rather than silently dividing
    by zero or a negative number inside :meth:`transfer_seconds`), matching
    the explicit ``num_bytes`` check on the transfer side.
    """

    name: str
    bandwidth_gbps: float  # GB/s
    launch_overhead_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}"
            )
        if self.launch_overhead_cycles < 0:
            raise ValueError(
                f"launch_overhead_cycles must be non-negative, "
                f"got {self.launch_overhead_cycles}"
            )

    def transfer_seconds(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / (self.bandwidth_gbps * 1e9)


OCI_LINK = Link("oci", bandwidth_gbps=1000.0)
PCIE6_LINK = Link("pcie6", bandwidth_gbps=128.0, launch_overhead_cycles=2.0)


def transfer_cycles(link: Link, num_bytes: float, clock_hz: float = 1e9) -> float:
    """Cycles at ``clock_hz`` to move ``num_bytes`` over ``link``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return link.transfer_seconds(num_bytes) * clock_hz + link.launch_overhead_cycles


def partial_sum_aggregation_cycles(
    num_pus: int, bytes_per_pu: float = 3 * 1024, clock_hz: float = 1e9
) -> float:
    """Tensor-parallel partial-sum aggregation over the OCI.

    The paper quotes <3 KB per PU and ~24 cycles of latency overhead for the
    global aggregation (Section 3.1, cases 1-2).
    """
    if num_pus < 1:
        raise ValueError("num_pus must be >= 1")
    if num_pus == 1:
        return 0.0
    return transfer_cycles(OCI_LINK, (num_pus - 1) * bytes_per_pu, clock_hz)


def hidden_vector_handoff_cycles(
    hidden_dim: int, bytes_per_element: int = 1, clock_hz: float = 1e9
) -> float:
    """Chip-to-chip hidden-state transfer over PCIe-6.0 (case 3).

    For hidden dims of 768-2048 at INT8 this is 0.75-2 KB, i.e. the paper's
    6-16 cycle range.
    """
    return transfer_cycles(PCIE6_LINK, hidden_dim * bytes_per_element, clock_hz)
