"""Fig. 15: end-to-end energy comparison and HyFlexPIM's breakdown."""

from __future__ import annotations

from repro.arch import PerformanceComparison
from repro.models import paper_model

SEQ_LENS = (128, 512, 1024)


def test_fig15_end_to_end_energy(benchmark, print_header):
    comparison = PerformanceComparison()
    cases = ((paper_model("bert-large"), 0.05), (paper_model("gpt2"), 0.30))

    def run():
        improvements = {}
        breakdowns = {}
        for spec, rate in cases:
            improvements[spec.name] = {
                n: comparison.energy_improvement(spec, n, rate) for n in SEQ_LENS
            }
            breakdowns[spec.name] = {
                n: comparison.end_to_end_energy(spec, n, rate).shares() for n in SEQ_LENS
            }
        return improvements, breakdowns

    improvements, breakdowns = benchmark(run)

    print_header("Fig. 15(a,c) — end-to-end energy improvement over baselines (x)")
    for model_name, per_n in improvements.items():
        rate = "5%" if model_name == "bert-large" else "30%"
        print(f"\n[{model_name} @ {rate} SLC]")
        baselines = list(next(iter(per_n.values())))
        print(f"{'N':>6} " + " ".join(f"{b:>13}" for b in baselines))
        for n, row in per_n.items():
            print(f"{n:>6} " + " ".join(f"{row[b]:>12.2f}x" for b in baselines))

    print("\npaper anchors: BERT-Large N=128: non-PIM 6.15x, SPRINT/NMP 4.94x, ASADI+ 1.45x;")
    print("               GPT-2 N=128: 5.82x / 4.69x / 1.35x; gaps shrink as N grows.")

    print_header("Fig. 15(b,d) — HyFlexPIM energy breakdown (share of total)")
    for model_name, per_n in breakdowns.items():
        print(f"\n[{model_name}]")
        categories = sorted(next(iter(per_n.values())), key=lambda c: -per_n[SEQ_LENS[0]][c])
        print(f"{'category':>20} " + " ".join(f"N={n:>5}" for n in SEQ_LENS))
        for category in categories:
            row = " ".join(f"{per_n[n][category] * 100:>6.1f}%" for n in SEQ_LENS)
            print(f"{category:>20} {row}")

    for model_name, per_n in improvements.items():
        for n, row in per_n.items():
            assert row["asadi-dagger"] > 1.0, (model_name, n)
            assert row["non-pim"] > row["asadi-dagger"], (model_name, n)
