"""Functional PIM simulation: modules, hybrid execution, PU and chip."""

from repro.pim.analog_module import AnalogModuleConfig, AnalogPimModule
from repro.pim.attention import CrossbarAttentionExecutor, ReferenceQuantizedAttention
from repro.pim.chip import ChipConfig, HyFlexPimChip, LayerAssignment
from repro.pim.kv_cache import CrossbarKVCache
from repro.pim.digital_module import (
    DigitalModuleConfig,
    DigitalPimModule,
    DigitalPimStats,
)
from repro.pim.hybrid import (
    HybridLinear,
    MagnitudeProtectedLinear,
    attach_hybrid_layers,
    calibrate_activations,
)
from repro.pim.nor_logic import (
    COLUMNS_PER_NOR,
    CYCLES_PER_ROW,
    NOR_OPS_PER_INT8_MULT,
    NorCounter,
    full_adder,
    multiply_int8,
    nor,
    nor_and,
    nor_not,
    nor_or,
    nor_xor,
    ripple_add,
)
from repro.pim.processing_unit import (
    PlacementRecord,
    ProcessingUnit,
    ProcessingUnitConfig,
)
from repro.pim.sfu import SfuConfig, SfuStats, SpecialFunctionUnit

__all__ = [
    "AnalogModuleConfig",
    "AnalogPimModule",
    "COLUMNS_PER_NOR",
    "CYCLES_PER_ROW",
    "ChipConfig",
    "CrossbarAttentionExecutor",
    "CrossbarKVCache",
    "DigitalModuleConfig",
    "DigitalPimModule",
    "DigitalPimStats",
    "HyFlexPimChip",
    "HybridLinear",
    "LayerAssignment",
    "MagnitudeProtectedLinear",
    "NOR_OPS_PER_INT8_MULT",
    "NorCounter",
    "PlacementRecord",
    "ProcessingUnit",
    "ProcessingUnitConfig",
    "ReferenceQuantizedAttention",
    "SfuConfig",
    "SfuStats",
    "SpecialFunctionUnit",
    "attach_hybrid_layers",
    "calibrate_activations",
    "full_adder",
    "multiply_int8",
    "nor",
    "nor_and",
    "nor_not",
    "nor_or",
    "nor_xor",
    "ripple_add",
]
