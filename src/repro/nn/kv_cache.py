"""Per-layer key/value caches for incremental (O(L)-per-token) decoding.

The paper's decoder workloads execute the dynamic attention products
``Q·Kᵀ`` and ``S·V`` on digital PIM (Fig. 9, orange box) while the static
projections live in analog RRAM.  On real hardware the K/V operands of
those dynamic GEMMs are *written once per token* into the digital-PIM
arrays and reused for every subsequent decode step — recomputing them
would re-stream every static GEMV through the crossbars L times per
emitted token.  :class:`KVCache` models exactly that reuse in software:
each transformer layer appends the keys/values of newly decoded tokens
and attends over the accumulated prefix, turning autoregressive decoding
from O(L²) full-context recompute into O(L) incremental work.

The cache is batched and supports *ragged* rows (per-row valid lengths),
which is what the serving engine (:mod:`repro.serve`) needs to batch
requests whose prompts differ in length: rows append at their own write
positions and expose a key-validity mask for attention.

For iteration-level (continuous) batching the cache additionally supports
*row-level* operations on a live cache: :meth:`rows_view` /
:meth:`row_view` hand out zero-copy views over a contiguous row range
(basic numpy slicing, so writes land in the parent buffers), letting one
request prefill into its own row while other rows are mid-decode;
:meth:`copy_row` relocates a row's valid prefix (swap-with-last
compaction when a finished request retires); :meth:`clear_row` retires a
row by invalidating its prefix without touching the buffers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_default_dtype

__all__ = ["KVCache"]


class KVCache:
    """Preallocated per-layer K/V buffers for a batch of decode streams.

    Parameters
    ----------
    num_layers:
        Number of transformer blocks sharing this cache.
    batch:
        Number of rows (decode streams) cached together.
    num_heads, head_dim:
        Attention geometry; buffers are shaped ``(B, H, capacity, head_dim)``.
    capacity:
        Maximum total tokens per row (prompt + generated); typically the
        model's ``max_seq_len``.
    dtype:
        Buffer dtype; defaults to the process-wide tensor default so cached
        decode obeys the same precision policy as full-context forward.
    """

    def __init__(
        self,
        num_layers: int,
        batch: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
        dtype=None,
    ) -> None:
        if min(num_layers, batch, num_heads, head_dim, capacity) <= 0:
            raise ValueError("all KVCache dimensions must be positive")
        dtype = np.dtype(dtype) if dtype is not None else get_default_dtype()
        shape = (batch, num_heads, capacity, head_dim)
        self.num_layers = num_layers
        self.batch = batch
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.keys = [np.zeros(shape, dtype=dtype) for _ in range(num_layers)]
        self.values = [np.zeros(shape, dtype=dtype) for _ in range(num_layers)]
        #: valid cached tokens per row; rows may diverge (ragged prompts).
        self.lengths = np.zeros(batch, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.keys[0].dtype

    @property
    def max_length(self) -> int:
        """Longest valid prefix over all rows."""
        return int(self.lengths.max()) if self.batch else 0

    def reset(self) -> None:
        """Forget all cached tokens (buffers are reused, not reallocated)."""
        self.lengths[:] = 0

    def layer(self, index: int) -> "_LayerSlot":
        """A lightweight per-layer handle used by attention modules."""
        return _LayerSlot(self, index)

    # ------------------------------------------------------------------
    # Row-level operations (continuous batching)
    # ------------------------------------------------------------------
    def rows_view(self, start: int, stop: int) -> "KVCache":
        """Zero-copy view over rows ``[start, stop)`` of this cache.

        The view shares the parent's K/V buffers *and* its ``lengths``
        array (basic numpy slicing), so appends/advances through the view
        mutate the parent rows in place.  This is how the continuous
        scheduler prefills one request into its own row (a 1-row view)
        and decodes the live-row prefix (a ``[0, n_live)`` view) while the
        remaining rows stay untouched.
        """
        if not (0 <= start < stop <= self.batch):
            raise ValueError(
                f"rows_view [{start}, {stop}) out of range for batch {self.batch}"
            )
        view = object.__new__(KVCache)
        view.num_layers = self.num_layers
        view.batch = stop - start
        view.num_heads = self.num_heads
        view.head_dim = self.head_dim
        view.capacity = self.capacity
        view.keys = [k[start:stop] for k in self.keys]
        view.values = [v[start:stop] for v in self.values]
        view.lengths = self.lengths[start:stop]
        return view

    def row_view(self, row: int) -> "KVCache":
        """Zero-copy single-row view (see :meth:`rows_view`)."""
        return self.rows_view(row, row + 1)

    def copy_row(self, src: int, dst: int) -> None:
        """Relocate row ``src``'s valid prefix (K/V + length) into ``dst``.

        Used by swap-with-last compaction when a finished request retires
        from the middle of the live-row prefix.  Only the valid prefix is
        copied; ``src``'s buffers are left as-is (cleared separately via
        :meth:`clear_row`).
        """
        if not (0 <= src < self.batch and 0 <= dst < self.batch):
            raise ValueError(f"rows ({src}, {dst}) out of range for batch {self.batch}")
        if src == dst:
            return
        valid = int(self.lengths[src])
        for k_buf, v_buf in zip(self.keys, self.values):
            k_buf[dst, :, :valid] = k_buf[src, :, :valid]
            v_buf[dst, :, :valid] = v_buf[src, :, :valid]
        self.lengths[dst] = valid

    def clear_row(self, row: int) -> None:
        """Retire one row: invalidate its prefix (buffers are reused)."""
        if not (0 <= row < self.batch):
            raise ValueError(f"row {row} out of range for batch {self.batch}")
        self.lengths[row] = 0

    # ------------------------------------------------------------------
    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Write ``T`` new tokens per row at each row's current length.

        ``k_new``/``v_new`` are ``(B, H, T, head_dim)``.  Row ``i`` is
        written at positions ``lengths[i] .. lengths[i]+T``; ``lengths`` is
        *not* advanced here (every layer of one forward pass writes at the
        same offsets) — the model calls :meth:`advance` once per pass.
        Returns views over the first ``max(lengths)+T`` cached positions.
        """
        batch, _, t_new, _ = k_new.shape
        if batch != self.batch:
            raise ValueError(f"batch mismatch: cache has {self.batch}, got {batch}")
        if int(self.lengths.max()) + t_new > self.capacity:
            raise ValueError(
                f"KVCache overflow: lengths up to {int(self.lengths.max())} + "
                f"{t_new} new tokens exceed capacity {self.capacity}"
            )
        k_buf, v_buf = self.keys[layer], self.values[layer]
        if np.all(self.lengths == self.lengths[0]):
            # Aligned rows (prefill, or decode after equal-length prompts):
            # contiguous block write.
            start = int(self.lengths[0])
            k_buf[:, :, start : start + t_new] = k_new
            v_buf[:, :, start : start + t_new] = v_new
        else:
            if t_new != 1:
                # Multi-token appends on ragged rows would need per-row causal
                # masks; prefill is always aligned and decode appends one
                # token, so this never happens in supported flows.
                raise ValueError("ragged rows only support single-token appends")
            # Ragged rows: scatter each row at its own offset.  Advanced
            # indices on axes 0/2 around the sliced head axis move the
            # indexed dims to the front, hence the transpose.
            rows = np.arange(self.batch)[:, None]
            cols = self.lengths[:, None] + np.arange(t_new)[None, :]
            k_buf[rows, :, cols] = k_new.transpose(0, 2, 1, 3)
            v_buf[rows, :, cols] = v_new.transpose(0, 2, 1, 3)
        total = self.max_length + t_new
        return k_buf[:, :, :total], v_buf[:, :, :total]

    def advance(self, t_new: int) -> None:
        """Commit ``t_new`` appended tokens on every row."""
        self.lengths += t_new

    def set_lengths(self, lengths: np.ndarray) -> None:
        """Override per-row valid lengths (ragged right-padded prefill).

        After prefilling a right-padded prompt batch, the pad positions of
        short rows hold garbage K/V; shrinking those rows' lengths masks the
        garbage out of attention and lets subsequent appends overwrite it.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (self.batch,):
            raise ValueError(f"lengths must have shape ({self.batch},), got {lengths.shape}")
        if lengths.min(initial=0) < 0 or lengths.max(initial=0) > self.capacity:
            raise ValueError("lengths out of range for cache capacity")
        # In-place write (not rebinding) so row views created via
        # rows_view() stay coherent with the parent cache.
        self.lengths[...] = lengths

    def key_padding_mask(self, total: int) -> np.ndarray | None:
        """Boolean (B, total) mask, True where a key slot is *invalid*.

        Slot ``j`` of row ``i`` is invalid if ``j >= lengths[i] + t`` for the
        tokens appended this pass — callers pass ``total`` = key length of the
        current attention call, so invalid means ``j`` beyond that row's
        valid prefix plus its in-flight tokens.  Returns None when every row
        is aligned (nothing to mask beyond the causal structure).
        """
        if np.all(self.lengths == self.lengths[0]):
            return None
        offsets = total - self.max_length + self.lengths  # per-row valid count
        return np.arange(total)[None, :] >= offsets[:, None]

    def __repr__(self) -> str:
        return (
            f"KVCache(layers={self.num_layers}, batch={self.batch}, "
            f"heads={self.num_heads}, capacity={self.capacity}, "
            f"lengths={self.lengths.tolist()})"
        )


class _LayerSlot:
    """One layer's view of a :class:`KVCache` (what attention modules see)."""

    __slots__ = ("cache", "index")

    def __init__(self, cache: KVCache, index: int) -> None:
        self.cache = cache
        self.index = index

    @property
    def offset(self) -> int:
        """Longest already-committed prefix (query-position offset)."""
        return self.cache.max_length

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.cache.append(self.index, k_new, v_new)

    def key_padding_mask(self, total: int) -> np.ndarray | None:
        return self.cache.key_padding_mask(total)
