"""Fig. 11: gradient distribution before SVD, after SVD, after fine-tuning.

Regenerates the three panels on a trained mini encoder: (a) per-element
weight gradients of a dense FC layer, (b) singular-value gradients right
after full-rank SVD, (c) singular-value gradients after hard-threshold
truncation + fine-tuning (gradient redistribution).  Runs as one cached
``repro.exp`` point.
"""

from __future__ import annotations

import numpy as np

from repro.exp import ExperimentSpec


def _leading_mass(grads: np.ndarray, fraction: float = 0.25) -> float:
    k = max(1, int(round(len(grads) * fraction)))
    total = grads.sum()
    return float(grads[:k].sum() / total) if total > 0 else 0.0


def test_fig11_gradient_redistribution(benchmark, print_header, runner):
    spec = ExperimentSpec("fig11", params={"task": "sst2", "num_layers": 2})

    result = benchmark.pedantic(lambda: runner.run(spec), rounds=1, iterations=1)
    dense_spread = result["dense_spread"]
    grads_b = result["grads_b"]
    grads_c = result["grads_c"]

    print_header("Fig. 11 — gradient distributions across the pipeline stages")
    print(f"(a) dense |dL/dW| (first row): max/mean spread {dense_spread:.2f} (near-uniform)")

    mass_b = np.mean([_leading_mass(np.asarray(g)) for g in grads_b.values()])
    mass_c = np.mean([_leading_mass(np.asarray(g)) for g in grads_c.values()])
    print(f"(b) post-SVD |dL/dsigma|: leading-25%-rank mass {mass_b:.3f}")
    print(f"(c) truncated+fine-tuned: leading-25%-rank mass {mass_c:.3f} (uniform = 0.25)")

    example = next(iter(grads_c.values()))
    ranks = " ".join(f"{v:.2e}" for v in example[:8])
    print(f"    first 8 ranks of one layer: {ranks}")
    print("paper: fine-tuning concentrates gradient mass into the initial ranks,")
    print("       demarcating the 5-10% of ranks that need SLC protection.")
    print("note: from-scratch mini models show the bias more weakly than the")
    print("      paper's pretrained 768-dim models (see EXPERIMENTS.md).")
    assert mass_c > 0.25  # leading ranks must carry excess mass
