"""Kernel-benchmark study: the repo's tracked perf trajectory.

``bench_kernels`` times the analog-crossbar GEMV hot path — the
``reference`` einsum kernel against the optimized ``fast`` kernel of
:mod:`repro.rram.kernels` — across a batch x out-features x cell-type x
noise grid, and additionally wall-clocks the Fig. 12 smoke sweep end to
end.  Its payload is what lands in ``BENCH_kernels.json`` (written by
``benchmarks/bench_kernels.py`` and by the CI smoke job), seeding the
perf-trajectory series future PRs are gated against: CI fails if the fast
kernel ever becomes slower than the reference kernel on the large-GEMV
point.

Timings are wall-clock, so cached replays of this experiment report the
machine state of the original run; benchmark jobs run it with caching
disabled (``--no-cache`` / ``fresh_runner``).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exp.registry import experiment
from repro.rram import (
    CELL_TYPES,
    DEFAULT_NOISE,
    GemvStats,
    KernelPolicy,
    ProgrammedMatrix,
)

__all__ = ["bench_kernels"]

#: The benchmark grid (overridable via params).  The "large" point is the
#: one the CI perf gate checks; it matches the ISSUE-2 acceptance criteria
#: (>=5x noiseless, >=2x noisy, fast vs reference).
DEFAULT_BATCHES = (1, 8, 64)
DEFAULT_OUT_FEATURES = (64, 256)
DEFAULT_CELLS = ("SLC", "MLC2")
LARGE_POINT = {"batch": 64, "out_features": 256, "in_features": 512, "cell": "SLC"}


def _time_gemv(
    matrix: ProgrammedMatrix,
    x: np.ndarray,
    policy: KernelPolicy,
    reps: int,
) -> float:
    """Best-of-``reps`` seconds for one GEMV call under ``policy``."""
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        matrix.gemv(x, policy=policy)
        best = min(best, time.perf_counter() - start)
    return best


def _bench_point(
    batch: int,
    out_features: int,
    in_features: int,
    cell_name: str,
    noisy: bool,
    reps: int,
    rng: np.random.Generator,
) -> dict[str, Any]:
    cell = CELL_TYPES[cell_name]
    sigma = DEFAULT_NOISE.sigma(cell) if noisy else 0.0
    x = rng.integers(-128, 128, size=(batch, in_features))
    w = rng.integers(-128, 128, size=(out_features, in_features))
    matrix = ProgrammedMatrix(w, cell, noise_sigma=sigma, rng=rng)

    # Correctness cross-check rides along with every timing: the two kernels
    # must agree bitwise (outputs and stats) on every benchmarked point.
    ref_stats, fast_stats = GemvStats(), GemvStats()
    ref_out = matrix.gemv(x, stats=ref_stats, policy=KernelPolicy(mode="reference"))
    fast_out = matrix.gemv(x, stats=fast_stats, policy=KernelPolicy(mode="fast"))
    if not (np.array_equal(ref_out, fast_out) and ref_stats == fast_stats):
        raise AssertionError(
            f"fast/reference kernel mismatch at batch={batch}, out={out_features}, "
            f"in={in_features}, cell={cell_name}, noisy={noisy}"
        )

    ref_s = _time_gemv(matrix, x, KernelPolicy(mode="reference"), reps)
    fast_s = _time_gemv(matrix, x, KernelPolicy(mode="fast"), reps)
    return {
        "batch": batch,
        "out_features": out_features,
        "in_features": in_features,
        "cell": cell_name,
        "noise": "calibrated" if noisy else "none",
        "reference_us": round(ref_s * 1e6, 2),
        "fast_us": round(fast_s * 1e6, 2),
        "speedup": round(ref_s / fast_s, 2),
    }


def _fig12_smoke_wall_s(seed: int) -> float:
    """End-to-end wall-clock of the Fig. 12 smoke point (uncached)."""
    from repro.exp.registry import get_experiment

    defn = get_experiment("fig12")
    start = time.perf_counter()
    defn.fn(dict(defn.smoke), seed)
    return time.perf_counter() - start


@experiment(
    "bench_kernels",
    smoke={"batches": (64,), "out_features": (256,), "reps": 1},
)
def bench_kernels(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """GEMV kernel timings (reference vs fast) + Fig. 12 smoke wall-clock."""
    batches = tuple(params.get("batches", DEFAULT_BATCHES))
    out_features = tuple(params.get("out_features", DEFAULT_OUT_FEATURES))
    in_features = int(params.get("in_features", LARGE_POINT["in_features"]))
    cells = tuple(params.get("cells", DEFAULT_CELLS))
    reps = int(params.get("reps", 3))
    include_fig12 = bool(params.get("include_fig12", True))

    rng = np.random.default_rng(seed)
    grid = [
        _bench_point(batch, out_f, in_features, cell_name, noisy, reps, rng)
        for cell_name in cells
        for noisy in (False, True)
        for out_f in out_features
        for batch in batches
    ]

    # The gated large points: always measured, even if the requested grid
    # does not contain them (e.g. a shrunken custom grid).
    def _large(noisy: bool) -> dict[str, Any]:
        for row in grid:
            if (
                row["batch"] == LARGE_POINT["batch"]
                and row["out_features"] == LARGE_POINT["out_features"]
                and row["in_features"] == LARGE_POINT["in_features"]
                and row["cell"] == LARGE_POINT["cell"]
                and row["noise"] == ("calibrated" if noisy else "none")
            ):
                return row
        return _bench_point(
            LARGE_POINT["batch"],
            LARGE_POINT["out_features"],
            LARGE_POINT["in_features"],
            LARGE_POINT["cell"],
            noisy,
            reps,
            rng,
        )

    payload: dict[str, Any] = {
        "grid": grid,
        "large_noiseless": _large(False),
        "large_noisy": _large(True),
    }
    if include_fig12:
        payload["fig12_smoke_wall_s"] = round(_fig12_smoke_wall_s(seed), 3)
    return payload
