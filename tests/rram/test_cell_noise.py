"""Tests for cell models and the BER <-> sigma noise calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram import (
    DEFAULT_NOISE,
    MEASURED_MLC2_BER,
    MLC2,
    MLC3,
    MLC4,
    NoiseSpec,
    RramDeviceParams,
    SLC,
    apply_multiplicative_noise,
    ber_to_sigma,
    level_error_rate,
    sigma_to_ber,
)
from repro.rram.cell import CellType


class TestCellType:
    def test_level_counts(self):
        assert SLC.levels == 2
        assert MLC2.levels == 4
        assert MLC3.levels == 8
        assert MLC4.levels == 16

    def test_mlc_needs_iterative_writes(self):
        assert SLC.write_pulses == 1
        assert MLC2.write_pulses > SLC.write_pulses

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            CellType("bad", bits=5, write_pulses=1)

    def test_conductance_levels_span_device_range(self):
        device = RramDeviceParams()
        levels = MLC2.conductance_levels(device)
        assert levels[0] == pytest.approx(device.g_min_siemens)
        assert levels[-1] == pytest.approx(device.g_max_siemens)
        assert len(levels) == 4
        assert (np.diff(levels) > 0).all()

    def test_device_defaults_match_paper(self):
        device = RramDeviceParams()
        assert device.r_on_ohm == 6_000.0
        assert device.on_off_ratio == 150.0
        assert device.r_off_ohm == 900_000.0
        assert device.set_voltage == 1.62
        assert device.reset_voltage == 3.63

    def test_validate_levels(self):
        SLC.validate_levels(np.array([0, 1, 1]))
        with pytest.raises(ValueError):
            SLC.validate_levels(np.array([0, 2]))
        with pytest.raises(ValueError):
            MLC2.validate_levels(np.array([-1]))


class TestLevelErrorRate:
    def test_zero_sigma_no_errors(self):
        assert level_error_rate(0.0, 3, 3) == 0.0

    def test_level_zero_immune_to_multiplicative_noise(self):
        assert level_error_rate(0.5, 0, 3) == 0.0

    def test_monotone_in_sigma(self):
        rates = [level_error_rate(s, 2, 3) for s in (0.01, 0.05, 0.1, 0.2)]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_higher_levels_err_more(self):
        # Multiplicative noise scales with the stored value.
        assert level_error_rate(0.1, 1, 7) < level_error_rate(0.1, 6, 7)

    def test_top_level_one_sided(self):
        # Top level only errs downward (saturation above), so for equal
        # level value it errs less than an interior level would.
        sigma = 0.2
        interior = level_error_rate(sigma, 3, 7)
        # Construct a hypothetical where 3 is the max level.
        top = level_error_rate(sigma, 3, 3)
        assert top < interior

    def test_validation(self):
        with pytest.raises(ValueError):
            level_error_rate(-0.1, 1, 3)
        with pytest.raises(ValueError):
            level_error_rate(0.1, 5, 3)


class TestBerCalibration:
    def test_roundtrip_mlc2(self):
        sigma = ber_to_sigma(MEASURED_MLC2_BER, MLC2)
        assert sigma > 0
        assert sigma_to_ber(sigma, MLC2) == pytest.approx(MEASURED_MLC2_BER, rel=1e-6)

    def test_zero_ber_zero_sigma(self):
        assert ber_to_sigma(0.0, SLC) == 0.0

    def test_ber_validation(self):
        with pytest.raises(ValueError):
            ber_to_sigma(0.6, MLC2)

    def test_same_sigma_more_levels_more_errors(self):
        sigma = 0.08
        assert sigma_to_ber(sigma, SLC) < sigma_to_ber(sigma, MLC2)
        assert sigma_to_ber(sigma, MLC2) < sigma_to_ber(sigma, MLC4)

    def test_default_spec_orders_cell_reliability(self):
        """SLC programming is ~7x tighter than MLC2 (the paper's premise that
        SLC offers a much higher noise margin)."""
        sigma_slc = DEFAULT_NOISE.sigma(SLC)
        sigma_mlc = DEFAULT_NOISE.sigma(MLC2)
        assert sigma_slc == pytest.approx(sigma_mlc / 7.0)
        assert DEFAULT_NOISE.sigma(MLC3) > sigma_mlc
        assert DEFAULT_NOISE.sigma(MLC4) > DEFAULT_NOISE.sigma(MLC3)

    def test_default_spec_anchored_at_measured_mlc2_ber(self):
        assert DEFAULT_NOISE.ber(MLC2) == pytest.approx(MEASURED_MLC2_BER, rel=1e-6)

    def test_slc_storage_effectively_error_free(self):
        # At 7x tighter programming, SLC's implied BER is negligible —
        # far better than 7x lower (the ratio is a conservative floor).
        assert DEFAULT_NOISE.ber(SLC) < DEFAULT_NOISE.ber(MLC2) / 7.0

    def test_custom_spec(self):
        spec = NoiseSpec(sigmas={SLC.name: 0.05})
        assert spec.sigma(SLC) == 0.05
        with pytest.raises(KeyError):
            spec.sigma(MLC2)

    def test_noiseless_spec(self):
        spec = NoiseSpec.noiseless()
        assert spec.sigma(SLC) == 0.0
        assert spec.ber(MLC2) == 0.0

    def test_empirical_ber_matches_analytic(self):
        """Monte-carlo check of the analytic BER integral."""
        sigma = ber_to_sigma(MEASURED_MLC2_BER, MLC2)
        rng = np.random.default_rng(0)
        levels = rng.integers(0, 4, size=200_000)
        noisy = apply_multiplicative_noise(levels.astype(float), sigma, rng)
        read = np.clip(np.rint(noisy), 0, 3)
        measured = (read != levels).mean()
        assert measured == pytest.approx(0.0404, abs=0.004)


class TestApplyNoise:
    def test_zero_sigma_identity_copy(self, rng):
        x = rng.normal(size=(5, 5))
        out = apply_multiplicative_noise(x, 0.0, rng)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_zero_values_stay_zero(self, rng):
        x = np.zeros((10, 10))
        out = apply_multiplicative_noise(x, 0.5, rng)
        np.testing.assert_array_equal(out, x)

    def test_noise_scale_matches_sigma(self):
        rng = np.random.default_rng(1)
        x = np.ones(100_000)
        out = apply_multiplicative_noise(x, 0.1, rng)
        assert out.std() == pytest.approx(0.1, rel=0.05)
        assert out.mean() == pytest.approx(1.0, abs=0.002)
