"""Multi-head attention matching the paper's Transformer description (Eq. 1-2).

The projections ``W_Q``, ``W_K``, ``W_V`` and the output projection ``W_proj``
are :class:`~repro.nn.modules.Linear` layers over static weights — the parts
HyFlexPIM maps to *analog* RRAM PIM.  The dynamic products ``Q·Kᵀ`` and
``S·V`` (the paper's orange box, Fig. 9) are plain matmuls here; the hardware
path executes them on *digital* PIM (see :mod:`repro.pim.digital_module`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.modules import Dropout, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["AnalogAttention", "MultiHeadAttention", "causal_mask"]


def causal_mask(seq_len: int, kv_len: int | None = None) -> np.ndarray:
    """Boolean mask that is True where attention must be *blocked*.

    With only ``seq_len`` this is the familiar (L, L) upper-triangular mask
    (key ``j`` blocked for query ``i`` when ``j > i``).  With ``kv_len`` it
    generalizes to incremental decoding over a KV cache: the ``seq_len``
    queries sit at positions ``kv_len - seq_len .. kv_len - 1`` of a
    ``kv_len``-long key prefix, so query row ``i`` may attend keys
    ``j <= kv_len - seq_len + i``.  ``kv_len == seq_len`` recovers the
    classic mask bit-for-bit.
    """
    kv_len = seq_len if kv_len is None else kv_len
    if kv_len < seq_len:
        raise ValueError(f"kv_len ({kv_len}) must be >= seq_len ({seq_len})")
    return np.triu(np.ones((seq_len, kv_len), dtype=bool), k=kv_len - seq_len + 1)


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Parameters
    ----------
    d_model:
        Hidden dimension ``D_h`` of the model.
    num_heads:
        Head count; ``d_head = d_model / num_heads``.
    dropout:
        Attention-probability dropout rate.
    causal:
        If True, applies an autoregressive mask (decoder blocks).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} is not divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.causal = causal
        self.w_q = Linear(d_model, d_model, rng=rng)
        self.w_k = Linear(d_model, d_model, rng=rng)
        self.w_v = Linear(d_model, d_model, rng=rng)
        self.w_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, L, D) -> (B, H, L, d_head)
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose((0, 2, 1, 3))

    def forward(
        self,
        x: Tensor,
        attention_mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """Run self-attention over ``x`` of shape (batch, seq, d_model).

        ``attention_mask`` is an optional boolean array broadcastable to
        (batch, 1, seq, kv_len); True entries are blocked.

        ``cache`` is an optional per-layer KV-cache slot (see
        :meth:`repro.nn.kv_cache.KVCache.layer`): Q/K/V are computed only for
        the ``seq`` *new* tokens, the new K/V are appended to the cache, and
        attention runs over the full cached prefix — the O(L)-per-token
        incremental path.  Cached K/V are constants (inference only; no
        gradient flows into previously cached tokens).

        With a ragged cache the key-validity mask is derived automatically
        only when ``attention_mask`` is None; a caller supplying its own
        mask must already include ``cache.key_padding_mask(...)`` (as
        :class:`~repro.nn.transformer.DecoderLM` does, computing it once and
        sharing it across all layers instead of rebuilding it per block).
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.w_q(x), batch, seq)
        k = self._split_heads(self.w_k(x), batch, seq)
        v = self._split_heads(self.w_v(x), batch, seq)

        kv_len = seq
        if cache is not None:
            offset = cache.offset
            k_data, v_data = cache.append(k.data, v.data)
            kv_len = offset + seq
            k, v = Tensor(k_data), Tensor(v_data)
            if attention_mask is None:
                attention_mask = cache.key_padding_mask(kv_len)

        scores = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / math.sqrt(self.d_head))
        mask = self._combined_mask(seq, attention_mask, kv_len=kv_len)
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        probs = scores.softmax(axis=-1)
        probs = self.attn_dropout(probs)

        context = probs @ v  # (B, H, seq, d_head)
        context = context.transpose((0, 2, 1, 3)).reshape(batch, seq, self.d_model)
        return self.w_proj(context)

    def _combined_mask(
        self,
        seq: int,
        attention_mask: np.ndarray | None,
        kv_len: int | None = None,
    ) -> np.ndarray | None:
        mask = None
        if self.causal:
            mask = causal_mask(seq, kv_len)[None, None, :, :]
        if attention_mask is not None:
            attention_mask = np.asarray(attention_mask, dtype=bool)
            if attention_mask.ndim == 2:  # (B, kv_len) padding mask over keys
                attention_mask = attention_mask[:, None, None, :]
            mask = attention_mask if mask is None else (mask | attention_mask)
        return mask

    def static_linears(self) -> dict[str, Linear]:
        """The four static-weight projections HyFlexPIM maps to analog PIM."""
        return {"w_q": self.w_q, "w_k": self.w_k, "w_v": self.w_v, "w_proj": self.w_proj}


class AnalogAttention(MultiHeadAttention):
    """Attention whose dynamic products execute as crossbar GEMVs.

    Extends :class:`MultiHeadAttention` with an *analog* incremental-decode
    path: when the per-layer cache slot exposes crossbar dynamic operands
    (a :class:`~repro.pim.kv_cache.CrossbarKVCache` slot), ``Q·Kᵀ`` runs as
    a GEMV against the bitline-grown key operand and ``S·V`` against the
    wordline-grown value operand — per row, per head, with INT8 activation
    quantization and host-side dequantization by the cached per-token
    scales.  Softmax (and masking) stays on the host, mirroring the
    paper's SFU placement.  Every other call shape — no cache, a plain
    :class:`~repro.nn.kv_cache.KVCache`, calibration forwards, non-causal
    use — falls back to the inherited host path, so the module is a
    drop-in replacement installed by
    ``ServingEngine.deploy(attention="analog")``.

    This module never imports the PIM/RRAM layers: the executor and the
    operand handles are duck-typed, injected through the constructor and
    the cache slot respectively.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = False,
        rng: np.random.Generator | None = None,
        executor=None,
    ) -> None:
        super().__init__(d_model, num_heads, dropout=dropout, causal=causal, rng=rng)
        self.executor = executor

    @classmethod
    def from_host(cls, host: MultiHeadAttention, executor) -> "AnalogAttention":
        """Wrap an existing attention module without touching its weights.

        Adopts the host's four projection modules *by reference* (they may
        already be :class:`~repro.pim.hybrid.HybridLinear` replacements)
        plus its dropout, so swapping a block's attention for the analog
        variant changes only where the dynamic products execute.
        """
        attn = cls(
            host.d_model,
            host.num_heads,
            causal=host.causal,
            executor=executor,
        )
        attn.w_q = host.w_q
        attn.w_k = host.w_k
        attn.w_v = host.w_v
        attn.w_proj = host.w_proj
        attn.attn_dropout = host.attn_dropout
        return attn

    def forward(
        self,
        x: Tensor,
        attention_mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """Host-path attention, or crossbar GEMVs when the cache is analog.

        The analog path is selected only for causal attention over a cache
        slot exposing the analog handle bundle.  ``attention_mask`` is
        ignored there: the per-row committed lengths give the exact
        combined causal + key-validity mask (the same structure the host
        path derives from ``key_padding_mask``), built per row instead.
        The path is inference-only — attention-probability dropout is not
        applied (the serving engine always decodes in eval mode, where it
        is the identity on the host path too).
        """
        handles = getattr(cache, "analog", None) if cache is not None else None
        if handles is None or not self.causal:
            return super().forward(x, attention_mask=attention_mask, cache=cache)

        batch, seq, _ = x.shape
        q = self._split_heads(self.w_q(x), batch, seq)
        k = self._split_heads(self.w_k(x), batch, seq)
        v = self._split_heads(self.w_v(x), batch, seq)
        # Committed per-row lengths (append does not advance them).
        lengths = np.asarray(handles.lengths, dtype=np.int64).copy()
        cache.append(k.data, v.data)  # host mirror + operand columns/rows

        ex = handles.executor
        inv_sqrt_d = 1.0 / math.sqrt(self.d_head)
        context = np.zeros((batch, self.num_heads, seq, self.d_head))
        for r in range(batch):
            total = int(lengths[r]) + seq
            # Query t of this pass may attend keys j <= lengths[r] + t: the
            # causal and ragged-validity constraints collapse into one
            # per-row comparison against the committed length.
            blocked = (
                np.arange(total)[None, :]
                > (int(lengths[r]) + np.arange(seq))[:, None]
            )
            for h in range(self.num_heads):
                q_codes, q_scale = ex.quantize_block(q.data[r, h])
                scores_int = handles.k_op(r, h).gemv(
                    q_codes, input_bits=ex.activation_bits
                )
                k_scales = handles.k_scales(r, h)[:total]
                scores = (
                    np.asarray(scores_int, dtype=np.float64)
                    * (q_scale * inv_sqrt_d)
                    * k_scales[None, :]
                )
                scores[blocked] = -1e9
                shifted = np.exp(scores - scores.max(axis=-1, keepdims=True))
                probs = shifted / shifted.sum(axis=-1, keepdims=True)
                # Fold the per-token value scales into the streamed operand
                # so one block scale dequantizes the AV product exactly.
                weighted = probs * handles.v_scales(r, h)[:total][None, :]
                p_codes, p_scale = ex.quantize_block(weighted)
                ctx_int = handles.v_op(r, h).gemv(
                    p_codes, input_bits=ex.activation_bits
                )
                context[r, h] = np.asarray(ctx_int, dtype=np.float64) * p_scale
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.w_proj(Tensor(merged.astype(x.data.dtype)))
