"""Synthetic workloads replacing GLUE, WikiText-2, PTB and CIFAR-10.

See DESIGN.md ("Substitutions") for why each stand-in preserves the
behaviour the paper's experiments measure.
"""

from repro.datasets.synthetic_glue import (
    CLS_TOKEN,
    GLUE_TASKS,
    GlueTaskData,
    GlueTaskSpec,
    SEP_TOKEN,
    make_glue_task,
)
from repro.datasets.synthetic_lm import (
    LMCorpusSpec,
    MarkovCorpus,
    make_lm_corpus,
    ptb_like,
    wikitext2_like,
)
from repro.datasets.synthetic_vision import (
    CIFAR10_LIKE_CLASSES,
    VisionData,
    VisionSpec,
    make_vision_dataset,
)

__all__ = [
    "CIFAR10_LIKE_CLASSES",
    "CLS_TOKEN",
    "GLUE_TASKS",
    "GlueTaskData",
    "GlueTaskSpec",
    "LMCorpusSpec",
    "MarkovCorpus",
    "SEP_TOKEN",
    "VisionData",
    "VisionSpec",
    "make_glue_task",
    "make_lm_corpus",
    "make_vision_dataset",
    "ptb_like",
    "wikitext2_like",
]
