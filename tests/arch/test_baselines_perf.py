"""Tests for baseline models and the Fig. 14-16 comparison orchestration."""

from __future__ import annotations

import pytest

from repro.arch import PerformanceComparison
from repro.models import paper_model


@pytest.fixture(scope="module")
def comparison():
    return PerformanceComparison()


@pytest.fixture(scope="module")
def bert():
    return paper_model("bert-large")


@pytest.fixture(scope="module")
def gpt2():
    return paper_model("gpt2")


class TestFig14LinearEnergy:
    @pytest.fixture(scope="class")
    def table(self, comparison, bert):
        return comparison.linear_energy_table(
            bert, seq_lens=(128, 512, 1024, 8192), slc_rates=(0.05, 0.1, 0.3, 0.5)
        )

    def test_ordering_holds_at_every_n(self, table):
        """Paper's Fig. 14 ordering: HyFlexPIM < ASADI† < ASADI < NMP <
        SPRINT < non-PIM."""
        for n, row in table.items():
            assert row["hyflexpim@5%"] < row["asadi-dagger"], n
            assert row["asadi-dagger"] < row["asadi"], n
            assert row["asadi"] < row["nmp"], n
            assert row["nmp"] < row["sprint"], n
            assert row["sprint"] < row["non-pim"], n

    def test_non_pim_is_reference_100(self, table):
        for row in table.values():
            assert row["non-pim"] == pytest.approx(100.0)

    def test_hyflexpim_energy_rises_with_slc_rate(self, table):
        for row in table.values():
            assert (
                row["hyflexpim@5%"]
                < row["hyflexpim@10%"]
                < row["hyflexpim@30%"]
                < row["hyflexpim@50%"]
            )

    def test_pim_advantage_shrinks_with_n(self, table):
        """Normalized PIM energy rises with N as the baseline's DRAM fetch
        amortizes (Fig. 14's 15.1 -> 27.3 trend)."""
        values = [table[n]["hyflexpim@5%"] for n in (128, 512, 1024, 8192)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_max_gain_vs_asadi_dagger_near_paper(self, table):
        """Paper: max 1.24x vs ASADI† at 5 % SLC."""
        ratio = table[128]["asadi-dagger"] / table[128]["hyflexpim@5%"]
        assert 1.1 < ratio < 1.4

    def test_max_gain_vs_non_pim_near_paper(self, table):
        """Paper: max 6.6x vs the non-PIM baseline."""
        ratio = table[128]["non-pim"] / table[128]["hyflexpim@5%"]
        assert 5.0 < ratio < 9.0

    def test_max_gain_vs_sprint_near_paper(self, table):
        """Paper: max 5.4x linear-layer energy reduction vs SPRINT."""
        ratio = table[128]["sprint"] / table[128]["hyflexpim@5%"]
        assert 4.0 < ratio < 7.5

    def test_asadi_fp32_factor(self, table):
        """ASADI (FP32) vs ASADI† (INT8) gap, paper ~2.24x."""
        ratio = table[128]["asadi"] / table[128]["asadi-dagger"]
        assert ratio == pytest.approx(2.24, abs=0.01)


class TestFig15EndToEnd:
    def test_improvement_ordering(self, comparison, bert):
        improvement = comparison.energy_improvement(bert, 128, 0.05)
        assert improvement["non-pim"] > improvement["nmp"] > improvement["asadi-dagger"]
        assert improvement["sprint"] > 1.0
        assert improvement["asadi-dagger"] > 1.0

    def test_asadi_dagger_gap_grows_with_n(self, comparison, bert):
        """Paper Fig. 15(a): 1.45x at N=128 growing to 1.67x at N=1024,
        driven by ASADI's FP32 attention."""
        short = comparison.energy_improvement(bert, 128, 0.05)["asadi-dagger"]
        long = comparison.energy_improvement(bert, 1024, 0.05)["asadi-dagger"]
        assert long > short
        assert 1.1 < short < 1.6
        assert 1.15 < long < 1.9

    def test_non_pim_gap_in_paper_range(self, comparison, bert, gpt2):
        """Paper: 6.15x (BERT-Large) / 5.82x (GPT-2) at N=128."""
        assert 4.5 < comparison.energy_improvement(bert, 128, 0.05)["non-pim"] < 9.0
        assert 4.5 < comparison.energy_improvement(gpt2, 128, 0.30)["non-pim"] < 9.0

    def test_breakdown_total_consistency(self, comparison, bert):
        breakdown = comparison.end_to_end_energy(bert, 512, 0.05)
        assert breakdown.total_pj() == pytest.approx(
            sum(breakdown.categories.values())
        )


class TestFig16Speedup:
    def test_speedup_vs_asadi_dagger_in_paper_band(self, comparison, bert):
        """Paper: 1.1 - 1.86x across rates; decreasing in SLC rate."""
        table = comparison.speedup_table(
            bert, seq_lens=(128, 1024), slc_rates=(0.05, 0.2, 0.5)
        )["asadi-dagger"]
        for n, rates in table.items():
            assert 1.5 < rates[0.05] < 2.0, n
            assert 1.05 < rates[0.5] < 1.5, n
            assert rates[0.05] > rates[0.2] > rates[0.5]

    def test_speedup_vs_sprint_prefill(self, comparison, bert):
        """Paper: ~10.6x on GLUE-class encoder prefill."""
        table = comparison.speedup_table(
            bert, seq_lens=(128,), slc_rates=(0.2,)
        )["sprint"]
        assert 6.0 < table[128][0.2] < 16.0

    def test_speedup_vs_sprint_decode(self, comparison, gpt2):
        """Paper: ~44-46x on WikiText-2 generation (bandwidth-bound SPRINT)."""
        table = comparison.speedup_table(
            gpt2, seq_lens=(1024,), slc_rates=(0.2,), mode="decode"
        )["sprint"]
        assert 25.0 < table[1024][0.2] < 70.0

    def test_decode_speedup_exceeds_prefill_vs_sprint(self, comparison, gpt2):
        prefill = comparison.speedup_table(
            gpt2, seq_lens=(1024,), slc_rates=(0.2,)
        )["sprint"][1024][0.2]
        decode = comparison.speedup_table(
            gpt2, seq_lens=(1024,), slc_rates=(0.2,), mode="decode"
        )["sprint"][1024][0.2]
        assert decode > prefill


class TestBaselineTimeModels:
    def test_decode_slower_than_prefill_for_streaming(self, bert, comparison):
        sprint = comparison.baselines["sprint"]
        assert sprint.inference_time_s(bert, 512, mode="decode") > sprint.inference_time_s(
            bert, 512, mode="prefill"
        )

    def test_nmp_faster_than_non_pim_decode(self, bert, comparison):
        """HBM bandwidth beats DDR when streaming weights per token."""
        nmp = comparison.baselines["nmp"].inference_time_s(bert, 512, mode="decode")
        non_pim = comparison.baselines["non-pim"].inference_time_s(bert, 512, mode="decode")
        assert nmp < non_pim
