"""Bit-serial analog crossbar GEMV (Figs. 3, 6, 7).

Implements the paper's analog PIM dataflow faithfully:

- signed INT8 weights are *offset-encoded* to [0, 255] (conductances cannot
  be negative) and **bit-sliced across adjacent columns** — eight 1-bit
  columns per weight for SLC, four 2-bit cells for MLC (Figs. 6-7);
- each programmed cell carries multiplicative Gaussian programming noise
  calibrated to measured BER (Section 5.2);
- inputs stream **bit-serially** over the wordlines, one bit-plane per
  cycle; the two's-complement MSB cycle gets a negative weight in the
  digital shift-and-add, and the weight offset is removed digitally by
  subtracting ``offset x Σ(inputs)``;
- every bitline sum passes through the shared SAR ADC (6 b SLC / 7 b MLC);
- matrices larger than one 64x128 array tile across arrays, with partial
  sums accumulated digitally (Section 3.1).

In the noiseless case the pipeline is *exact*: it returns the integer GEMV
``x @ W.T`` (verified by tests), because the unit-step ADC only errs when a
bitline saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.quantizer import int_to_bits
from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.cell import CellType
from repro.rram.noise import apply_multiplicative_noise

__all__ = [
    "CrossbarConfig",
    "WeightSlices",
    "slice_weights",
    "input_bit_weights",
    "bit_serial_gemv",
    "ProgrammedMatrix",
    "GemvStats",
]


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry of one analog RRAM array (Fig. 5(c): 64 WLs x 128 BLs)."""

    rows: int = 64
    cols: int = 128

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("rows and cols must be positive")


@dataclass
class WeightSlices:
    """Bit-sliced, offset-encoded weight planes ready for programming.

    ``values`` has shape (in_features, out_features, num_slices) with entries
    in ``[0, 2^cell_bits - 1]``; slice ``s`` carries bit positions
    ``[s*cell_bits, (s+1)*cell_bits)`` of the offset-encoded weight, so its
    shift-and-add impact factor is ``2^(s*cell_bits)`` (1x, 4x, 16x... for
    2-bit MLC, exactly as in Fig. 7).
    """

    values: np.ndarray
    cell: CellType
    weight_bits: int
    offset: int

    @property
    def num_slices(self) -> int:
        return self.values.shape[-1]

    @property
    def slice_factors(self) -> np.ndarray:
        return (2 ** (self.cell.bits * np.arange(self.num_slices))).astype(np.int64)

    def columns_per_weight(self) -> int:
        return self.num_slices


def slice_weights(
    weight_codes: np.ndarray, cell: CellType, weight_bits: int = 8
) -> WeightSlices:
    """Offset-encode signed weight codes and split them into cell slices.

    ``weight_codes`` is (out_features, in_features), signed integers in
    ``[-2^(bits-1), 2^(bits-1) - 1]``.
    """
    weight_codes = np.asarray(weight_codes)
    if weight_codes.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {weight_codes.shape}")
    offset = 2 ** (weight_bits - 1)
    unsigned = weight_codes.astype(np.int64) + offset
    if unsigned.min(initial=0) < 0 or unsigned.max(initial=0) >= 2**weight_bits:
        raise ValueError(f"weight codes exceed the signed {weight_bits}-bit range")
    bits = int_to_bits(unsigned.T, weight_bits)  # (in, out, weight_bits)
    num_slices = -(-weight_bits // cell.bits)
    padded = weight_bits % cell.bits
    if padded:
        pad = np.zeros(bits.shape[:-1] + (cell.bits - padded,), dtype=bits.dtype)
        bits = np.concatenate([bits, pad], axis=-1)
    grouped = bits.reshape(bits.shape[0], bits.shape[1], num_slices, cell.bits)
    bit_weights = 1 << np.arange(cell.bits)
    values = (grouped * bit_weights).sum(axis=-1)
    cell.validate_levels(values)
    return WeightSlices(values=values, cell=cell, weight_bits=weight_bits, offset=offset)


def input_bit_weights(input_bits: int) -> np.ndarray:
    """Shift-and-add weights per input bit-plane (two's complement).

    LSB-first: ``[1, 2, 4, ..., -2^(n-1)]`` — the MSB plane carries the
    negative two's-complement weight, applied digitally.
    """
    weights = (1 << np.arange(input_bits)).astype(np.int64)
    weights[-1] = -weights[-1]
    return weights


@dataclass
class GemvStats:
    """Operation counts collected during a crossbar GEMV (for energy hooks)."""

    adc_conversions: int = 0
    wordline_activations: int = 0
    array_tiles: int = 0
    cells_programmed: int = 0
    saturated_conversions: int = 0
    input_cycles: int = 0

    def merge(self, other: "GemvStats") -> None:
        self.adc_conversions += other.adc_conversions
        self.wordline_activations += other.wordline_activations
        self.array_tiles += other.array_tiles
        self.cells_programmed += other.cells_programmed
        self.saturated_conversions += other.saturated_conversions
        self.input_cycles += other.input_cycles


class ProgrammedMatrix:
    """A weight matrix programmed (once) into noisy crossbar cells.

    Static weights are written a single time before inference (Section 3.2),
    so programming noise is *frozen* at construction; every subsequent GEMV
    reads the same perturbed conductances.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        cell: CellType,
        noise_sigma: float = 0.0,
        rng: np.random.Generator | None = None,
        config: CrossbarConfig | None = None,
        weight_bits: int = 8,
        adc: SarAdc | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.config = config or CrossbarConfig()
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        self.out_features, self.in_features = weight_codes.shape
        self.cell = cell
        self.slices = slice_weights(weight_codes, cell, weight_bits)
        self.programmed = apply_multiplicative_noise(
            self.slices.values.astype(float), noise_sigma, rng
        )
        self.adc = adc or SarAdc(bits=required_adc_bits(self.config.rows, cell.bits))

    def gemv(
        self,
        input_codes: np.ndarray,
        input_bits: int = 8,
        stats: GemvStats | None = None,
    ) -> np.ndarray:
        """Bit-serial ``x @ W.T`` against the programmed cells (signed ints)."""
        input_codes = np.atleast_2d(np.asarray(input_codes, dtype=np.int64))
        batch, in_features = input_codes.shape
        if in_features != self.in_features:
            raise ValueError(
                f"shape mismatch: inputs {input_codes.shape}, "
                f"weights ({self.out_features}, {self.in_features})"
            )
        offset_inputs = input_codes + 2 ** (input_bits - 1)
        if offset_inputs.min() < 0 or offset_inputs.max() >= 2**input_bits:
            raise ValueError(f"input codes exceed the signed {input_bits}-bit range")
        raw_bits = int_to_bits(input_codes & (2**input_bits - 1), input_bits)
        bit_w = input_bit_weights(input_bits)
        slice_f = self.slices.slice_factors

        accumulator = np.zeros((batch, self.out_features), dtype=np.int64)
        num_tiles = -(-in_features // self.config.rows)
        for tile_index in range(num_tiles):
            row_start = tile_index * self.config.rows
            row_stop = min(row_start + self.config.rows, in_features)
            tile_cells = self.programmed[row_start:row_stop]  # (rows_t, out, n_s)
            tile_bits = raw_bits[:, row_start:row_stop, :]  # (batch, rows_t, in_bits)
            # Analog bitline sums for every input bit-plane at once:
            # (batch, input_bits, out, n_s)
            sums = np.einsum("brk,ros->bkos", tile_bits.astype(float), tile_cells)
            codes = self.adc.convert(sums)
            if stats is not None:
                stats.adc_conversions += codes.size
                stats.saturated_conversions += int((codes == self.adc.full_scale).sum())
                stats.wordline_activations += int(tile_bits.sum()) * self.slices.num_slices
                stats.input_cycles += input_bits
            # Digital shift & add over input-bit planes and weight slices.
            accumulator += np.einsum("bkos,k,s->bo", codes, bit_w, slice_f)

        if stats is not None:
            col_tiles = -(-self.out_features * self.slices.num_slices // self.config.cols)
            stats.array_tiles += num_tiles * col_tiles
            stats.cells_programmed += self.slices.values.size

        # Remove the weight offset: x @ (W + 128).T = x @ W.T + 128 * sum(x).
        row_sums = input_codes.sum(axis=1, keepdims=True)
        return accumulator - self.slices.offset * row_sums


def bit_serial_gemv(
    input_codes: np.ndarray,
    weight_codes: np.ndarray,
    cell: CellType,
    noise_sigma: float = 0.0,
    rng: np.random.Generator | None = None,
    config: CrossbarConfig | None = None,
    input_bits: int = 8,
    weight_bits: int = 8,
    adc: SarAdc | None = None,
    stats: GemvStats | None = None,
) -> np.ndarray:
    """One-shot program + GEMV convenience wrapper around ProgrammedMatrix."""
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    if weight_codes.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {weight_codes.shape}")
    matrix = ProgrammedMatrix(
        weight_codes,
        cell,
        noise_sigma=noise_sigma,
        rng=rng,
        config=config,
        weight_bits=weight_bits,
        adc=adc,
    )
    return matrix.gemv(input_codes, input_bits=input_bits, stats=stats)
