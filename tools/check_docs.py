"""Docs link checker: relative links and BENCH_*.json references resolve.

Scans ``README.md`` and ``docs/*.md`` for

- relative markdown links (``[text](path)`` where ``path`` is not an
  absolute URL or a bare in-page anchor) — the target file must exist,
  and a ``#fragment`` on a markdown target must match a heading anchor
  in that file;
- ``BENCH_<name>.json`` mentions — the trajectory file must exist at the
  repo root (CI regenerates them, but the committed docs must only cite
  trajectories the repo actually tracks).

Run from anywhere: ``python tools/check_docs.py``.  Exits non-zero with
one line per broken reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_RE = re.compile(r"\bBENCH_\w+\.json\b")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def doc_files() -> list[Path]:
    """The markdown files the checker covers."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in ``path``."""
    anchors = set()
    for title in HEADING_RE.findall(path.read_text(encoding="utf-8")):
        slug = re.sub(r"[^\w\- ]", "", title.strip().lower().replace("`", ""))
        anchors.add(slug.replace(" ", "-"))
    return anchors


def check_file(path: Path) -> list[str]:
    """All broken references in one markdown file."""
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(REPO_ROOT)
    problems = []

    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target_path, _, fragment = target.partition("#")
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            problems.append(f"{rel}: broken link -> {target}")
        elif fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                problems.append(f"{rel}: missing anchor -> {target}")

    for bench in sorted(set(BENCH_RE.findall(text))):
        if not (REPO_ROOT / bench).exists():
            problems.append(f"{rel}: missing trajectory file -> {bench}")

    return problems


def main() -> int:
    """Check every covered file; print problems; 0 iff all clean."""
    problems = [p for f in doc_files() for p in check_file(f)]
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs OK: {len(doc_files())} files checked")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
