"""Fig. 15: end-to-end energy comparison and HyFlexPIM's breakdown."""

from __future__ import annotations

from repro.exp import ExperimentSpec

SEQ_LENS = (128, 512, 1024)
CASES = (("bert-large", 0.05), ("gpt2", 0.30))


def test_fig15_end_to_end_energy(benchmark, print_header, fresh_runner):
    spec = ExperimentSpec("fig15", params={"seq_lens": SEQ_LENS, "cases": CASES})

    result = benchmark(lambda: fresh_runner.run(spec))
    baselines = result["baselines"]
    categories = result["categories"]
    improvements = {
        name: {
            n: dict(zip(baselines, row))
            for n, row in zip(result["seq_lens"], payload["rows"])
        }
        for name, payload in result["improvements"].items()
    }
    breakdowns = {
        name: {
            n: dict(zip(categories, row))
            for n, row in zip(result["seq_lens"], payload["rows"])
        }
        for name, payload in result["breakdowns"].items()
    }

    print_header("Fig. 15(a,c) — end-to-end energy improvement over baselines (x)")
    for model_name, per_n in improvements.items():
        rate = result["improvements"][model_name]["slc_rate"]
        print(f"\n[{model_name} @ {int(rate * 100)}% SLC]")
        print(f"{'N':>6} " + " ".join(f"{b:>13}" for b in baselines))
        for n, row in per_n.items():
            print(f"{n:>6} " + " ".join(f"{row[b]:>12.2f}x" for b in baselines))

    print("\npaper anchors: BERT-Large N=128: non-PIM 6.15x, SPRINT/NMP 4.94x, ASADI+ 1.45x;")
    print("               GPT-2 N=128: 5.82x / 4.69x / 1.35x; gaps shrink as N grows.")

    print_header("Fig. 15(b,d) — HyFlexPIM energy breakdown (share of total)")
    for model_name, per_n in breakdowns.items():
        print(f"\n[{model_name}]")
        ordered = sorted(categories, key=lambda c: -per_n[SEQ_LENS[0]][c])
        print(f"{'category':>20} " + " ".join(f"N={n:>5}" for n in SEQ_LENS))
        for category in ordered:
            row = " ".join(f"{per_n[n][category] * 100:>6.1f}%" for n in SEQ_LENS)
            print(f"{category:>20} {row}")

    for model_name, per_n in improvements.items():
        for n, row in per_n.items():
            assert row["asadi-dagger"] > 1.0, (model_name, n)
            assert row["non-pim"] > row["asadi-dagger"], (model_name, n)
