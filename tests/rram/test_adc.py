"""Tests for the reconfigurable SAR ADC model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram import SarAdc, required_adc_bits


class TestPrecisionRule:
    def test_paper_values(self):
        # ceil(log2 64) + w - 1: 6 b for SLC (w=1), 7 b for MLC (w=2).
        assert required_adc_bits(64, 1) == 6
        assert required_adc_bits(64, 2) == 7

    def test_more_rows_more_bits(self):
        assert required_adc_bits(128, 1) == 7
        assert required_adc_bits(1024, 1) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            required_adc_bits(0, 1)


class TestSarAdc:
    def test_exact_on_integers_within_range(self):
        adc = SarAdc(bits=6)
        values = np.arange(64)
        np.testing.assert_array_equal(adc.convert(values.astype(float)), values)

    def test_clips_at_full_scale(self):
        adc = SarAdc(bits=6)
        assert adc.convert(np.array([100.0]))[0] == 63
        assert adc.convert(np.array([-5.0]))[0] == 0

    def test_rounds_to_nearest(self):
        adc = SarAdc(bits=6)
        np.testing.assert_array_equal(
            adc.convert(np.array([1.4, 1.6, 2.5])), [1, 2, 2]
        )  # numpy banker's rounding at .5

    def test_bits_bound_by_hardware(self):
        with pytest.raises(ValueError):
            SarAdc(bits=8, max_bits=7)

    def test_reconfigure_preserves_hardware(self):
        adc = SarAdc(bits=7)
        low = adc.reconfigure(6)
        assert low.bits == 6
        assert low.max_bits == 7
        assert low.bypassed_capacitors == 1

    def test_energy_doubles_per_bit(self):
        assert SarAdc(bits=7).relative_energy() == 2 * SarAdc(bits=6).relative_energy()

    def test_mlc_total_adc_energy_matches_slc(self):
        """Paper Section 3.2: MLC halves conversions but doubles per-conversion
        energy, so total ADC energy is unchanged."""
        slc_adc, mlc_adc = SarAdc(bits=6), SarAdc(bits=7)
        conversions_slc, conversions_mlc = 8, 4  # per 8-bit weight
        total_slc = conversions_slc * slc_adc.relative_energy()
        total_mlc = conversions_mlc * mlc_adc.relative_energy()
        assert total_slc == total_mlc

    @given(st.integers(1, 7), st.lists(st.floats(-10, 300, allow_nan=False), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_codes_always_in_range_property(self, bits, values):
        adc = SarAdc(bits=bits)
        codes = adc.convert(np.array(values))
        assert codes.min() >= 0
        assert codes.max() <= adc.full_scale

    @given(st.lists(st.floats(0, 63, allow_nan=False), min_size=2, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_monotonicity_property(self, values):
        adc = SarAdc(bits=6)
        values = np.sort(np.array(values))
        codes = adc.convert(values)
        assert (np.diff(codes) >= 0).all()
