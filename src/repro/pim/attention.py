"""Crossbar execution of the dynamic attention products (Q·Kᵀ and S·V).

:class:`CrossbarAttentionExecutor` is the deploy-wide context behind the
analog attention path: it owns the crossbar backend handle, cell type,
programming noise, kernel policy and a shared
:class:`~repro.rram.crossbar.GemvStats` sink; it mints the
:class:`~repro.rram.dynamic.DynamicOperand` tiles that
:class:`~repro.pim.kv_cache.CrossbarKVCache` grows per decoded token;
and it performs the INT8 activation quantization for queries, keys,
values and attention probabilities.

The executor is what :meth:`repro.serve.engine.ServingEngine.deploy`
installs when called with ``attention="analog"``: every transformer
block's attention module is swapped for an
:class:`~repro.nn.attention.AnalogAttention` holding this executor, and
the model's KV-cache factory is pointed at :meth:`make_cache` so the
continuous scheduler's pooled caches come out crossbar-backed with zero
scheduler changes.

When a :class:`~repro.dist.DeviceMesh` and an attention-head placement
are supplied, every KV append is charged to the interconnect ledger:
head tiles co-located with their block's chip write over the on-chip
link, remote heads over the chip-to-chip link.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.attention import AnalogAttention, MultiHeadAttention
from repro.nn.tensor import Tensor
from repro.rram.backend import CrossbarBackend, resolve_backend
from repro.rram.cell import MLC2, CellType
from repro.rram.crossbar import CrossbarConfig, GemvStats
from repro.rram.dynamic import DynamicOperand
from repro.rram.kernels import KernelPolicy

__all__ = ["CrossbarAttentionExecutor", "ReferenceQuantizedAttention"]


class CrossbarAttentionExecutor:
    """Deploy-wide context for analog attention over dynamic operands.

    Parameters
    ----------
    cell:
        RRAM cell type for the KV operand tiles (default 2-bit MLC).
    noise_sigma:
        Programming-noise σ applied to every appended K/V cell (0 = ideal;
        the engine derives this from its :class:`~repro.rram.NoiseSpec`).
    weight_bits / activation_bits:
        Signed code widths of the stored operand rows and the streamed
        inputs (both INT8 by default, matching the hybrid linear path).
    config / policy / backend:
        Crossbar geometry, kernel policy and execution backend — shared
        with the static-weight path so one wear ledger covers the chip.
    seed:
        Seed for the programming-noise generator.
    mesh / placement:
        Optional :class:`~repro.dist.DeviceMesh` plus a placement object
        exposing ``head_chip(layer, head)`` and ``block_chip(layer)``
        (see :func:`repro.dist.place_attention_heads`); enables KV-write
        traffic accounting.
    """

    def __init__(
        self,
        cell: CellType = MLC2,
        noise_sigma: float = 0.0,
        weight_bits: int = 8,
        activation_bits: int = 8,
        config: CrossbarConfig | None = None,
        policy: KernelPolicy | None = None,
        backend: CrossbarBackend | None = None,
        seed: int = 0,
        mesh=None,
        placement=None,
    ) -> None:
        self.cell = cell
        self.noise_sigma = float(noise_sigma)
        self.weight_bits = int(weight_bits)
        self.activation_bits = int(activation_bits)
        self.config = config or CrossbarConfig()
        self.policy = policy
        self.backend = resolve_backend(backend)
        self.mesh = mesh
        self.placement = placement
        self.rng = np.random.default_rng(seed)
        #: shared read/write accounting across every operand this executor mints
        self.stats = GemvStats()
        #: every DynamicOperand minted (for wear reporting)
        self.operands: list[DynamicOperand] = []
        #: tokens written into layer-0 operands (== tokens cached per stream)
        self.kv_tokens_written = 0

    # ------------------------------------------------------------------
    # Operand / cache factories
    # ------------------------------------------------------------------
    def new_operand(self, capacity: int, width: int, grow: str) -> DynamicOperand:
        """Mint a KV dynamic operand wired to this executor's context."""
        op = DynamicOperand(
            capacity,
            width,
            cell=self.cell,
            grow=grow,
            weight_bits=self.weight_bits,
            noise_sigma=self.noise_sigma,
            rng=self.rng,
            config=self.config,
            policy=self.policy,
            backend=self.backend,
            stats=self.stats,
        )
        self.operands.append(op)
        return op

    def make_cache(
        self,
        num_layers: int,
        batch: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
        dtype=None,
    ):
        """KV-cache factory the engine installs on the deployed model.

        Signature-compatible with what
        :meth:`repro.nn.transformer.DecoderLM.new_cache` allocates, so the
        continuous scheduler's slot pool transparently produces
        crossbar-backed caches.
        """
        from repro.pim.kv_cache import CrossbarKVCache

        return CrossbarKVCache(
            num_layers,
            batch,
            num_heads,
            head_dim,
            capacity,
            dtype=dtype,
            executor=self,
        )

    # ------------------------------------------------------------------
    # Activation quantization (symmetric signed INT8 by default)
    # ------------------------------------------------------------------
    @property
    def _qmax(self) -> int:
        return 2 ** (self.activation_bits - 1) - 1

    def quantize_rows(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row symmetric quantization of ``(t, d)`` → codes + scales."""
        x = np.asarray(x, dtype=np.float64)
        absmax = np.maximum(np.abs(x).max(axis=-1), 1e-12)
        scales = absmax / self._qmax
        codes = np.clip(np.rint(x / scales[:, None]), -self._qmax, self._qmax)
        return codes.astype(np.int64), scales

    def quantize_block(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """One-scale symmetric quantization of a whole block → codes + scale."""
        x = np.asarray(x, dtype=np.float64)
        absmax = max(float(np.abs(x).max(initial=0.0)), 1e-12)
        scale = absmax / self._qmax
        codes = np.clip(np.rint(x / scale), -self._qmax, self._qmax)
        return codes.astype(np.int64), scale

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def record_kv_write(
        self, layer: int, batch: int, tokens: int, head_dim: int, num_heads: int
    ) -> None:
        """Account one cache append: token counter + interconnect bytes.

        Bytes cover both operands (K and V) at one byte per INT8 code.
        Heads whose tiles sit on their block's chip write over the on-chip
        link; remote heads cross the chip-to-chip link.
        """
        if layer == 0:
            self.kv_tokens_written += batch * tokens
        if self.mesh is None:
            return
        per_head = batch * tokens * head_dim * 2
        for head in range(num_heads):
            link = "oci"
            if self.placement is not None and self.placement.head_chip(
                layer, head
            ) != self.placement.block_chip(layer):
                link = "pcie6"
            self.mesh.record(link, per_head)

    def wear_report(self) -> dict:
        """Endurance summary over every operand this executor minted.

        ``dynamic_writes`` / ``dynamic_write_pulses`` come from the
        backend ledger's dynamic channel (all partial-region writes on
        this backend); the wear fractions are per-operand-tile maxima and
        means, and ``kv_tokens_written`` counts tokens cached per stream
        (layer-0 appends), giving the wear-per-token denominators the
        benchmarks report.
        """
        fracs = [op.wear_fraction() for op in self.operands]
        ledger = self.backend.ledger
        return {
            "operands": len(self.operands),
            "kv_tokens_written": int(self.kv_tokens_written),
            "dynamic_writes": int(ledger.dynamic_writes),
            "dynamic_write_pulses": int(sum(ledger.dynamic_write_pulses.values())),
            "max_wear_fraction": float(max(fracs, default=0.0)),
            "mean_wear_fraction": float(np.mean(fracs)) if fracs else 0.0,
        }


class ReferenceQuantizedAttention(AnalogAttention):
    """Bit-exact host-side specification of the analog attention path.

    Runs over a *plain* :class:`~repro.nn.kv_cache.KVCache`, re-deriving
    the INT8 K/V codes and per-token scales from the float buffers on
    every forward and executing the same integer products, in the same
    float operation order, as :class:`~repro.nn.attention.AnalogAttention`
    does through crossbar GEMVs.  Because per-token quantization depends
    only on each token's own row, re-quantizing the cached prefix
    reproduces exactly the codes the crossbar operands accumulated append
    by append — so a noiseless, saturation-free analog deployment must
    agree with this module *bitwise*, end to end, token for token.

    That makes it the equality reference for the analog path's tests and
    benchmark gates: analog-vs-:class:`ReferenceQuantizedAttention` is an
    exact check of the crossbar machinery (operand growth, epoch caching,
    row compaction, scale bookkeeping), while analog-vs-float-host is a
    tolerance check of the INT8 quantization itself.

    The executor here is used only for its ``quantize_rows`` /
    ``quantize_block`` helpers and ``activation_bits`` — no operands are
    minted and nothing touches a backend.
    """

    def forward(self, x, attention_mask=None, cache=None):
        """Quantized host attention mirroring the analog execution order."""
        if cache is None or not self.causal:
            return MultiHeadAttention.forward(
                self, x, attention_mask=attention_mask, cache=cache
            )
        batch, seq, _ = x.shape
        q = self._split_heads(self.w_q(x), batch, seq)
        k = self._split_heads(self.w_k(x), batch, seq)
        v = self._split_heads(self.w_v(x), batch, seq)
        kv = cache.cache
        lengths = np.asarray(kv.lengths, dtype=np.int64).copy()
        cache.append(k.data, v.data)

        ex = self.executor
        inv_sqrt_d = 1.0 / math.sqrt(self.d_head)
        k_buf = kv.keys[cache.index]
        v_buf = kv.values[cache.index]
        context = np.zeros((batch, self.num_heads, seq, self.d_head))
        for r in range(batch):
            total = int(lengths[r]) + seq
            blocked = (
                np.arange(total)[None, :]
                > (int(lengths[r]) + np.arange(seq))[:, None]
            )
            for h in range(self.num_heads):
                q_codes, q_scale = ex.quantize_block(q.data[r, h])
                k_codes, k_scales = ex.quantize_rows(k_buf[r, h, :total])
                scores_int = q_codes @ k_codes.T
                scores = (
                    np.asarray(scores_int, dtype=np.float64)
                    * (q_scale * inv_sqrt_d)
                    * k_scales[None, :]
                )
                scores[blocked] = -1e9
                shifted = np.exp(scores - scores.max(axis=-1, keepdims=True))
                probs = shifted / shifted.sum(axis=-1, keepdims=True)
                v_codes, v_scales = ex.quantize_rows(v_buf[r, h, :total])
                weighted = probs * v_scales[None, :]
                p_codes, p_scale = ex.quantize_block(weighted)
                ctx_int = p_codes @ v_codes
                context[r, h] = np.asarray(ctx_int, dtype=np.float64) * p_scale
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.w_proj(Tensor(merged.astype(x.data.dtype)))
