"""HybridLinear: factored inference layer on hybrid SLC/MLC analog PIM.

This is the deployment form of one static weight matrix after gradient
redistribution (Fig. 9): the layer computes

    y = ((x @ Aᵀ) @ Bᵀ) + b,   A = Σ·Vᵀ (rank x in),  B = U (out x rank)

with both GEMVs running through INT8 quantization and noisy analog RRAM.
Each rank is assigned to SLC (protected) or MLC (efficient); the two
partial GEMVs recombine digitally.

Two execution modes trade fidelity for speed:

- ``"crossbar"`` — full bit-serial simulation (bit-sliced cells, frozen
  programming noise, 6/7-b ADC, shift-and-add).  Exact to the hardware
  model; used for layer-level studies and verification.
- ``"fast"`` — weight-level noise injection ``W̃ = W ⊙ (1 + η)`` on the
  INT8-quantized factors, the paper's own Eq. (5) accuracy methodology.
  Orders of magnitude faster; used for whole-model accuracy sweeps
  (Fig. 12/13).  Consistency between the two modes is unit-tested.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor, get_default_dtype
from repro.quant.quantizer import QuantParams, dequantize, quantize
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import CrossbarConfig, GemvStats
from repro.rram.kernels import KernelPolicy
from repro.rram.mapping import HybridSplit, array_footprint, split_by_rank
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec, apply_multiplicative_noise
from repro.svd.pipeline import LayerPlan

__all__ = [
    "HybridLinear",
    "MagnitudeProtectedLinear",
    "attach_hybrid_layers",
    "calibrate_activations",
]

_MODES = ("fast", "crossbar")

#: Bit width of the INT8 activation quantizers in the crossbar path.
_ACTIVATION_BITS = 8


class MagnitudeProtectedLinear(Module):
    """Dense (non-SVD) layer with elementwise magnitude-based SLC protection.

    The Fig. 13 ablation baseline: without SVD there is no rank structure,
    so the top-``k%`` |w| elements are protected in SLC and the rest sit in
    MLC.  Executed with the fast Eq. (5) noise path (element-granular
    SLC/MLC mixing inside one column is not physically realizable on the
    crossbar, which is itself part of the paper's argument for rank-level
    protection).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        protected_mask: np.ndarray,
        noise: NoiseSpec | None = None,
        mlc_cell: CellType = MLC2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=float)
        protected_mask = np.asarray(protected_mask, dtype=bool)
        if protected_mask.shape != weight.shape:
            raise ValueError(
                f"mask shape {protected_mask.shape} != weight shape {weight.shape}"
            )
        self.noise = noise or DEFAULT_NOISE
        self.out_features, self.in_features = weight.shape
        codes, params = quantize(weight, num_bits=8)
        dequant = dequantize(codes, params)
        rng = np.random.default_rng(seed)
        noisy = np.empty_like(dequant)
        noisy[protected_mask] = apply_multiplicative_noise(
            dequant[protected_mask], self.noise.sigma(SLC), rng
        )
        noisy[~protected_mask] = apply_multiplicative_noise(
            dequant[~protected_mask], self.noise.sigma(mlc_cell), rng
        )
        self._noisy_weight = noisy
        self._bias = None if bias is None else np.asarray(bias, dtype=float)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
        out = data @ self._noisy_weight.T
        if self._bias is not None:
            out = out + self._bias
        return Tensor(out)


class HybridLinear(Module):
    """Inference-only linear layer executed on hybrid SLC/MLC analog PIM."""

    def __init__(
        self,
        plan: LayerPlan,
        noise: NoiseSpec | None = None,
        mode: str = "fast",
        mlc_cell: CellType = MLC2,
        config: CrossbarConfig | None = None,
        seed: int = 0,
        policy: KernelPolicy | None = None,
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.plan = plan
        self.noise = noise or DEFAULT_NOISE
        self.mode = mode
        self.mlc_cell = mlc_cell
        self.config = config or CrossbarConfig()
        self.seed = seed
        self.policy = policy
        self.in_features = plan.a_matrix.shape[1]
        self.out_features = plan.b_matrix.shape[0]
        self.rank = plan.rank
        self._arrays_used: int | None = None
        # Calibrated activation quantization (deploy-time serving path): when
        # set, crossbar GEMVs reuse these frozen scales instead of rescaling
        # from each call's min/max — one calibration pass, then stable
        # per-call behaviour (and no data-dependent scale drift) under load.
        self._x_params: QuantParams | None = None
        self._h_params: QuantParams | None = None
        self._calibrating = False
        self._x_absmax = 0.0
        self._h_absmax = 0.0

        # INT8 weight quantization (per-tensor, symmetric) for both factors.
        self._a_codes, self._a_params = quantize(plan.a_matrix, num_bits=8)
        self._b_codes, self._b_params = quantize(plan.b_matrix, num_bits=8)

        rng = np.random.default_rng(seed)
        if mode == "crossbar":
            self._split: HybridSplit | None = split_by_rank(
                self._a_codes,
                self._b_codes,
                plan.protected_ranks,
                noise=self.noise,
                config=self.config,
                mlc_cell=mlc_cell,
                seed=seed,
                policy=policy,
            )
            self._noisy_a = None
            self._noisy_b = None
        else:
            self._split = None
            # Weight-level Eq. (5) noise, applied once (static weights are
            # programmed once); protected ranks get SLC sigma, rest MLC sigma.
            sigma_slc = self.noise.sigma(SLC)
            sigma_mlc = self.noise.sigma(mlc_cell)
            protected = plan.protected_ranks
            a_noisy = np.empty_like(plan.a_matrix)
            b_noisy = np.empty_like(plan.b_matrix)
            a_deq = dequantize(self._a_codes, self._a_params)
            b_deq = dequantize(self._b_codes, self._b_params)
            a_noisy[protected] = apply_multiplicative_noise(a_deq[protected], sigma_slc, rng)
            a_noisy[~protected] = apply_multiplicative_noise(a_deq[~protected], sigma_mlc, rng)
            b_noisy[:, protected] = apply_multiplicative_noise(
                b_deq[:, protected], sigma_slc, rng
            )
            b_noisy[:, ~protected] = apply_multiplicative_noise(
                b_deq[:, ~protected], sigma_mlc, rng
            )
            self._noisy_a = a_noisy
            self._noisy_b = b_noisy

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Inference pass; gradients do not flow through PIM hardware."""
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=get_default_dtype())
        original_shape = data.shape
        flat = data.reshape(-1, original_shape[-1])
        if self.mode == "fast":
            out = self._forward_fast(flat)
        else:
            out = self._forward_crossbar(flat)
        if self.plan.bias is not None:
            out = out + self.plan.bias
        return Tensor(out.reshape(original_shape[:-1] + (self.out_features,)))

    def _forward_fast(self, flat: np.ndarray) -> np.ndarray:
        hidden = flat @ self._noisy_a.T
        return hidden @ self._noisy_b.T

    def _forward_crossbar(self, flat: np.ndarray) -> np.ndarray:
        split = self._split
        # Intermediate buffers follow the process-wide tensor dtype policy
        # (float32 under set_default_dtype("float32")) rather than a
        # hardcoded float64 — forward() wraps the result in a Tensor, which
        # would down-cast anyway, so wider buffers were pure waste.
        dtype = get_default_dtype()
        # Stage 1: x (INT8) @ A^T on SLC/MLC arrays.  Frozen calibration
        # scales (if present) replace the per-call rescaling.
        x_codes, x_params = quantize(
            flat, num_bits=_ACTIVATION_BITS, params=self._active_params("x")
        )
        hidden = np.zeros((flat.shape[0], self.rank), dtype=dtype)
        protected = self.plan.protected_ranks
        scale_in = np.asarray(x_params.scale) * np.asarray(self._a_params.scale)
        if split.slc_a is not None:
            hidden[:, protected] = split.slc_a.gemv(x_codes) * scale_in
        if split.mlc_a is not None:
            hidden[:, ~protected] = split.mlc_a.gemv(x_codes) * scale_in

        # Stage 2: h (requantized INT8) @ B^T.
        h_codes, h_params = quantize(
            hidden, num_bits=_ACTIVATION_BITS, params=self._active_params("h")
        )
        scale_out = np.asarray(h_params.scale) * np.asarray(self._b_params.scale)
        out = np.zeros((flat.shape[0], self.out_features), dtype=dtype)
        if split.slc_b is not None:
            out += split.slc_b.gemv(h_codes[:, protected]) * scale_out
        if split.mlc_b is not None:
            out += split.mlc_b.gemv(h_codes[:, ~protected]) * scale_out
        if self._calibrating:
            self._x_absmax = max(self._x_absmax, float(np.abs(flat).max(initial=0.0)))
            self._h_absmax = max(self._h_absmax, float(np.abs(hidden).max(initial=0.0)))
        return out

    def _active_params(self, which: str) -> QuantParams | None:
        """Frozen calibrated activation params, unless observing/uncalibrated."""
        if self._calibrating:
            return None
        return self._x_params if which == "x" else self._h_params

    # ------------------------------------------------------------------
    # Activation-scale calibration (serving deployment path)
    # ------------------------------------------------------------------
    def begin_calibration(self) -> None:
        """Start observing activation ranges (crossbar mode).

        While calibrating, forwards fall back to per-call scales and record
        the absolute max of layer inputs and stage-1 hidden activations.
        """
        self._calibrating = True
        self._x_absmax = 0.0
        self._h_absmax = 0.0

    def finish_calibration(self) -> None:
        """Freeze the observed ranges into reusable :class:`QuantParams`."""
        self._calibrating = False
        if self._x_absmax > 0.0:
            self._x_params = self._params_from_absmax(self._x_absmax)
            self._h_params = self._params_from_absmax(self._h_absmax)

    @staticmethod
    def _params_from_absmax(absmax: float) -> QuantParams:
        """Symmetric params covering [-absmax, absmax] at the shared
        ``_ACTIVATION_BITS`` width used by the crossbar quantize calls."""
        qmax = 2 ** (_ACTIVATION_BITS - 1) - 1
        return QuantParams(scale=max(absmax, 1e-12) / qmax, num_bits=_ACTIVATION_BITS)

    def clear_calibration(self) -> None:
        """Drop frozen activation scales (back to per-call rescaling)."""
        self._calibrating = False
        self._x_params = None
        self._h_params = None

    @property
    def is_calibrated(self) -> bool:
        return self._x_params is not None

    # ------------------------------------------------------------------
    def arrays_used(self) -> int:
        """Physical array footprint of the SLC/MLC placement.

        The footprint is a pure function of the layer geometry and the
        protection mask, so it is computed once and cached.  Fast mode used
        to re-run the full :func:`split_by_rank` crossbar programming (noise
        draws included) on *every* call just to read the placement counts;
        now it sums the same :func:`array_footprint` terms analytically.
        """
        if self._arrays_used is None:
            if self._split is not None:
                self._arrays_used = self._split.arrays_used
            else:
                n_protected = int(self.plan.protected_ranks.sum())
                n_mlc = self.rank - n_protected
                total = 0
                if n_protected:
                    total += array_footprint(n_protected, self.in_features, SLC, self.config)
                    total += array_footprint(self.out_features, n_protected, SLC, self.config)
                if n_mlc:
                    total += array_footprint(n_mlc, self.in_features, self.mlc_cell, self.config)
                    total += array_footprint(self.out_features, n_mlc, self.mlc_cell, self.config)
                self._arrays_used = total
        return self._arrays_used

    def merged_stats(self) -> GemvStats:
        if self._split is None:
            return GemvStats()
        return self._split.merged_stats()

    def reset_stats(self) -> None:
        """Zero the accumulated GEMV operation counts (crossbar mode).

        Used after deploy-time calibration so served-traffic accounting does
        not include the calibration forward.
        """
        if self._split is None:
            return
        for mapped in (
            self._split.slc_a,
            self._split.mlc_a,
            self._split.slc_b,
            self._split.mlc_b,
        ):
            if mapped is not None:
                mapped.stats = GemvStats()

    def __repr__(self) -> str:
        return (
            f"HybridLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, protected={self.plan.protected_ranks.sum()}, "
            f"mode={self.mode!r})"
        )


def calibrate_activations(layers, forward_fn) -> int:
    """Calibrate activation quant scales for deployed :class:`HybridLinear`\\ s.

    ``layers`` is any iterable of HybridLinear (or a name->layer mapping, as
    returned by :func:`attach_hybrid_layers`); ``forward_fn`` is a nullary
    callable that pushes representative traffic through the deployed model
    (e.g. a prefill over calibration prompts).  Afterwards every crossbar
    GEMV reuses the frozen scales instead of re-deriving them per call —
    the paper's deploy-time INT8 calibration, and the serving engine's way
    of keeping quantization behaviour independent of batch composition.

    Returns the number of layers that observed traffic and froze scales.
    """
    if isinstance(layers, dict):
        layers = list(layers.values())
    else:
        layers = list(layers)
    for layer in layers:
        layer.begin_calibration()
    try:
        forward_fn()
    finally:
        for layer in layers:
            layer.finish_calibration()
    return sum(1 for layer in layers if layer.is_calibrated)


def attach_hybrid_layers(
    model: Module,
    plans: dict[str, LayerPlan],
    noise: NoiseSpec | None = None,
    mode: str = "fast",
    mlc_cell: CellType = MLC2,
    seed: int = 0,
    policy: KernelPolicy | None = None,
) -> dict[str, HybridLinear]:
    """Swap every planned layer of ``model`` for its PIM deployment form.

    ``model`` must expose ``replace_static_linear`` (all Transformer variants
    do); ``plans`` comes from the gradient-redistribution pipeline.
    """
    attached: dict[str, HybridLinear] = {}
    for name, plan in plans.items():
        layer = HybridLinear(
            plan,
            noise=noise,
            mode=mode,
            mlc_cell=mlc_cell,
            seed=seed + len(attached),
            policy=policy,
        )
        model.replace_static_linear(name, layer)
        attached[name] = layer
    return attached
