"""HyFlexPIM latency/throughput model (Figs. 16-17).

Analog linear layers advance in 100 ns "waves" — one input bit-plane per
wave, every array of a matrix converting in parallel — so one GEMV takes
``input_bits + 1`` waves regardless of matrix size.  Throughput is governed
by *array capacity*: weights are stationary, so the number of concurrent
token pipelines equals the ratio of available arrays to the arrays one model
copy occupies.  2-bit MLC halves a matrix's array footprint, which is
exactly how it doubles throughput at equal energy (Section 3.2).

The digital side (attention + SFU) provides a fixed operation rate per chip
(273 INT8 ops/cycle/module); whichever resource saturates first bounds
steady-state pipelined throughput.  Decode-mode generation is additionally
latency-bound because token ``t+1`` depends on token ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig
from repro.models.configs import ModelSpec
from repro.svd.decompose import hard_threshold_rank

__all__ = ["HyFlexPimLatencyModel", "LatencyReport"]

#: Dependent GEMV stages per token per layer: the QKV projections share
#: waves (their A-factors read the same input), then proj, FFN1, FFN2 —
#: each a factored (A then B) pair.
GEMV_STAGES_PER_LAYER = 4 * 2


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass
class LatencyReport:
    """Per-token timing of one pipeline stage (= one layer)."""

    linear_s: float
    attention_s: float
    sfu_s: float

    @property
    def total_s(self) -> float:
        return self.linear_s + self.attention_s + self.sfu_s


class HyFlexPimLatencyModel:
    """Per-token latency and chip throughput of HyFlexPIM."""

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        attention_time_factor: float = 1.0,
    ) -> None:
        self.hw = hardware or DEFAULT_HARDWARE
        #: >1 models baselines with slower attention (e.g. ASADI's FP32).
        self.attention_time_factor = attention_time_factor

    # ------------------------------------------------------------------
    # Array demand
    # ------------------------------------------------------------------
    def _arrays_for(self, out_f: int, in_f: int, cell_bits: int) -> int:
        slices = _ceil_div(self.hw.weight_bits, cell_bits)
        row_tiles = _ceil_div(in_f, self.hw.array_rows)
        col_tiles = _ceil_div(out_f * slices, self.hw.array_cols)
        return row_tiles * col_tiles

    def layer_array_demand(self, spec: ModelSpec, slc_rate: float) -> int:
        """Analog arrays one hybrid factored layer occupies."""
        d, ff = spec.d_model, spec.d_ff
        arrays = 0
        for out_f, in_f in [(d, d)] * 4 + [(ff, d), (d, ff)]:
            k = hard_threshold_rank(out_f, in_f)
            k_slc = int(round(k * slc_rate))
            k_mlc = k - k_slc
            if k_slc:
                arrays += self._arrays_for(k_slc, in_f, 1)
                arrays += self._arrays_for(out_f, k_slc, 1)
            if k_mlc:
                arrays += self._arrays_for(k_mlc, in_f, 2)
                arrays += self._arrays_for(out_f, k_mlc, 2)
        return arrays

    def dense_layer_array_demand(self, spec: ModelSpec, cell_bits: int = 1) -> int:
        """Arrays for a dense (unfactored) layer — the ASADI mapping."""
        d, ff = spec.d_model, spec.d_ff
        return sum(
            self._arrays_for(out_f, in_f, cell_bits)
            for out_f, in_f in [(d, d)] * 4 + [(ff, d), (d, ff)]
        )

    # ------------------------------------------------------------------
    # Stage latency
    # ------------------------------------------------------------------
    def gemv_wave_s(self) -> float:
        return (self.hw.input_bits + 1) * self.hw.conversion_window_ns * 1e-9

    def per_token_layer_latency(
        self, spec: ModelSpec, seq_len: int, slc_rate: float, pus_per_layer: int = 1
    ) -> LatencyReport:
        """Latency for one token to traverse one layer (weights resident)."""
        hw = self.hw
        linear_s = GEMV_STAGES_PER_LAYER * self.gemv_wave_s()
        attn_macs = 2.0 * seq_len * spec.d_model
        digital_rate = (
            hw.digital_ops_per_cycle_per_module()
            * hw.digital.modules_per_pu
            * hw.clock_hz
            * pus_per_layer
        )
        attention_s = self.attention_time_factor * attn_macs / digital_rate
        sfu_elems = spec.num_heads * seq_len + 2 * spec.d_model * 7
        sfu_rate = 256 * hw.clock_hz * hw.digital.modules_per_pu * pus_per_layer
        sfu_s = sfu_elems / sfu_rate
        return LatencyReport(linear_s=linear_s, attention_s=attention_s, sfu_s=sfu_s)

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def model_array_demand(
        self, spec: ModelSpec, slc_rate: float, dense: bool = False
    ) -> int:
        per_layer = (
            self.dense_layer_array_demand(spec)
            if dense
            else self.layer_array_demand(spec, slc_rate)
        )
        return per_layer * spec.num_layers

    def tokens_per_second(
        self,
        spec: ModelSpec,
        seq_len: int,
        slc_rate: float,
        num_chips: int = 1,
        dense: bool = False,
    ) -> float:
        """Steady-state pipelined throughput (prefill / streamed inputs).

        ``dense=True`` evaluates the unfactored SLC-only mapping (ASADI†'s
        analog path) on the same hardware.
        """
        hw = self.hw
        demand = self.model_array_demand(spec, slc_rate, dense=dense)
        budget = num_chips * hw.num_pus * hw.analog_arrays_per_pu()
        # Concurrent token pipelines the resident weights can sustain; a
        # model bigger than the budget time-multiplexes (< 1).
        concurrency = budget / demand
        # Each pipeline (one resident model copy) emits one token per stage
        # window in steady state; layer depth adds latency, not rate.
        analog_rate = concurrency / (GEMV_STAGES_PER_LAYER * self.gemv_wave_s())

        attn_macs_per_token = 2.0 * seq_len * spec.d_model * spec.num_layers
        digital_rate_ops = (
            hw.digital_ops_per_cycle_per_module()
            * hw.digital.modules_per_pu
            * hw.num_pus
            * num_chips
            * hw.clock_hz
        )
        digital_rate = digital_rate_ops / (self.attention_time_factor * attn_macs_per_token)

        sfu_elems_per_token = (
            spec.num_heads * seq_len + 2 * spec.d_model * 7
        ) * spec.num_layers
        sfu_rate = (
            256 * hw.clock_hz * hw.digital.modules_per_pu * hw.num_pus * num_chips
        ) / sfu_elems_per_token

        return min(analog_rate, digital_rate, sfu_rate)

    def inference_time_s(
        self,
        spec: ModelSpec,
        seq_len: int,
        slc_rate: float,
        num_chips: int = 1,
        dense: bool = False,
        mode: str = "prefill",
    ) -> float:
        """Time to process (prefill) or generate (decode) ``seq_len`` tokens."""
        if mode not in ("prefill", "decode"):
            raise ValueError(f"mode must be 'prefill' or 'decode', got {mode!r}")
        # PIM weights are resident, so prefill and decode share the same
        # pipelined throughput ("the PIM operations remain the same",
        # Section 3.3); concurrent generation streams keep the pipeline full.
        rate = self.tokens_per_second(spec, seq_len, slc_rate, num_chips, dense)
        return seq_len / rate
