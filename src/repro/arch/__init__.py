"""Analytic architecture models: energy, latency, area, scaling, baselines."""

from repro.arch.area import AreaReport, area_report, table2_rows
from repro.arch.baselines import (
    AsadiBaseline,
    AsadiDaggerBaseline,
    BaselineCosts,
    BaselineModel,
    NmpBaseline,
    NonPimBaseline,
    SprintBaseline,
)
from repro.arch.config import (
    ANALOG_MODULE,
    DEFAULT_HARDWARE,
    DIGITAL_MODULE,
    ComponentSpec,
    HardwareConfig,
    ModuleSpec,
)
from repro.arch.energy import AnalogWaveEnergy, EnergyBreakdown, HyFlexPimEnergyModel
from repro.arch.interconnect import (
    Link,
    OCI_LINK,
    PCIE6_LINK,
    hidden_vector_handoff_cycles,
    partial_sum_aggregation_cycles,
    transfer_cycles,
)
from repro.arch.latency import HyFlexPimLatencyModel, LatencyReport
from repro.arch.perf_model import (
    FIG14_SEQ_LENS,
    FIG14_SLC_RATES,
    PerformanceComparison,
)
from repro.arch.scaling import ScalabilityModel, ScalingReport
from repro.arch.workload import (
    ATTENTION_STAGES,
    LINEAR_STAGES,
    STAGES,
    StageOps,
    attention_stage_ops,
    linear_stage_ops,
    memory_footprint_bytes,
    stage_op_counts,
    total_ops,
)

__all__ = [
    "ANALOG_MODULE",
    "ATTENTION_STAGES",
    "AnalogWaveEnergy",
    "AreaReport",
    "AsadiBaseline",
    "AsadiDaggerBaseline",
    "BaselineCosts",
    "BaselineModel",
    "ComponentSpec",
    "DEFAULT_HARDWARE",
    "DIGITAL_MODULE",
    "EnergyBreakdown",
    "FIG14_SEQ_LENS",
    "FIG14_SLC_RATES",
    "HardwareConfig",
    "HyFlexPimEnergyModel",
    "HyFlexPimLatencyModel",
    "LINEAR_STAGES",
    "LatencyReport",
    "Link",
    "ModuleSpec",
    "NmpBaseline",
    "NonPimBaseline",
    "OCI_LINK",
    "PCIE6_LINK",
    "PerformanceComparison",
    "STAGES",
    "ScalabilityModel",
    "ScalingReport",
    "SprintBaseline",
    "StageOps",
    "area_report",
    "attention_stage_ops",
    "hidden_vector_handoff_cycles",
    "linear_stage_ops",
    "memory_footprint_bytes",
    "partial_sum_aggregation_cycles",
    "stage_op_counts",
    "table2_rows",
    "total_ops",
    "transfer_cycles",
]
