"""Fused batched plane-GEMM (ISSUE 7): fast_gemm ≡ fast_gemv, PlaneCache.

The batched-decode contract: dispatching a live batch through
:func:`~repro.rram.kernels.fast_gemm` (one BLAS matmul per activation-plane
× programmed-plane pair) is **bitwise-equal** to looping
:func:`~repro.rram.kernels.fast_gemv` over the rows in noiseless mode —
outputs and every hardware :class:`~repro.rram.crossbar.GemvStats` counter —
and allclose under programming noise (only BLAS summation order differs
inside the fused matmul).  Noiseless fused traces are additionally pinned
by sha256 so the fused data path cannot drift silently.

Also covered: the content-keyed :class:`~repro.rram.kernels.PlaneCache`
(bitwise-transparent reuse, LRU bounds, generation invalidation), the
all-zero bit-plane skip, and the epoch-cached
:meth:`~repro.rram.crossbar.ProgrammedMatrix.stacked_planes`.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np
import pytest

from repro.rram import (
    CrossbarConfig,
    GemvStats,
    KernelPolicy,
    PlaneCache,
    ProgrammedMatrix,
    get_active_plane_cache,
    kernel_policy,
    plane_cache_scope,
)
from repro.rram.cell import CELL_TYPES
from repro.rram.kernels import fast_gemm, fast_gemv, reference_gemv

CELLS = ["SLC", "MLC2", "MLC3", "MLC4"]
#: (batch, in_features, out_features): single tile, tile-spanning, ragged.
SHAPES = [(1, 16, 4), (5, 70, 33), (3, 200, 7)]


def _config_for(cell_name: str) -> CrossbarConfig:
    # >2-bit cells need small tiles to stay inside a 7-bit ADC range, and
    # small tiles also put the noiseless pipeline OUTSIDE the saturation-free
    # shortcut — the fused path is exercised for real.
    if CELL_TYPES[cell_name].bits > 2:
        return CrossbarConfig(rows=16, cols=32)
    return CrossbarConfig()


def _data(cell_name: str, shape, sigma: float, low: int = -128, high: int = 128):
    seed = zlib.crc32(repr((cell_name, shape, sigma, low, high)).encode())
    rng = np.random.default_rng(seed)
    batch, in_f, out_f = shape
    weights = rng.integers(-128, 128, size=(out_f, in_f))
    inputs = rng.integers(low, high, size=(batch, in_f))
    matrix = ProgrammedMatrix(
        weights,
        CELL_TYPES[cell_name],
        noise_sigma=sigma,
        rng=np.random.default_rng(seed + 1),
        config=_config_for(cell_name),
    )
    return matrix, inputs


class TestFusedEquivalence:
    @pytest.mark.parametrize("cell_name", CELLS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("sigma", [0.0, 0.08])
    def test_fused_matches_per_row_loop(self, cell_name, shape, sigma):
        """fast_gemm(batch) vs a per-row fast_gemv loop: bitwise when
        noiseless, allclose under noise."""
        matrix, inputs = _data(cell_name, shape, sigma)
        fused = fast_gemm(matrix, inputs, 8)
        per_row = np.vstack(
            [fast_gemv(matrix, inputs[i : i + 1], 8) for i in range(shape[0])]
        )
        if sigma == 0.0:
            np.testing.assert_array_equal(fused, per_row)
        else:
            np.testing.assert_allclose(fused, per_row)

    @pytest.mark.parametrize("cell_name", CELLS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("sigma", [0.0, 0.08])
    def test_fused_stats_match_batched_fast_gemv(self, cell_name, shape, sigma):
        """Same batched call through both kernels: identical outputs-when-
        noiseless and identical hardware counters (dispatch-shape counters
        are compare=False and legitimately differ)."""
        matrix, inputs = _data(cell_name, shape, sigma)
        fused_stats, loop_stats = GemvStats(), GemvStats()
        fused = fast_gemm(matrix, inputs, 8, stats=fused_stats)
        looped = fast_gemv(matrix, inputs, 8, stats=loop_stats)
        assert fused_stats == loop_stats
        assert fused_stats.fused_rows == shape[0]
        assert loop_stats.fused_rows == 0
        assert fused_stats.zero_planes_skipped == loop_stats.zero_planes_skipped
        if sigma == 0.0:
            np.testing.assert_array_equal(fused, looped)
        else:
            np.testing.assert_allclose(fused, looped)

    @pytest.mark.parametrize("cell_name", CELLS)
    def test_fused_matches_reference_noiseless(self, cell_name):
        matrix, inputs = _data(cell_name, (4, 70, 9), 0.0)
        np.testing.assert_array_equal(
            fast_gemm(matrix, inputs, 8), reference_gemv(matrix, inputs, 8)
        )

    def test_gemm_policy_mode_dispatches(self):
        matrix, inputs = _data("MLC3", (3, 70, 9), 0.05)
        stats = GemvStats()
        via_policy = matrix.gemv(inputs, stats=stats, policy=KernelPolicy(mode="gemm"))
        np.testing.assert_array_equal(via_policy, fast_gemm(matrix, inputs, 8))
        assert stats.fused_rows == 3
        with kernel_policy(KernelPolicy(mode="gemm")):
            np.testing.assert_array_equal(matrix.gemv(inputs), via_policy)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            KernelPolicy(mode="fused")


#: sha256 of the noiseless fused int64 outputs — exact integers, so the
#: hash is platform-stable.  Any drift in the fused data path (packing,
#: stacked planes, fused ADC, shift-and-add) breaks these.
GOLDEN_FUSED_SHA256 = {
    "SLC": "f68e7c76a46b03fd09099ce84e548f80649bf5b9ee32301d603c59f505dc5401",
    "MLC2": "245636c824dc796e1814d4d0736adc755f5c2800c61993d8a424b075d3a2fb93",
    "MLC3": "32c8c1b41675f79740de077cda92e5b6493bc26993455c430163c3a826ece6f2",
    "MLC4": "79de385425c773c53e98d302a1dba5b29db932726ad0727e510150738888dd7a",
}


class TestGoldenTraces:
    @pytest.mark.parametrize("cell_name", CELLS)
    def test_pinned_noiseless_fused_trace(self, cell_name):
        matrix, inputs = _data(cell_name, (5, 70, 33), 0.0)
        fused = fast_gemm(matrix, inputs, 8)
        digest = hashlib.sha256(np.ascontiguousarray(fused).tobytes()).hexdigest()
        assert digest == GOLDEN_FUSED_SHA256[cell_name], (
            f"fused {cell_name} trace drifted: {digest}"
        )


class TestZeroPlaneSkip:
    def test_skips_counted_and_output_unchanged(self):
        matrix, _ = _data("MLC2", (3, 40, 16), 0.05)
        rng = np.random.default_rng(9)
        inputs = rng.integers(0, 4, size=(3, 40))  # bits 2..7 all-zero
        s_fast, s_gemm, s_ref = GemvStats(), GemvStats(), GemvStats()
        out_fast = fast_gemv(matrix, inputs, 8, stats=s_fast)
        out_gemm = fast_gemm(matrix, inputs, 8, stats=s_gemm)
        out_ref = reference_gemv(matrix, inputs, 8, stats=s_ref)
        np.testing.assert_array_equal(out_fast, out_ref)
        np.testing.assert_allclose(out_gemm, out_ref)
        num_tiles = -(-40 // matrix.config.rows)
        assert s_fast.zero_planes_skipped == 6 * num_tiles
        assert s_gemm.zero_planes_skipped == s_fast.zero_planes_skipped
        assert s_ref.zero_planes_skipped == 0  # reference never skips

    def test_all_zero_inputs(self):
        matrix, _ = _data("MLC3", (2, 70, 9), 0.05)
        zeros = np.zeros((2, 70), dtype=np.int64)
        expected = reference_gemv(matrix, zeros, 8)
        np.testing.assert_array_equal(fast_gemv(matrix, zeros, 8), expected)
        np.testing.assert_array_equal(fast_gemm(matrix, zeros, 8), expected)

    def test_hardware_counters_unaffected_by_skip(self):
        """Skipping a zero plane changes no hardware counter: the analytic
        counts and saturations agree with the skip-free reference."""
        matrix, _ = _data("MLC4", (2, 70, 9), 0.06)
        rng = np.random.default_rng(11)
        inputs = rng.integers(0, 8, size=(2, 70))
        s_fast, s_ref = GemvStats(), GemvStats()
        fast_gemv(matrix, inputs, 8, stats=s_fast)
        reference_gemv(matrix, inputs, 8, stats=s_ref)
        assert s_fast == s_ref  # compare=False hides only dispatch counters
        assert s_fast.zero_planes_skipped > 0


class TestPlaneCache:
    def test_content_keyed_reuse_is_bitwise_transparent(self):
        matrix, inputs = _data("MLC3", (4, 70, 9), 0.05)
        bare = fast_gemm(matrix, inputs, 8)
        cache = PlaneCache()
        with plane_cache_scope(cache):
            first = fast_gemm(matrix, inputs, 8)
            # A distinct array with equal content must hit, not re-pack.
            second = fast_gemm(matrix, inputs.copy(), 8)
            from_gemv = fast_gemv(matrix, inputs, 8)
        np.testing.assert_array_equal(first, bare)
        np.testing.assert_array_equal(second, bare)
        np.testing.assert_array_equal(from_gemv, fast_gemv(matrix, inputs, 8))
        assert cache.stats.planes_packed == 8
        assert cache.stats.pack_reuses == 16

    def test_gemv_stats_carry_pack_counters(self):
        matrix, inputs = _data("MLC3", (2, 70, 9), 0.05)
        stats = GemvStats()
        with plane_cache_scope(PlaneCache()):
            fast_gemm(matrix, inputs, 8, stats=stats)
            fast_gemm(matrix, inputs, 8, stats=stats)
        assert stats.planes_packed == 8
        assert stats.pack_reuses == 8
        merged = GemvStats()
        merged.merge(stats)
        assert merged.planes_packed == 8 and merged.pack_reuses == 8
        assert merged.fused_rows == 4

    def test_generation_change_invalidates(self):
        matrix, inputs = _data("MLC2", (2, 40, 16), 0.05)
        cache = PlaneCache()
        with plane_cache_scope(cache):
            cache.set_generation(1)
            fast_gemm(matrix, inputs, 8)
            assert len(cache) == 1
            cache.set_generation(1)  # same generation: entries survive
            assert len(cache) == 1
            cache.set_generation(2)  # composition changed: dropped
            assert len(cache) == 0
            assert cache.stats.invalidations == 1
            fast_gemm(matrix, inputs, 8)  # re-packs fresh
        assert cache.stats.planes_packed == 16

    def test_lru_capacity_bound(self):
        matrix, _ = _data("MLC2", (1, 40, 16), 0.05)
        cache = PlaneCache(capacity=2)
        rng = np.random.default_rng(5)
        with plane_cache_scope(cache):
            for _ in range(5):
                fast_gemm(matrix, rng.integers(-128, 128, size=(1, 40)), 8)
        assert len(cache) == 2

    def test_scope_nesting_and_restoration(self):
        outer, inner = PlaneCache(), PlaneCache()
        assert get_active_plane_cache() is None
        with plane_cache_scope(outer):
            assert get_active_plane_cache() is outer
            with plane_cache_scope(inner):
                assert get_active_plane_cache() is inner
            with plane_cache_scope(None):  # explicit pack-every-call scope
                assert get_active_plane_cache() is None
            assert get_active_plane_cache() is outer
        assert get_active_plane_cache() is None

    def test_fused_lhs_memoized_per_tile_geometry(self):
        cache = PlaneCache()
        rng = np.random.default_rng(6)
        inputs = rng.integers(-128, 128, size=(3, 40))
        lhs_a, kept_a = cache.fused_lhs(inputs, 8, rows=32)
        lhs_b, kept_b = cache.fused_lhs(inputs, 8, rows=32)
        assert lhs_a is lhs_b and kept_a == kept_b  # one materialization
        lhs_c, _ = cache.fused_lhs(inputs, 8, rows=16)
        assert lhs_c is not lhs_a  # different tile geometry, new operand
        assert lhs_a.shape == (2, len(kept_a) * 3, 32)
        assert lhs_c.shape == (3, len(kept_a) * 3, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlaneCache(capacity=0)


class TestStackedPlanes:
    def test_zero_padded_geometry_and_epoch_cache(self):
        matrix, _ = _data("MLC3", (1, 70, 9), 0.05)
        stacked = matrix.stacked_planes()
        num_tiles = -(-70 // matrix.config.rows)
        out_cols = matrix.out_features * matrix.slices.num_slices
        assert stacked.shape == (num_tiles, matrix.config.rows, out_cols)
        assert stacked.dtype == np.float64
        # Padding rows of the trailing partial tile are exactly zero.
        pad = 70 - (num_tiles - 1) * matrix.config.rows
        assert np.all(stacked[-1, pad:] == 0.0)
        assert matrix.stacked_planes() is stacked  # cached per epoch

    def test_reprogram_invalidates_stack(self):
        matrix, inputs = _data("MLC2", (2, 40, 16), 0.08)
        before = matrix.stacked_planes()
        out_before = fast_gemm(matrix, inputs, 8)
        matrix.reprogram()  # fresh noise draw, epoch bump
        after = matrix.stacked_planes()
        assert after is not before
        # The fused kernel tracks the reprogrammed cells exactly as the
        # per-row kernel does.
        np.testing.assert_allclose(
            fast_gemm(matrix, inputs, 8), fast_gemv(matrix, inputs, 8)
        )
        assert not np.array_equal(out_before, fast_gemm(matrix, inputs, 8))
