"""Analytic architecture studies (op counts, energy, speedup, scaling).

JSON-friendly wrappers over :mod:`repro.arch` that regenerate the
performance figures (Figs. 2, 14-17).  They are cheap (no training), so
the value of running them through :class:`repro.exp.Runner` is uniform
caching, export and CLI access rather than parallelism.
"""

from __future__ import annotations

from typing import Any

from repro.arch import (
    STAGES,
    HyFlexPimEnergyModel,
    PerformanceComparison,
    ScalabilityModel,
    stage_op_counts,
)
from repro.exp.registry import experiment
from repro.models import paper_model

__all__ = [
    "fig02_op_counts",
    "fig14_linear_energy",
    "fig15_end_to_end_energy",
    "fig16_speedup",
    "fig17_scalability",
]


@experiment(
    "fig02",
    smoke={"seq_lens": (128, 512)},
)
def fig02_op_counts(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 2: operation counts per Transformer stage vs sequence length."""
    spec = paper_model(params.get("model", "bert-base"))
    seq_lens = [int(n) for n in params.get("seq_lens", (128, 512, 1024, 2048, 3072))]
    table = {n: stage_op_counts(spec, n) for n in seq_lens}
    return {
        "model": spec.name,
        "seq_lens": seq_lens,
        "stages": {
            stage: [table[n].counts[stage] for n in seq_lens] for stage in STAGES
        },
        "linear_share": [
            table[n].linear_total() / table[n].total() for n in seq_lens
        ],
    }


@experiment(
    "fig14",
    smoke={"seq_lens": (128,), "slc_rates": (0.05,)},
)
def fig14_linear_energy(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 14: normalized linear-layer energy vs the baseline accelerators."""
    from repro.arch import FIG14_SEQ_LENS, FIG14_SLC_RATES

    comparison = PerformanceComparison()
    spec = paper_model(params.get("model", "bert-large"))
    seq_lens = [int(n) for n in params.get("seq_lens", FIG14_SEQ_LENS)]
    slc_rates = [float(r) for r in params.get("slc_rates", FIG14_SLC_RATES)]
    table = comparison.linear_energy_table(spec, tuple(seq_lens), tuple(slc_rates))
    columns = list(next(iter(table.values())))
    return {
        "model": spec.name,
        "seq_lens": seq_lens,
        "columns": columns,
        "rows": [[float(table[n][c]) for c in columns] for n in seq_lens],
    }


@experiment(
    "fig15",
    smoke={"seq_lens": (128,), "cases": (("bert-large", 0.05),)},
)
def fig15_end_to_end_energy(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 15: end-to-end energy improvement and HyFlexPIM's breakdown."""
    comparison = PerformanceComparison()
    seq_lens = [int(n) for n in params.get("seq_lens", (128, 512, 1024))]
    cases = [
        (str(name), float(rate))
        for name, rate in params.get("cases", (("bert-large", 0.05), ("gpt2", 0.30)))
    ]
    improvements: dict[str, Any] = {}
    breakdowns: dict[str, Any] = {}
    baselines: list[str] = []
    categories: list[str] = []
    for name, rate in cases:
        spec = paper_model(name)
        per_n_improvement = {n: comparison.energy_improvement(spec, n, rate) for n in seq_lens}
        per_n_shares = {
            n: comparison.end_to_end_energy(spec, n, rate).shares() for n in seq_lens
        }
        baselines = list(next(iter(per_n_improvement.values())))
        categories = sorted(next(iter(per_n_shares.values())))
        improvements[spec.name] = {
            "slc_rate": rate,
            "rows": [[float(per_n_improvement[n][b]) for b in baselines] for n in seq_lens],
        }
        breakdowns[spec.name] = {
            "rows": [[float(per_n_shares[n][c]) for c in categories] for n in seq_lens],
        }
    # Analog-vs-digital attention study: what moving the dynamic products
    # onto MLC dynamic operands (deploy(attention="analog")) does to the
    # attention and end-to-end energy, per case and sequence length.
    energy_model = HyFlexPimEnergyModel()
    attention: dict[str, Any] = {}
    for name, rate in cases:
        spec = paper_model(name)
        digital = [
            energy_model.attention_energy(spec, n).total_uj() for n in seq_lens
        ]
        analog = [
            energy_model.attention_energy(spec, n, attention="analog").total_uj()
            for n in seq_lens
        ]
        attention[spec.name] = {
            "digital_uj": digital,
            "analog_uj": analog,
            "analog_over_digital": [a / d for a, d in zip(analog, digital)],
            "end_to_end_analog_uj": [
                energy_model.end_to_end_energy(
                    spec, n, rate, attention="analog"
                ).total_uj()
                for n in seq_lens
            ],
        }
    return {
        "seq_lens": seq_lens,
        "baselines": baselines,
        "categories": categories,
        "improvements": improvements,
        "breakdowns": breakdowns,
        "attention": attention,
    }


@experiment(
    "fig16",
    smoke={"seq_lens": (128,), "rates": (0.05, 0.5)},
)
def fig16_speedup(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 16: throughput speedup vs ASADI-dagger and SPRINT."""
    comparison = PerformanceComparison()
    spec = paper_model(params.get("model", "bert-large"))
    mode = params.get("mode", "prefill")
    seq_lens = [int(n) for n in params.get("seq_lens", (128, 512, 1024, 2048, 4096, 8192))]
    rates = [float(r) for r in params.get("rates", (0.05, 0.1, 0.3, 0.4, 0.5))]
    table = comparison.speedup_table(spec, tuple(seq_lens), tuple(rates), mode=mode)
    return {
        "model": spec.name,
        "mode": mode,
        "seq_lens": seq_lens,
        "rates": rates,
        "tables": {
            baseline: [[float(per_n[n][r]) for r in rates] for n in seq_lens]
            for baseline, per_n in table.items()
        },
    }


@experiment(
    "fig17",
    smoke={"chips": (2, 4)},
)
def fig17_scalability(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 17: memory requirements and multi-PU / multi-chip scalability."""
    model = ScalabilityModel()
    seq_len = int(params.get("seq_len", 8192))
    slc_rate = float(params.get("slc_rate", 0.2))
    chips = [int(c) for c in params.get("chips", (2, 4, 8))]
    gpt2 = paper_model(params.get("tensor_parallel_model", "gpt2"))
    llama = paper_model(params.get("scaling_model", "llama3-1b"))

    one = model.throughput(gpt2, seq_len, slc_rate, 1, pus_per_layer=1)
    two = model.throughput(gpt2, seq_len, slc_rate, 1, pus_per_layer=2)
    curve = model.scaling_curve(llama, seq_len, slc_rate, tuple(chips))
    return {
        "seq_len": seq_len,
        "slc_rate": slc_rate,
        "tensor_parallel_ratio": float(two.tokens_per_second / one.tokens_per_second),
        "min_chips": int(model.min_chips(llama, slc_rate, seq_len)),
        "memory_demand": {
            spec.name: {
                key: float(value)
                for key, value in model.memory_demand(spec, seq_len).items()
            }
            for spec in (gpt2, llama)
        },
        "scaling_curve": [
            {
                "num_chips": int(report.num_chips),
                "pus_per_layer": int(report.pus_per_layer),
                "normalized_throughput": float(report.normalized_throughput),
                "analog_demand_gb": float(report.analog_demand_gb),
                "digital_demand_gb": float(report.digital_demand_gb),
                "fits": bool(report.fits),
            }
            for report in curve
        ],
    }
