"""Fig. 13: gradient-based vs rank-based vs magnitude-based SLC selection.

Compares the three protection policies at matched protection rates on two
GLUE-like tasks (the paper uses MRPC and CoLA).  The magnitude baseline
protects dense weight elements by |w| without SVD; gradient and rank
policies operate on the factored ranks.
"""

from __future__ import annotations

import numpy as np

from conftest import train_mini_encoder
from repro.core import HyFlexPim
from repro.datasets import make_glue_task
from repro.eval import evaluate_classifier
from repro.nn import EncoderClassifier
from repro.pim import MagnitudeProtectedLinear
from repro.svd import select_elements_by_magnitude

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)


def _magnitude_sweep(model: EncoderClassifier, state: dict, data, metric: str):
    """Dense (no-SVD) deployment with elementwise |w| protection."""
    import copy

    results = {}
    for rate in RATES:
        deployed = EncoderClassifier(model.config)
        deployed.load_state_dict(state)
        import zlib

        for name, linear in list(deployed.iter_static_linears()):
            mask = select_elements_by_magnitude(linear.weight.data, rate, norm="l1")
            replacement = MagnitudeProtectedLinear(
                linear.weight.data,
                linear.bias.data if linear.bias is not None else None,
                mask,
                seed=zlib.crc32(name.encode()) % 1000,
            )
            deployed.replace_static_linear(name, replacement)
        results[rate] = evaluate_classifier(deployed, data.test, metric=metric)
    return results


def test_fig13_selection_policies(benchmark, print_header):
    def run():
        results = {}
        for task in ("mrpc", "cola"):
            data = make_glue_task(task, seed=0)
            metric = "matthews" if data.spec.metric == "matthews" else "accuracy"
            model = train_mini_encoder(data, num_layers=3, epochs=6)
            state = model.state_dict()
            magnitude = _magnitude_sweep(model, state, data, metric)

            hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
            compiled = hfp.compile(model, data.train, task_type="classification")
            gradient = hfp.protection_sweep(
                compiled, data.test, rates=RATES, metric=metric, policy="gradient"
            )
            rank = hfp.protection_sweep(
                compiled, data.test, rates=RATES, metric=metric, policy="rank"
            )
            results[task] = {
                "metric": metric,
                "magnitude": magnitude,
                "rank": rank,
                "gradient": gradient,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 13 — SLC selection policies (magnitude vs rank vs gradient)")
    for task, series in results.items():
        print(f"\n[{task}] metric = {series['metric']}")
        print(f"{'policy':>10} " + " ".join(f"{int(r*100):>5}%" for r in RATES))
        for policy in ("magnitude", "rank", "gradient"):
            row = " ".join(f"{series[policy][r]:.3f}" for r in RATES)
            print(f"{policy:>10} {row}")
        grad_mean = np.mean([series["gradient"][r] for r in (0.05, 0.1, 0.3)])
        rank_mean = np.mean([series["rank"][r] for r in (0.05, 0.1, 0.3)])
        mag_mean = np.mean([series["magnitude"][r] for r in (0.05, 0.1, 0.3)])
        print(
            f"{'mean@5-30%':>10} magnitude {mag_mean:.3f} | rank {rank_mean:.3f} "
            f"| gradient {grad_mean:.3f}"
        )
    print("\npaper: gradient-based selection consistently outperforms both")
    print("       ablations because it is tied to the training loss.")
