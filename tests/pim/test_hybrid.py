"""Tests for HybridLinear: the hybrid SLC/MLC deployment layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.pim import HybridLinear, attach_hybrid_layers
from repro.rram import NoiseSpec
from repro.svd.pipeline import LayerPlan


def make_plan(rank: int, in_f: int, out_f: int, protect: int, rng, bias=True) -> LayerPlan:
    mask = np.zeros(rank, dtype=bool)
    mask[:protect] = True
    return LayerPlan(
        name="blocks.0.w_q",
        a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
        b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
        bias=np.zeros(out_f) if bias else None,
        protected_ranks=mask,
        sigma_gradients=rng.random(rank),
    )


def reference_output(plan: LayerPlan, x: np.ndarray) -> np.ndarray:
    out = (x @ plan.a_matrix.T) @ plan.b_matrix.T
    if plan.bias is not None:
        out = out + plan.bias
    return out


class TestConstruction:
    def test_mode_validation(self, rng):
        plan = make_plan(8, 16, 16, 2, rng)
        with pytest.raises(ValueError):
            HybridLinear(plan, mode="analog")

    def test_repr_mentions_protection(self, rng):
        layer = HybridLinear(make_plan(8, 16, 16, 3, rng))
        assert "protected=3" in repr(layer)

    def test_arrays_used_positive_both_modes(self, rng):
        plan = make_plan(8, 64, 64, 2, rng)
        fast = HybridLinear(plan, mode="fast")
        xbar = HybridLinear(plan, mode="crossbar")
        assert fast.arrays_used() == xbar.arrays_used() > 0


class TestNoiselessAgreement:
    @pytest.mark.parametrize("mode", ["fast", "crossbar"])
    def test_matches_float_reference_without_noise(self, mode, rng):
        plan = make_plan(8, 32, 24, 2, rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode=mode)
        x = rng.normal(size=(5, 32))
        out = layer(Tensor(x)).data
        ref = reference_output(plan, x)
        # Only INT8 quantization separates the two paths.
        rel = np.abs(out - ref).mean() / np.abs(ref).mean()
        assert rel < 0.05

    def test_fast_and_crossbar_agree_noiseless(self, rng):
        plan = make_plan(8, 32, 24, 2, rng)
        spec = NoiseSpec.noiseless()
        fast = HybridLinear(plan, noise=spec, mode="fast")
        xbar = HybridLinear(plan, noise=spec, mode="crossbar")
        x = rng.normal(size=(4, 32))
        a, b = fast(Tensor(x)).data, xbar(Tensor(x)).data
        # Crossbar mode adds a second INT8 requantization of the hidden
        # activations; agreement is within quantization tolerance.
        rel = np.abs(a - b).mean() / (np.abs(a).mean() + 1e-12)
        assert rel < 0.05


class TestNoiseBehaviour:
    def test_protection_improves_fidelity(self, rng):
        """More SLC-protected ranks => smaller deviation from the reference.

        This is the layer-level mechanism behind Fig. 12's accuracy-vs-SLC
        trend."""
        x = rng.normal(size=(64, 32))
        errors = []
        for protect in (0, 4, 8):
            gen = np.random.default_rng(0)
            plan = make_plan(8, 32, 24, protect, gen)
            layer = HybridLinear(plan, mode="fast", seed=1)
            out = layer(Tensor(x)).data
            ref = reference_output(plan, x)
            errors.append(np.abs(out - ref).mean())
        assert errors[0] > errors[1] > errors[2]

    def test_full_protection_close_to_reference(self, rng):
        plan = make_plan(8, 32, 24, 8, rng)
        layer = HybridLinear(plan, mode="fast")
        x = rng.normal(size=(16, 32))
        out = layer(Tensor(x)).data
        ref = reference_output(plan, x)
        rel = np.abs(out - ref).mean() / np.abs(ref).mean()
        assert rel < 0.05

    def test_noise_frozen_across_calls(self, rng):
        plan = make_plan(8, 16, 16, 2, rng)
        layer = HybridLinear(plan, mode="fast")
        x = rng.normal(size=(2, 16))
        np.testing.assert_array_equal(layer(Tensor(x)).data, layer(Tensor(x)).data)

    def test_crossbar_mode_noise_frozen(self, rng):
        plan = make_plan(8, 32, 16, 2, rng)
        layer = HybridLinear(plan, mode="crossbar")
        x = rng.normal(size=(2, 32))
        np.testing.assert_array_equal(layer(Tensor(x)).data, layer(Tensor(x)).data)

    def test_seeds_change_noise(self, rng):
        plan = make_plan(8, 16, 16, 2, rng)
        x = rng.normal(size=(2, 16))
        a = HybridLinear(plan, mode="fast", seed=1)(Tensor(x)).data
        b = HybridLinear(plan, mode="fast", seed=2)(Tensor(x)).data
        assert not np.array_equal(a, b)

    def test_fast_and_crossbar_error_comparable(self, rng):
        """The fast weight-noise path must not be wildly optimistic or
        pessimistic versus the full bit-serial simulation."""
        x = rng.normal(size=(64, 32))
        plan = make_plan(8, 32, 24, 2, rng)
        ref = reference_output(plan, x)
        errs = {}
        for mode in ("fast", "crossbar"):
            layer = HybridLinear(plan, mode=mode, seed=3)
            out = layer(Tensor(x)).data
            errs[mode] = np.abs(out - ref).mean() / np.abs(ref).mean()
        ratio = errs["crossbar"] / errs["fast"]
        assert 0.2 < ratio < 5.0, f"mode mismatch: {errs}"


class TestModelAttachment:
    def test_attach_replaces_layers(self, rng):
        from repro.nn import EncoderClassifier, TransformerConfig
        from repro.svd import GradientRedistributionPipeline
        from repro.datasets import make_glue_task

        data = make_glue_task("rte", seed=0)
        config = TransformerConfig(
            vocab_size=data.spec.vocab_size,
            d_model=16,
            num_heads=2,
            num_layers=1,
            d_ff=32,
            max_seq_len=data.spec.seq_len,
            num_classes=2,
        )
        model = EncoderClassifier(config)
        pipeline = GradientRedistributionPipeline(protect_fraction=0.25, epochs=1, batch_size=64)
        plan = pipeline.run(model, data.train, task_type="classification")

        # Deployment replaces the fine-tuned SVD layers in the same model;
        # embeddings/head keep their fine-tuned weights.
        deployed = model
        attached = attach_hybrid_layers(deployed, plan.layers, mode="fast")
        assert len(attached) == 6
        for _, layer in deployed.iter_static_linears():
            assert isinstance(layer, HybridLinear)
        logits = deployed(data.test.inputs[:4])
        assert logits.shape == (4, 2)

    def test_no_bias_plan(self, rng):
        plan = make_plan(4, 8, 8, 1, rng, bias=False)
        layer = HybridLinear(plan, mode="fast")
        out = layer(Tensor(rng.normal(size=(2, 8))))
        assert out.shape == (2, 8)


class TestArraysUsedCaching:
    def test_idempotent_and_mode_consistent(self, rng):
        plan = make_plan(8, 64, 64, 3, rng)
        fast = HybridLinear(plan, mode="fast")
        xbar = HybridLinear(plan, mode="crossbar")
        first = fast.arrays_used()
        assert first == fast.arrays_used() == xbar.arrays_used()

    def test_fast_mode_does_not_reprogram_crossbars(self, rng, monkeypatch):
        """The footprint is analytic: no split_by_rank (and no noise draws)."""
        import repro.pim.hybrid as hybrid_module

        plan = make_plan(8, 64, 64, 2, rng)
        layer = HybridLinear(plan, mode="fast")

        def boom(*args, **kwargs):
            raise AssertionError("arrays_used() must not re-run split_by_rank")

        monkeypatch.setattr(hybrid_module, "split_by_rank", boom)
        assert layer.arrays_used() > 0
        assert layer.arrays_used() == layer.arrays_used()

    def test_all_protection_extremes(self, rng):
        for protect in (0, 8):
            plan = make_plan(8, 64, 64, protect, rng)
            fast = HybridLinear(plan, mode="fast")
            xbar = HybridLinear(plan, mode="crossbar")
            assert fast.arrays_used() == xbar.arrays_used() > 0


class TestCrossbarDtypePolicy:
    def test_buffers_follow_default_dtype(self, rng):
        """_forward_crossbar intermediates obey set_default_dtype (PR 2)."""
        from repro.nn import set_default_dtype

        plan = make_plan(8, 32, 24, 2, rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        x = rng.normal(size=(3, 32))
        out64 = layer(Tensor(x)).data
        assert out64.dtype == np.dtype("float64")
        prev = set_default_dtype("float32")
        try:
            out32 = layer(Tensor(x.astype(np.float32))).data
        finally:
            set_default_dtype(prev)
        assert out32.dtype == np.dtype("float32")
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)


class TestActivationCalibration:
    def test_calibrated_scales_are_frozen_and_reused(self, rng):
        from repro.pim import calibrate_activations

        plan = make_plan(8, 32, 24, 2, rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        calib = rng.normal(size=(16, 32))
        count = calibrate_activations([layer], lambda: layer(Tensor(calib)))
        assert count == 1 and layer.is_calibrated

        # Inputs inside the calibrated range: identical to per-call scaling
        # derived from the same range.
        x = calib[:4]
        calibrated_out = layer(Tensor(x)).data
        layer.clear_calibration()
        assert not layer.is_calibrated
        # After clearing, the per-call path rescales from the (smaller)
        # batch range, so outputs may differ — but both stay close to the
        # float reference.
        percall_out = layer(Tensor(x)).data
        ref = reference_output(plan, x)
        for out in (calibrated_out, percall_out):
            rel = np.abs(out - ref).mean() / np.abs(ref).mean()
            assert rel < 0.05

    def test_calibration_is_deterministic_across_batch_composition(self, rng):
        """Frozen scales make per-call outputs independent of what else is
        in the batch — the serving property per-call rescaling lacks."""
        plan = make_plan(8, 32, 24, 2, rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        calib = rng.normal(size=(16, 32))
        layer.begin_calibration()
        layer(Tensor(calib))
        layer.finish_calibration()

        row = calib[:1]
        alone = layer(Tensor(row)).data
        with_big_neighbour = layer(Tensor(np.vstack([row, 100.0 * calib[1:2]]))).data[:1]
        np.testing.assert_array_equal(alone, with_big_neighbour)

    def test_fast_mode_calibration_is_noop(self, rng):
        from repro.pim import calibrate_activations

        plan = make_plan(8, 32, 24, 2, rng)
        layer = HybridLinear(plan, mode="fast")
        count = calibrate_activations([layer], lambda: layer(Tensor(rng.normal(size=(4, 32)))))
        assert count == 0 and not layer.is_calibrated
