"""Transformer workload model: per-stage operation counts (Fig. 2).

Counts multiply-accumulate *operations* (1 MAC = 2 ops, matching the "number
of computations" convention of accelerator papers) for every computation
stage of a Transformer layer at a given sequence length, for both the
encoder/prefill regime (matrix-matrix) and the decode regime (vector-matrix
with a KV cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.configs import ModelSpec

__all__ = [
    "STAGES",
    "StageOps",
    "stage_op_counts",
    "total_ops",
    "linear_stage_ops",
    "attention_stage_ops",
    "memory_footprint_bytes",
]

#: Stage names in the order Fig. 2 lists them.
STAGES = (
    "qkv_fc",  # "Token Generation (FC)": W_Q/W_K/W_V projections
    "score_qk",  # Q x K^T
    "softmax",  # softmax(S) = P
    "pv",  # P x V
    "proj_fc",  # output projection
    "ffn1",
    "ffn2",
)

LINEAR_STAGES = ("qkv_fc", "proj_fc", "ffn1", "ffn2")
ATTENTION_STAGES = ("score_qk", "pv")


@dataclass(frozen=True)
class StageOps:
    """Operation counts per stage for a whole model at one sequence length."""

    counts: dict[str, float]

    def total(self) -> float:
        return float(sum(self.counts.values()))

    def linear_total(self) -> float:
        return float(sum(self.counts[s] for s in LINEAR_STAGES))

    def attention_total(self) -> float:
        return float(sum(self.counts[s] for s in ATTENTION_STAGES))

    def nonlinear_total(self) -> float:
        return float(self.counts["softmax"])


def stage_op_counts(spec: ModelSpec, seq_len: int, mode: str = "prefill") -> StageOps:
    """Per-stage op counts (2 x MACs) for the full model.

    ``mode="prefill"`` processes ``seq_len`` tokens at once (encoder or the
    decoder's prefill phase); ``mode="decode"`` generates ``seq_len`` tokens
    one at a time against a growing KV cache — the paper notes the PIM
    operations are identical, only the input width differs.
    """
    if seq_len < 1:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    if mode not in ("prefill", "decode"):
        raise ValueError(f"mode must be 'prefill' or 'decode', got {mode!r}")
    d, ff, n_layers = spec.d_model, spec.d_ff, spec.num_layers
    n = seq_len

    if mode == "prefill":
        token_factor = n  # every token hits every weight matrix
        # Attention score/context are N x N x d per layer (all heads jointly).
        attn_macs = n * n * d
        softmax_elems = spec.num_heads * n * n
    else:
        token_factor = n
        # Token t attends to t cached positions: sum_t t ~= n(n+1)/2.
        attn_macs = (n * (n + 1) // 2) * d
        softmax_elems = spec.num_heads * (n * (n + 1) // 2)

    counts = {
        "qkv_fc": 2.0 * 3 * token_factor * d * d * n_layers,
        "score_qk": 2.0 * attn_macs * n_layers,
        "softmax": float(5 * softmax_elems * n_layers),  # exp/sum/div pipeline
        "pv": 2.0 * attn_macs * n_layers,
        "proj_fc": 2.0 * token_factor * d * d * n_layers,
        "ffn1": 2.0 * token_factor * d * ff * n_layers,
        "ffn2": 2.0 * token_factor * ff * d * n_layers,
    }
    return StageOps(counts=counts)


def total_ops(spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
    return stage_op_counts(spec, seq_len, mode).total()


def linear_stage_ops(spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
    return stage_op_counts(spec, seq_len, mode).linear_total()


def attention_stage_ops(spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
    return stage_op_counts(spec, seq_len, mode).attention_total()


def memory_footprint_bytes(
    spec: ModelSpec, seq_len: int, include_kv_cache: bool = True
) -> dict[str, float]:
    """Model memory demand: static weights (INT8) plus dynamic KV/intermediates.

    Used by the Fig. 17 scalability analysis: HyFlexPIM must hold everything
    in RRAM, so capacity requirements grow with sequence length.
    """
    weights = float(spec.static_weight_bytes())
    kv_cache = 0.0
    if include_kv_cache:
        # K and V per layer per token, INT8 elements.
        kv_cache = float(2 * spec.num_layers * seq_len * spec.d_model)
    scores = float(spec.num_layers * spec.num_heads * seq_len * seq_len)
    return {
        "analog_weights": weights,
        "kv_cache": kv_cache,
        "attention_scores": scores,
        "total": weights + kv_cache + scores,
    }
