"""ReplicaPool: shared-memory rings, routers, fault handling, equivalence.

The scale-out contract of replication case 2: a pool of data-parallel
engines behind ``ShmRing`` transports must be *observably identical* to a
single local engine — per-request token streams bitwise-equal regardless
of replica count or router (hypothesis-driven over request mixes in the
inline mode, plus real fork-worker coverage), with dead replicas detected
and their outstanding requests requeued onto survivors without changing
any caller-visible tokens.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import DecoderLM, TransformerConfig
from repro.serve import (
    LeastOutstandingTokensRouter,
    ReplicaPool,
    RoundRobinRouter,
    ServingEngine,
    SessionAffinityRouter,
    ShmRing,
)

VOCAB = 48


def _model(seed: int = 0) -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=32,
            num_heads=4,
            num_layers=2,
            d_ff=64,
            max_seq_len=32,
            seed=seed,
        )
    )


def _factory(index: int) -> ServingEngine:
    return ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)


class TestShmRing:
    def test_push_pop_roundtrip(self):
        ring = ShmRing(capacity_words=64)
        try:
            assert ring.pop() is None
            assert ring.push([1, 2, 3])
            assert ring.push([7])
            assert ring.pop() == [1, 2, 3]
            assert ring.pop() == [7]
            assert ring.pop() is None
        finally:
            ring.close(unlink=True)

    def test_full_ring_rejects_until_drained(self):
        ring = ShmRing(capacity_words=16)
        try:
            payload = [1, 2, 3, 4, 5, 6]  # 7 words per record with prefix
            assert ring.push(payload)
            assert ring.push(payload)
            assert not ring.push(payload)  # 14 words used, no room
            assert ring.pop() == payload
            assert ring.push(payload)
        finally:
            ring.close(unlink=True)

    def test_wraparound_preserves_records(self):
        ring = ShmRing(capacity_words=16)
        try:
            for i in range(50):  # many times around the ring
                assert ring.push([i, i + 1])
                assert ring.pop() == [i, i + 1]
        finally:
            ring.close(unlink=True)

    def test_oversized_record_raises(self):
        ring = ShmRing(capacity_words=16)
        try:
            with pytest.raises(ValueError, match="exceeds ring capacity"):
                ring.push(list(range(16)))
        finally:
            ring.close(unlink=True)

    def test_attach_by_name_shares_segment(self):
        owner = ShmRing(capacity_words=32)
        try:
            attached = ShmRing(capacity_words=32, name=owner.name)
            assert attached.push([11, 22])
            assert owner.pop() == [11, 22]
            attached.close()
        finally:
            owner.close(unlink=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShmRing(capacity_words=8)


class TestRouters:
    def test_round_robin_cycles_live_replicas(self):
        router = RoundRobinRouter()
        loads = [0, 0, 0]
        assert [router.pick(loads) for _ in range(4)] == [0, 1, 2, 0]

    def test_round_robin_skips_dead(self):
        router = RoundRobinRouter()
        assert router.pick([None, 0, 0]) == 1
        assert router.pick([None, 0, 0]) == 2

    def test_round_robin_all_dead_raises(self):
        with pytest.raises(RuntimeError, match="no live replicas"):
            RoundRobinRouter().pick([None, None])

    def test_least_outstanding_picks_min_load(self):
        router = LeastOutstandingTokensRouter()
        assert router.pick([30, 10, 20]) == 1
        assert router.pick([30, None, 20]) == 2

    def test_session_affinity_pins_and_repins(self):
        router = SessionAffinityRouter()
        first = router.pick([0, 0], session="a")
        assert router.pick([99, 99], session="a") == first  # pinned, load ignored
        # Pinned replica dies: the session re-pins via the fallback.
        loads = [None, None]
        loads[1 - first] = 0
        repinned = router.pick(loads, session="a")
        assert repinned == 1 - first
        assert router.pick([0, 0], session="a") == repinned

    def test_session_affinity_without_session_falls_back(self):
        router = SessionAffinityRouter(fallback=LeastOutstandingTokensRouter())
        assert router.pick([20, 5], session=None) == 1


class TestInlineEquivalence:
    """Pool (any replica count/router) ≡ single local engine, bitwise."""

    @settings(max_examples=15, deadline=None)
    @given(
        data=st.data(),
        replicas=st.integers(min_value=1, max_value=3),
        router=st.sampled_from(["round_robin", "least_outstanding_tokens", "session_affinity"]),
    )
    def test_pool_token_streams_match_single_engine(self, data, replicas, router):
        n = data.draw(st.integers(min_value=1, max_value=6), label="requests")
        prompts = [
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=VOCAB - 1),
                    min_size=1,
                    max_size=8,
                ),
                label=f"prompt{i}",
            )
            for i in range(n)
        ]
        budgets = [
            data.draw(st.integers(min_value=1, max_value=8), label=f"budget{i}")
            for i in range(n)
        ]
        sessions = [
            data.draw(st.sampled_from([None, "a", "b"]), label=f"session{i}")
            for i in range(n)
        ]

        reference = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ref_ids = [
            reference.submit(np.array(p, dtype=np.int64), b)
            for p, b in zip(prompts, budgets)
        ]
        ref_results = {r.request_id: r for r in reference.run_until_idle()}

        streamed: dict[int, list[int]] = {}

        def on_token(rid: int, token: int) -> None:
            streamed.setdefault(rid, []).append(token)

        with ReplicaPool(_factory, replicas=replicas, router=router, processes=False) as pool:
            ids = [
                pool.submit(np.array(p, dtype=np.int64), b, session=s, on_token=on_token)
                for p, b, s in zip(prompts, budgets, sessions)
            ]
            results = {r.request_id: r for r in pool.drain()}

        for ref_id, pool_id in zip(ref_ids, ids):
            expected = ref_results[ref_id].tokens
            got = results[pool_id].tokens
            np.testing.assert_array_equal(got, expected)
            # The streamed prefix is exactly the result tokens, in order.
            assert streamed.get(pool_id, []) == [int(t) for t in expected]


class TestThreadSafety:
    """submit()/poll() from different threads — the ApiServer wiring."""

    def test_concurrent_submit_and_poll(self, rng):
        """A poller thread races 40 submits; no corruption, all bitwise.

        This is exactly how ApiServer drives a pool: the asyncio handler
        thread submits while the driver thread polls.  Unsynchronized,
        outstanding_tokens() iterating _outstanding during a poll()-side
        pop raised 'dictionary changed size during iteration'.
        """
        prompts = [rng.integers(0, VOCAB, size=int(n)) for n in rng.integers(2, 8, size=40)]
        reference = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ref_ids = [reference.submit(p, 4) for p in prompts]
        ref = {r.request_id: r for r in reference.run_until_idle()}
        expected = [ref[rid].tokens for rid in ref_ids]

        pool = ReplicaPool(_factory, replicas=2, processes=False)
        stop = threading.Event()
        errors: list[BaseException] = []

        def poller() -> None:
            try:
                while not stop.is_set():
                    pool.poll()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        thread = threading.Thread(target=poller)
        thread.start()
        try:
            ids = [pool.submit(p, 4) for p in prompts]
            results: dict[int, object] = {}
            start = time.monotonic()
            while len(results) < len(ids) and not errors:
                for rid in ids:
                    got = pool.pop_result(rid)
                    if got is not None:
                        results[rid] = got
                assert time.monotonic() - start < 60.0
                time.sleep(0.0005)
        finally:
            stop.set()
            thread.join(timeout=10.0)
            for ring in pool.inboxes + pool.outboxes:
                ring.close(unlink=True)
        assert not errors, f"poller thread raised: {errors[0]!r}"
        for rid, want in zip(ids, expected):
            np.testing.assert_array_equal(results[rid].tokens, want)


class TestProcessPool:
    def test_fork_workers_match_single_engine(self, rng):
        prompts = [rng.integers(0, VOCAB, size=int(n)) for n in rng.integers(2, 8, size=5)]
        reference = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ref_ids = [reference.submit(p, 6) for p in prompts]
        ref = {r.request_id: r for r in reference.run_until_idle()}
        expected = [ref[rid].tokens for rid in ref_ids]

        with ReplicaPool(_factory, replicas=2, processes=True) as pool:
            ids = [pool.submit(p, 6) for p in prompts]
            results = {r.request_id: r for r in pool.drain(timeout_s=60.0)}
        for i, rid in enumerate(ids):
            np.testing.assert_array_equal(results[rid].tokens, expected[i])
            assert results[rid].latency_s >= 0.0

    def test_kill_replica_requeues_onto_survivor(self, rng):
        prompts = [rng.integers(0, VOCAB, size=4) for _ in range(4)]
        reference = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ref_ids = [reference.submit(p, 5) for p in prompts]
        ref = {r.request_id: r for r in reference.run_until_idle()}

        with ReplicaPool(_factory, replicas=2, router="round_robin", processes=True) as pool:
            ids = [pool.submit(p, 5) for p in prompts]
            pool.kill_replica(0)
            results = {r.request_id: r for r in pool.drain(timeout_s=60.0)}
            assert pool.requeues >= 1
            assert pool.outstanding_tokens()[0] is None  # dead replica reports None
        for ref_id, pool_id in zip(ref_ids, ids):
            np.testing.assert_array_equal(results[pool_id].tokens, ref[ref_id].tokens)

    def test_all_dead_with_outstanding_raises(self, rng):
        pool = ReplicaPool(_factory, replicas=1, processes=False)
        try:
            pool.submit(rng.integers(0, VOCAB, size=4), 64)  # never completes
            with pytest.raises(RuntimeError, match="all replicas dead"):
                pool.kill_replica(0)
        finally:
            for ring in pool.inboxes + pool.outboxes:
                ring.close(unlink=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaPool(_factory, replicas=0, processes=False)

    def test_processes_require_fork_start_method(self, monkeypatch):
        """Fork-less platforms get a clear error, not a pickling crash."""
        import repro.serve.replica as replica_mod

        monkeypatch.setattr(replica_mod, "get_all_start_methods", lambda: ["spawn"])
        with pytest.raises(RuntimeError, match="'fork' start method"):
            ReplicaPool(_factory, replicas=1, processes=True)
