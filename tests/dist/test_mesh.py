"""Tests for the DeviceMesh and its interconnect traffic ledger."""

from __future__ import annotations

import pytest

from repro.arch.interconnect import OCI_LINK, PCIE6_LINK, transfer_cycles
from repro.dist import DeviceMesh


class TestConstruction:
    def test_defaults(self):
        mesh = DeviceMesh()
        assert mesh.num_chips == 1
        assert mesh.pus_per_chip == 24
        assert mesh.total_pus == 24
        assert mesh.arrays_per_pu() == 24 * 512

    def test_rejects_nonpositive_chips(self):
        with pytest.raises(ValueError):
            DeviceMesh(num_chips=0)

    def test_multi_chip_totals(self):
        mesh = DeviceMesh(num_chips=4)
        assert mesh.total_pus == 96


class TestTrafficLedger:
    def test_record_matches_transfer_cycles(self):
        mesh = DeviceMesh()
        cycles = mesh.record("oci", 2048)
        assert cycles == pytest.approx(transfer_cycles(OCI_LINK, 2048, mesh.clock_hz))
        ledger = mesh.traffic["oci"]
        assert ledger.transfers == 1
        assert ledger.num_bytes == 2048
        assert ledger.cycles == pytest.approx(cycles)
        assert ledger.seconds(mesh.clock_hz) == pytest.approx(cycles / mesh.clock_hz)

    def test_launch_overhead_charged_per_transfer(self):
        mesh = DeviceMesh()
        cycles = mesh.record("pcie6", 1024, transfers=3)
        single = transfer_cycles(PCIE6_LINK, 1024, mesh.clock_hz)
        assert cycles == pytest.approx(
            single + 2 * PCIE6_LINK.launch_overhead_cycles
        )

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            DeviceMesh().record("nvlink", 100)

    def test_invalid_transfers_raise(self):
        with pytest.raises(ValueError):
            DeviceMesh().record("oci", 100, transfers=0)

    def test_partial_sum_aggregation(self):
        mesh = DeviceMesh()
        assert mesh.record_partial_sum_aggregation(1, 3072) == 0.0
        cycles = mesh.record_partial_sum_aggregation(4, 3072)
        assert cycles > 0
        assert mesh.traffic["oci"].num_bytes == pytest.approx(3 * 3072)
        assert mesh.traffic["oci"].transfers == 3

    def test_pipeline_handoff_uses_pcie(self):
        mesh = DeviceMesh(num_chips=3)
        mesh.record_pipeline_handoff(768, tokens=2)
        ledger = mesh.traffic["pcie6"]
        assert ledger.num_bytes == pytest.approx(2 * 2 * 768)  # 2 boundaries
        assert ledger.transfers == 4

    def test_pipeline_handoff_single_chip_is_free(self):
        mesh = DeviceMesh(num_chips=1)
        assert mesh.record_pipeline_handoff(768, tokens=5) == 0.0
        assert mesh.traffic["pcie6"].num_bytes == 0.0

    def test_pipeline_handoff_boundaries_override(self):
        mesh = DeviceMesh(num_chips=8)
        mesh.record_pipeline_handoff(64, tokens=1, boundaries=1)
        assert mesh.traffic["pcie6"].num_bytes == pytest.approx(64)

    def test_reset_and_report(self):
        mesh = DeviceMesh()
        mesh.record("oci", 512)
        mesh.record("pcie6", 256)
        report = mesh.traffic_report()
        assert report["oci"]["bytes"] == 512
        assert report["pcie6"]["seconds"] > 0
        assert mesh.transfer_seconds() > 0
        mesh.reset_traffic()
        assert mesh.transfer_seconds() == 0.0
        assert mesh.traffic["oci"].transfers == 0
