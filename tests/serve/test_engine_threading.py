"""Thread-safe ingress: concurrent submit/pop_result against a stepping engine.

PR-10 regression: ``ServingEngine.submit`` and ``pop_result`` are called
from API handler threads while a driver thread runs ``step`` — the
ingress deque, completion buffer and counters must tolerate that without
losing, duplicating or corrupting requests.  The hammer drives many
producer threads against a dedicated stepper and checks every request
completes exactly once with exactly the tokens a serial engine produces.
Also covers the latency split that rode along: ``queued_s`` (admission
wait) vs service time, threaded through ``RequestResult`` and
``ServingStats``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.serve import ServingEngine

VOCAB = 48


def _model(seed: int = 0) -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=32,
            num_heads=4,
            num_layers=2,
            d_ff=64,
            max_seq_len=32,
            seed=seed,
        )
    )


class TestConcurrentSubmit:
    def test_hammer_submit_while_stepping(self, rng):
        """4 producer threads x 8 requests against a free-running stepper."""
        producers, per_producer, budget = 4, 8, 4
        prompts = {
            (p, i): rng.integers(0, VOCAB, size=int(rng.integers(2, 8)))
            for p in range(producers)
            for i in range(per_producer)
        }
        # Serial reference: same prompts, one engine, no threads.
        reference = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ref_ids = {key: reference.submit(prompt, budget) for key, prompt in prompts.items()}
        ref = {r.request_id: r for r in reference.run_until_idle()}
        expected = {key: ref[rid].tokens for key, rid in ref_ids.items()}

        engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        ids: dict[tuple[int, int], int] = {}
        ids_lock = threading.Lock()
        stop = threading.Event()
        errors: list[BaseException] = []

        def stepper() -> None:
            try:
                while not stop.is_set() or engine.busy:
                    if engine.busy:
                        engine.step(force=True)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        def producer(p: int) -> None:
            try:
                for i in range(per_producer):
                    rid = engine.submit(prompts[p, i], budget)
                    with ids_lock:
                        ids[p, i] = rid
            except BaseException as exc:
                errors.append(exc)

        step_thread = threading.Thread(target=stepper)
        step_thread.start()
        threads = [threading.Thread(target=producer, args=(p,)) for p in range(producers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        stop.set()
        step_thread.join(timeout=60.0)
        assert not errors, errors

        assert len(ids) == producers * per_producer
        assert len(set(ids.values())) == len(ids)  # no duplicated request ids
        for key, rid in ids.items():
            result = engine.pop_result(rid)
            assert result is not None, f"request {key} never completed"
            np.testing.assert_array_equal(result.tokens, expected[key])
            assert engine.pop_result(rid) is None  # claimed exactly once
        assert engine.stats.requests_completed >= producers * per_producer
        assert not engine.busy

    def test_pop_result_races_with_stepper(self, rng):
        """Consumers polling pop_result concurrently with the stepper."""
        engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        rids = [engine.submit(rng.integers(0, VOCAB, size=4), 3) for _ in range(8)]
        claimed: dict[int, np.ndarray] = {}
        claimed_lock = threading.Lock()
        done = threading.Event()

        def consumer() -> None:
            while not done.is_set() or any(r not in claimed for r in rids):
                for rid in rids:
                    result = engine.pop_result(rid)
                    if result is not None:
                        with claimed_lock:
                            assert rid not in claimed  # never delivered twice
                            claimed[rid] = result.tokens

        consumers = [threading.Thread(target=consumer) for _ in range(2)]
        for t in consumers:
            t.start()
        while engine.busy:
            engine.step(force=True)
        done.set()
        for t in consumers:
            t.join(timeout=60.0)
        assert sorted(claimed) == sorted(rids)
        for tokens in claimed.values():
            assert tokens.size == 3


class TestLatencySplit:
    def test_queued_vs_service_split(self):
        clock_now = [0.0]
        engine = ServingEngine(
            _model(), max_batch_size=1, max_wait_s=0.0, clock=lambda: clock_now[0]
        )
        first = engine.submit(np.arange(4) % VOCAB, 2)
        second = engine.submit(np.arange(4) % VOCAB, 2)
        # max_batch_size=1: the second request queues behind the first.
        while engine.pop_result(second) is None:
            clock_now[0] += 1.0
            engine.step(force=True)
            engine.pop_result(first)
        stats = engine.stats
        assert stats.mean_queued_s > 0.0
        assert stats.p95_queued_s >= stats.mean_queued_s
        # Service TTFT excludes queueing: strictly below the raw TTFT mean.
        assert stats.mean_service_ttft_s < stats.mean_ttft_s
        payload = stats.as_dict()
        assert {"mean_queued_s", "p95_queued_s", "mean_service_ttft_s", "p95_service_ttft_s"} <= (
            payload.keys()
        )

    def test_result_carries_split_properties(self):
        clock_now = [0.0]
        engine = ServingEngine(
            _model(), max_batch_size=4, max_wait_s=0.0, clock=lambda: clock_now[0]
        )
        rid = engine.submit(np.arange(4) % VOCAB, 3)
        while True:
            clock_now[0] += 0.5
            engine.step(force=True)
            result = engine.pop_result(rid)
            if result is not None:
                break
        assert result.service_s == pytest.approx(result.latency_s - result.queued_s)
        assert result.service_ttft_s == pytest.approx(result.ttft_s - result.queued_s)
        assert result.queued_s >= 0.0

    def test_preempted_counter_in_stats(self):
        clock_now = [0.0]
        engine = ServingEngine(
            _model(), max_batch_size=4, max_wait_s=0.0, clock=lambda: clock_now[0]
        )
        engine.submit(np.arange(4) % VOCAB, 8, deadline_s=1.0)
        clock_now[0] = 10.0  # decode starts after the deadline passed
        while engine.busy:
            engine.step(force=True)
        assert engine.stats.preempted == 1
        assert engine.stats.as_dict()["preempted"] == 1
