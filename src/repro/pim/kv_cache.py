"""Crossbar-resident KV cache: K/V rows written into MLC tiles per token.

:class:`CrossbarKVCache` subclasses :class:`~repro.nn.kv_cache.KVCache`
and mirrors every cached token into analog crossbar arrays: each
``(layer, row, head)`` owns two :class:`~repro.rram.dynamic.DynamicOperand`
tiles — a *bitline-grown* key operand (queries stream over the wordlines,
one appended column per token) and a *wordline-grown* value operand
(attention probabilities stream over the wordlines, one appended row per
token).  Appended tokens are quantized per-token to signed INT8 with the
dequantization scales kept host-side, so the analog attention path
(:class:`~repro.nn.attention.AnalogAttention`) can execute ``Q·Kᵀ`` and
``S·V`` as crossbar GEMVs and rescale exactly.

The host-side buffers of the parent class are kept fully coherent (every
append also lands in them), which preserves the complete row-view /
compaction contract the continuous scheduler depends on:

- :meth:`rows_view` hands out views that share the *operand store* and
  translate local row indices through a ``_row0`` offset;
- :meth:`copy_row` (swap-with-last compaction) *swaps* the src/dst operand
  tiles — a logical row-slot remap, free of write pulses, matching how a
  row-slot indirection table would relocate a stream on hardware.  The
  analog content of ``src`` is undefined until the scheduler's immediately
  following :meth:`clear_row`;
- :meth:`clear_row`, :meth:`set_lengths` and :meth:`reset` truncate the
  affected operands logically (no cell writes); recycled rows are
  overwritten by later appends and accounted as re-programs in
  :class:`~repro.rram.crossbar.GemvStats`.

Every cell write flows through the backend's partial-region primitive and
is therefore recorded in the :class:`~repro.rram.endurance.WearLedger`'s
dynamic channel; KV-write interconnect traffic is reported to the
executor (and from there to the :class:`~repro.dist.DeviceMesh` ledger)
per append.
"""

from __future__ import annotations

import numpy as np

from repro.nn.kv_cache import KVCache, _LayerSlot

__all__ = ["CrossbarKVCache"]


class _OperandStore:
    """Shared analog state behind a :class:`CrossbarKVCache` and its views.

    Holds the per-``(layer, row, head)`` key/value operands, the
    host-side per-token dequantization scales, and the executor that
    quantizes appends and accounts traffic.  Views created by
    :meth:`CrossbarKVCache.rows_view` alias this object and translate
    local rows through their ``_row0`` offset.
    """

    __slots__ = ("executor", "k_ops", "v_ops", "k_scales", "v_scales")

    def __init__(self, executor, num_layers, batch, num_heads, head_dim, capacity):
        self.executor = executor
        self.k_ops = [
            [
                [executor.new_operand(capacity, head_dim, grow="bitlines") for _ in range(num_heads)]
                for _ in range(batch)
            ]
            for _ in range(num_layers)
        ]
        self.v_ops = [
            [
                [executor.new_operand(capacity, head_dim, grow="wordlines") for _ in range(num_heads)]
                for _ in range(batch)
            ]
            for _ in range(num_layers)
        ]
        self.k_scales = [np.zeros((batch, num_heads, capacity)) for _ in range(num_layers)]
        self.v_scales = [np.zeros((batch, num_heads, capacity)) for _ in range(num_layers)]


class _CrossbarLayerSlot(_LayerSlot):
    """Per-layer cache handle that additionally exposes the analog operands.

    The extra surface (``analog``/``executor``/``lengths``/``k_op``...)
    is what :class:`~repro.nn.attention.AnalogAttention` duck-checks to
    select the crossbar execution path; plain hosts see only the
    inherited :class:`~repro.nn.kv_cache._LayerSlot` contract.
    """

    __slots__ = ()

    @property
    def analog(self) -> "_CrossbarLayerSlot":
        """Marker + handle bundle for the analog attention path."""
        return self

    @property
    def executor(self):
        """The deploy-wide crossbar attention executor."""
        return self.cache._store.executor

    @property
    def lengths(self) -> np.ndarray:
        """Committed per-row valid lengths (this view's rows)."""
        return self.cache.lengths

    def k_op(self, row: int, head: int):
        """Key operand (bitline-grown) for a local row/head."""
        return self.cache._store.k_ops[self.index][self.cache._row0 + row][head]

    def v_op(self, row: int, head: int):
        """Value operand (wordline-grown) for a local row/head."""
        return self.cache._store.v_ops[self.index][self.cache._row0 + row][head]

    def k_scales(self, row: int, head: int) -> np.ndarray:
        """Per-token key dequantization scales for a local row/head."""
        return self.cache._store.k_scales[self.index][self.cache._row0 + row, head]

    def v_scales(self, row: int, head: int) -> np.ndarray:
        """Per-token value dequantization scales for a local row/head."""
        return self.cache._store.v_scales[self.index][self.cache._row0 + row, head]


class CrossbarKVCache(KVCache):
    """KV cache whose tokens are mirrored into crossbar dynamic operands.

    Construct through
    :meth:`~repro.pim.attention.CrossbarAttentionExecutor.make_cache` —
    the executor supplies cell type, noise, kernel policy, backend, the
    shared :class:`~repro.rram.crossbar.GemvStats` sink and interconnect
    accounting.  Fully substitutable for a plain ``KVCache``: the host
    mirror buffers stay coherent, so masks, compaction and host-path
    attention all behave identically.
    """

    def __init__(
        self,
        num_layers: int,
        batch: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
        dtype=None,
        executor=None,
    ) -> None:
        if executor is None:
            raise ValueError("CrossbarKVCache requires an executor (see make_cache)")
        super().__init__(num_layers, batch, num_heads, head_dim, capacity, dtype)
        self._store = _OperandStore(executor, num_layers, batch, num_heads, head_dim, capacity)
        self._row0 = 0

    # ------------------------------------------------------------------
    def layer(self, index: int) -> _CrossbarLayerSlot:
        """Per-layer handle carrying both host and analog surfaces."""
        return _CrossbarLayerSlot(self, index)

    def rows_view(self, start: int, stop: int) -> "CrossbarKVCache":
        """Zero-copy row view sharing host buffers *and* the operand store."""
        if not (0 <= start < stop <= self.batch):
            raise ValueError(
                f"rows_view [{start}, {stop}) out of range for batch {self.batch}"
            )
        view = object.__new__(type(self))
        view.num_layers = self.num_layers
        view.batch = stop - start
        view.num_heads = self.num_heads
        view.head_dim = self.head_dim
        view.capacity = self.capacity
        view.keys = [k[start:stop] for k in self.keys]
        view.values = [v[start:stop] for v in self.values]
        view.lengths = self.lengths[start:stop]
        view._store = self._store
        view._row0 = self._row0 + start
        return view

    # ------------------------------------------------------------------
    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray):
        """Append to the host mirror, then write the tokens into the operands.

        Each row/head's ``t`` new tokens are quantized per-token to signed
        INT8, appended as ``t`` columns of the key operand and ``t`` rows
        of the value operand (both at the row's committed length — the
        same positions the host mirror writes), and their dequantization
        scales stored.  Write wear and initial-vs-reprogram cell counts
        accrue to the executor's shared stats; KV-write bytes are reported
        for interconnect accounting.
        """
        start_lengths = self.lengths.copy()
        out = super().append(layer, k_new, v_new)
        store = self._store
        ex = store.executor
        t = k_new.shape[2]
        for r in range(self.batch):
            g = self._row0 + r
            pos = int(start_lengths[r])
            for h in range(self.num_heads):
                k_codes, k_s = ex.quantize_rows(np.asarray(k_new[r, h], dtype=np.float64))
                v_codes, v_s = ex.quantize_rows(np.asarray(v_new[r, h], dtype=np.float64))
                store.k_ops[layer][g][h].append(k_codes)
                store.v_ops[layer][g][h].append(v_codes)
                store.k_scales[layer][g, h, pos : pos + t] = k_s
                store.v_scales[layer][g, h, pos : pos + t] = v_s
        ex.record_kv_write(layer, self.batch, t, self.head_dim, self.num_heads)
        return out

    # ------------------------------------------------------------------
    # Row-level operations (continuous batching)
    # ------------------------------------------------------------------
    def copy_row(self, src: int, dst: int) -> None:
        """Relocate ``src``'s prefix into ``dst``; analog side swaps tiles.

        The operand swap is a logical row-slot remap (no write pulses) —
        after it, ``src``'s analog content is undefined until the
        scheduler's immediately following :meth:`clear_row`.
        """
        if not (0 <= src < self.batch and 0 <= dst < self.batch):
            raise ValueError(f"rows ({src}, {dst}) out of range for batch {self.batch}")
        if src == dst:
            return
        super().copy_row(src, dst)
        store = self._store
        gs, gd = self._row0 + src, self._row0 + dst
        for layer in range(self.num_layers):
            store.k_ops[layer][gs], store.k_ops[layer][gd] = (
                store.k_ops[layer][gd],
                store.k_ops[layer][gs],
            )
            store.v_ops[layer][gs], store.v_ops[layer][gd] = (
                store.v_ops[layer][gd],
                store.v_ops[layer][gs],
            )
            store.k_scales[layer][[gs, gd]] = store.k_scales[layer][[gd, gs]]
            store.v_scales[layer][[gs, gd]] = store.v_scales[layer][[gd, gs]]

    def clear_row(self, row: int) -> None:
        """Retire one row: host prefix invalidated, operands truncated."""
        super().clear_row(row)
        self._truncate_row(row, 0)

    def set_lengths(self, lengths: np.ndarray) -> None:
        """Override per-row lengths and truncate operands to match.

        Shrinking (ragged right-padded prefill) logically drops the pad
        positions' K/V from the operands; later appends overwrite them
        (accounted as re-programs).
        """
        super().set_lengths(lengths)
        for r in range(self.batch):
            self._truncate_row(r, int(self.lengths[r]))

    def reset(self) -> None:
        """Forget all cached tokens of this view's rows, operands included."""
        super().reset()
        for r in range(self.batch):
            self._truncate_row(r, 0)

    def _truncate_row(self, row: int, length: int) -> None:
        g = self._row0 + row
        store = self._store
        for layer in range(self.num_layers):
            for h in range(self.num_heads):
                store.k_ops[layer][g][h].truncate(length)
                store.v_ops[layer][g][h].truncate(length)

    def __repr__(self) -> str:
        return (
            f"CrossbarKVCache(layers={self.num_layers}, batch={self.batch}, "
            f"heads={self.num_heads}, capacity={self.capacity}, "
            f"lengths={self.lengths.tolist()}, row0={self._row0})"
        )
