"""Fig. 12: accuracy/loss versus SLC protection rate across model families.

Sweeps the protection rate on mini encoders (GLUE-like tasks), a decoder LM
(WikiText-2-like) and a ViT (CIFAR-10-like), reporting metric-vs-rate series
against the noise-free INT8 baseline — the full Fig. 12 panel at reduced
scale.  The five workloads run as one ``repro.exp`` sweep: cached points
replay from ``.repro_cache/`` and uncached ones train in parallel workers.
"""

from __future__ import annotations

from repro.exp import ExperimentSpec

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)

# sst2/cola/mrpc are the GLUE stand-ins a 3-layer mini encoder can learn
# well above chance (qnli/stsb need more capacity than the mini
# substitution affords; their generators stay unit-tested).
WORKLOADS = ("sst2", "cola", "mrpc", "lm", "vit")


def test_fig12_accuracy_vs_slc_rate(benchmark, print_header, runner):
    sweep = ExperimentSpec("fig12", params={"rates": RATES}).sweep(workload=WORKLOADS)

    series = benchmark.pedantic(
        lambda: runner.sweep(sweep), rounds=1, iterations=1
    )
    by_workload = series.by_param("workload")

    print_header("Fig. 12 — metric vs SLC protection rate (mini-scale panel)")
    print(f"{'workload':>14} {'metric':>9} {'base':>7} " + " ".join(f"{int(r*100):>3}%" for r in RATES))
    for workload in WORKLOADS:
        value = by_workload[workload].value
        row = " ".join(f"{score:.2f}" for score in value["scores"])
        label = {"lm": "wikitext2-lm", "vit": "cifar10-vit"}.get(workload, workload)
        print(f"{label:>14} {value['metric']:>9} {value['baseline']:>7.3f} {row}")
    print("\npaper: 5-10% (encoders/ViT) and 5-20% (decoders) SLC suffices to stay")
    print("       within 1% accuracy / 10% loss of the baseline; 0% (all-MLC) is worst.")
    print("note: mini models degrade less at 0% than the paper's 12-24 layer models")
    print("      (noise compounds with depth); the ordering is preserved.")

    # Directional assertions: all-MLC never beats the protected settings by
    # more than noise, and moderate protection tracks the baseline.
    for workload in WORKLOADS:
        value = by_workload[workload].value
        score = dict(zip(value["rates"], value["scores"]))
        if value["metric"] == "loss":
            assert score[0.0] >= score[1.0] - 1e-9, workload
            assert score[0.3] <= score[0.0] + 0.05, workload
        else:
            assert score[0.3] >= score[0.0] - 0.05, workload
