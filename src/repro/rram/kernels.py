"""High-throughput kernels for the analog crossbar GEMV hot path.

Every accuracy and energy figure in the paper funnels through the bit-serial
analog GEMV of Figs. 3/6/7, so this module provides two interchangeable
implementations of that pipeline plus the :class:`KernelPolicy` that selects
between them:

``reference``
    The faithful, readable formulation: one float ``einsum`` per row tile
    producing the full ``(batch, input_bits, out, n_slices)`` analog-sum
    intermediate, an allocating ADC conversion, and per-element statistics
    reductions.  This is the semantic ground truth the fast kernel is tested
    against (bitwise, including :class:`~repro.rram.crossbar.GemvStats`).

``fast``
    The optimized formulation:

    * inputs are pre-packed into plane-major uint8 bit planes
      (:func:`repro.quant.quantizer.int_to_bit_planes`) and each bit plane
      hits the programmed cells as a single 2-D BLAS matmul instead of a
      naive 4-axis ``einsum``;
    * the SAR ADC round/clip is fused in place on the matmul output
      (:meth:`~repro.rram.adc.SarAdc.convert_`) — no intermediate
      allocations;
    * :class:`~repro.rram.crossbar.GemvStats` counts are computed in closed
      form (conversion, cycle and tile counts from the shapes, wordline
      activations from input popcounts) instead of per-element reductions
      inside the tile loop;
    * when the matrix is **noiseless** and no bitline can reach the ADC
      full-scale code (checked once per programmed matrix from the cell
      levels), the whole pipeline provably reduces to the exact integer
      GEMV ``x @ W.T`` (see the :mod:`repro.rram.crossbar` docstring) and is
      short-circuited to one dense matmul while still reporting identical
      statistics.

Both kernels read the same stored cell planes and accumulate analog bitline
sums in float64, so their ADC codes — and therefore their integer outputs —
agree bitwise; the equivalence grid in ``tests/rram/test_kernels.py``
enforces this for every cell type, noise level and tile-spanning shape.

The active policy is process-wide by default (:func:`set_default_kernel_policy`
or the :func:`kernel_policy` context manager) and can be overridden per
matrix or per call everywhere the GEMV surfaces (``ProgrammedMatrix``,
``MappedMatrix``, ``AnalogPimModule``, ``HybridLinear``, ``HyFlexPim``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.quant.quantizer import int_to_bit_planes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rram.crossbar import GemvStats, ProgrammedMatrix

__all__ = [
    "KernelPolicy",
    "get_default_kernel_policy",
    "set_default_kernel_policy",
    "kernel_policy",
    "resolve_policy",
    "reference_gemv",
    "fast_gemv",
    "run_gemv",
]

_MODES = ("fast", "reference")
_COMPUTE_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class KernelPolicy:
    """Which GEMV kernel to run and how programmed cell planes are stored.

    ``mode`` selects the implementation (``"fast"`` is the default and is
    bitwise-equal to ``"reference"``); ``compute_dtype`` is the storage dtype
    of the noisy programmed planes (``"float32"`` halves programmed-weight
    memory versus the historical float64 with no observable effect beyond
    freezing the programming noise at float32 precision).  Analog bitline
    sums always accumulate in float64 regardless of ``compute_dtype``, which
    is what keeps the two modes bitwise interchangeable.

    The dtype is kept as a string so policies stay JSON/pickle friendly —
    they ride inside :class:`~repro.core.hyflexpim.HyFlexPim` instances that
    cross process boundaries during parallel sweeps.
    """

    mode: str = "fast"
    compute_dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.compute_dtype not in _COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {_COMPUTE_DTYPES}, got {self.compute_dtype!r}"
            )

    @property
    def storage_dtype(self) -> np.dtype:
        """numpy dtype used to store noisy programmed cell planes."""
        return np.dtype(self.compute_dtype)


_default_policy = KernelPolicy()


def get_default_kernel_policy() -> KernelPolicy:
    """The process-wide policy used when none is passed explicitly."""
    return _default_policy


def set_default_kernel_policy(policy: KernelPolicy) -> KernelPolicy:
    """Install ``policy`` process-wide; returns the previous default."""
    global _default_policy
    if not isinstance(policy, KernelPolicy):
        raise TypeError(f"expected KernelPolicy, got {type(policy).__name__}")
    previous = _default_policy
    _default_policy = policy
    return previous


class kernel_policy:
    """Context manager scoping a default-policy override.

    >>> with kernel_policy(KernelPolicy(mode="reference")):
    ...     matrix.gemv(x)  # runs the reference kernel
    """

    def __init__(self, policy: KernelPolicy) -> None:
        self._policy = policy

    def __enter__(self) -> KernelPolicy:
        self._previous = set_default_kernel_policy(self._policy)
        return self._policy

    def __exit__(self, exc_type, exc, tb) -> None:
        set_default_kernel_policy(self._previous)


def resolve_policy(policy: KernelPolicy | None) -> KernelPolicy:
    """``policy`` if given, else the process-wide default."""
    return policy if policy is not None else _default_policy


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _popcount_total(values: np.ndarray, num_bits: int) -> int:
    """Total number of set bits across ``values`` (masked to ``num_bits``)."""
    masked = np.asarray(values, dtype=np.int64) & ((1 << num_bits) - 1)
    total = 0
    for shift in range(0, num_bits, 8):
        total += int(_POPCOUNT_TABLE[(masked >> shift) & 0xFF].sum(dtype=np.int64))
    return total


def _fill_analytic_stats(
    stats: "GemvStats",
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    num_tiles: int,
) -> None:
    """Closed-form operation counts (everything except ADC saturations)."""
    batch = input_codes.shape[0]
    num_slices = matrix.slices.num_slices
    stats.adc_conversions += num_tiles * batch * input_bits * matrix.out_features * num_slices
    stats.wordline_activations += _popcount_total(input_codes, input_bits) * num_slices
    stats.input_cycles += num_tiles * input_bits
    col_tiles = -(-matrix.out_features * num_slices // matrix.config.cols)
    stats.array_tiles += num_tiles * col_tiles
    stats.cells_programmed += matrix.slices.values.size


# ----------------------------------------------------------------------
# Reference kernel — the faithful einsum pipeline
# ----------------------------------------------------------------------
def reference_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
) -> np.ndarray:
    """Bit-serial GEMV, faithful formulation (Figs. 3/6/7, one einsum per tile).

    ``input_codes`` must already be validated 2-D signed codes; this is the
    semantic ground truth the fast kernel is checked against.
    """
    from repro.rram.crossbar import input_bit_weights
    from repro.quant.quantizer import int_to_bits

    planes = matrix.planes
    raw_bits = int_to_bits(input_codes & (2**input_bits - 1), input_bits)
    bit_w = input_bit_weights(input_bits)
    slice_f = matrix.slices.slice_factors

    batch, in_features = input_codes.shape
    accumulator = np.zeros((batch, matrix.out_features), dtype=np.int64)
    num_tiles = -(-in_features // matrix.config.rows)
    for tile_index in range(num_tiles):
        row_start = tile_index * matrix.config.rows
        row_stop = min(row_start + matrix.config.rows, in_features)
        tile_cells = planes[row_start:row_stop]  # (rows_t, out, n_s)
        tile_bits = raw_bits[:, row_start:row_stop, :]  # (batch, rows_t, in_bits)
        # Analog bitline sums for every input bit-plane at once:
        # (batch, input_bits, out, n_s)
        sums = np.einsum("brk,ros->bkos", tile_bits.astype(np.float64), tile_cells)
        codes = matrix.adc.convert(sums)
        if stats is not None:
            stats.adc_conversions += codes.size
            stats.saturated_conversions += int((codes == matrix.adc.full_scale).sum())
            stats.wordline_activations += int(tile_bits.sum()) * matrix.slices.num_slices
            stats.input_cycles += input_bits
        # Digital shift & add over input-bit planes and weight slices.
        accumulator += np.einsum("bkos,k,s->bo", codes, bit_w, slice_f)

    if stats is not None:
        col_tiles = -(-matrix.out_features * matrix.slices.num_slices // matrix.config.cols)
        stats.array_tiles += num_tiles * col_tiles
        stats.cells_programmed += matrix.slices.values.size

    # Remove the weight offset: x @ (W + 128).T = x @ W.T + 128 * sum(x).
    row_sums = input_codes.sum(axis=1, keepdims=True)
    return accumulator - matrix.slices.offset * row_sums


# ----------------------------------------------------------------------
# Fast kernel — packed bit planes, BLAS matmuls, fused ADC, analytic stats
# ----------------------------------------------------------------------
def fast_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
) -> np.ndarray:
    """Optimized bit-serial GEMV, bitwise-equal to :func:`reference_gemv`."""
    from repro.rram.crossbar import input_bit_weights

    batch, in_features = input_codes.shape
    num_tiles = -(-in_features // matrix.config.rows)

    if stats is not None:
        _fill_analytic_stats(stats, matrix, input_codes, input_bits, num_tiles)

    if matrix.is_noiseless and matrix.saturation_free:
        # Exact short-circuit: with noiseless integer cells and no bitline
        # able to reach the ADC full-scale code, every conversion returns
        # its analog sum unchanged and the shift-and-add telescopes to the
        # plain integer GEMV (the crossbar module docstring's exactness
        # argument).  Saturated-conversion count is provably zero.
        dense = matrix.dense_weights_t  # (in, out) float64, exact integers
        product = input_codes.astype(np.float64) @ dense
        return np.rint(product).astype(np.int64)

    planes = matrix.planes
    num_slices = matrix.slices.num_slices
    out_cols = matrix.out_features * num_slices
    bit_planes = int_to_bit_planes(input_codes & (2**input_bits - 1), input_bits)
    bit_w = input_bit_weights(input_bits).astype(np.float64)
    full_scale = matrix.adc.full_scale

    # Accumulate ADC codes x input-bit weights in float64: every intermediate
    # is an exact integer well inside 2^53, so this is exact integer math on
    # BLAS-friendly operands.
    acc = np.zeros((batch, out_cols), dtype=np.float64)
    saturated = 0
    for tile_index in range(num_tiles):
        row_start = tile_index * matrix.config.rows
        row_stop = min(row_start + matrix.config.rows, in_features)
        cells = planes[row_start:row_stop].reshape(row_stop - row_start, out_cols)
        cells = np.ascontiguousarray(cells, dtype=np.float64)
        tile_bits = bit_planes[:, :, row_start:row_stop].astype(np.float64)
        for k in range(input_bits):
            sums = tile_bits[k] @ cells  # (batch, out*n_s) analog bitline sums
            matrix.adc.convert_(sums)  # fused round/clip, in place
            if stats is not None:
                saturated += int(np.count_nonzero(sums == full_scale))
            # acc += bit_w[k] * sums without a temporary:
            np.multiply(sums, bit_w[k], out=sums)
            np.add(acc, sums, out=acc)
    if stats is not None:
        stats.saturated_conversions += saturated

    # Digital recombination over weight slices, then offset removal.
    slice_f = matrix.slices.slice_factors.astype(np.float64)
    combined = acc.reshape(batch, matrix.out_features, num_slices) @ slice_f
    result = np.rint(combined).astype(np.int64)
    row_sums = input_codes.sum(axis=1, keepdims=True)
    return result - matrix.slices.offset * row_sums


def run_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
    policy: KernelPolicy | None = None,
) -> np.ndarray:
    """Dispatch one validated GEMV according to ``policy`` (or the default)."""
    policy = resolve_policy(policy)
    if policy.mode == "reference":
        return reference_gemv(matrix, input_codes, input_bits, stats)
    return fast_gemv(matrix, input_codes, input_bits, stats)
