"""Integration tests for the top-level compile -> deploy -> evaluate API.

These are the end-to-end checks that the whole reproduction hangs together:
a trained encoder, run through Algorithm 1 and deployed on noisy hybrid
SLC/MLC PIM, must track the paper's qualitative Fig. 12 behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HyFlexPim
from repro.datasets import make_glue_task
from repro.nn import (
    AdamW,
    BatchIterator,
    EncoderClassifier,
    TransformerConfig,
    cross_entropy,
)
from repro.pim import HybridLinear


@pytest.fixture(scope="module")
def compiled_setup():
    """Train a small encoder on sst2-like data, then compile once."""
    data = make_glue_task("sst2", seed=0)
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=2,
        d_ff=64,
        max_seq_len=data.spec.seq_len,
        num_classes=2,
        seed=0,
    )
    model = EncoderClassifier(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    gen = np.random.default_rng(0)
    for _ in range(4):
        for inputs, targets in BatchIterator(data.train, 32, rng=gen):
            loss = cross_entropy(model(inputs), targets.astype(int))
            model.zero_grad()
            loss.backward()
            optimizer.step()

    hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    return hfp, compiled, data


class TestCompile:
    def test_plan_covers_all_static_layers(self, compiled_setup):
        _, compiled, _ = compiled_setup
        assert len(compiled.plan.layers) == 12  # 6 per layer x 2 layers

    def test_finetune_recovered_loss(self, compiled_setup):
        _, compiled, _ = compiled_setup
        losses = compiled.plan.finetune_result.epoch_losses
        assert len(losses) == 2
        # Fine-tuning must leave the truncated model at a low loss (the
        # dense model trained to ~0.1); per-epoch monotonicity is not
        # guaranteed once converged.
        assert losses[-1] < 0.5

    def test_with_protection_changes_masks_only(self, compiled_setup):
        _, compiled, _ = compiled_setup
        low = compiled.with_protection(0.05)
        high = compiled.with_protection(0.5)
        for name in low.plan.layers:
            assert (
                low.plan.layers[name].protected_ranks.sum()
                < high.plan.layers[name].protected_ranks.sum()
            )
            np.testing.assert_array_equal(
                low.plan.layers[name].a_matrix, high.plan.layers[name].a_matrix
            )

    def test_with_protection_rejects_unknown_policy(self, compiled_setup):
        _, compiled, _ = compiled_setup
        with pytest.raises(ValueError):
            compiled.with_protection(0.1, policy="random")


class TestDeploy:
    def test_deploy_is_nondestructive(self, compiled_setup):
        hfp, compiled, data = compiled_setup
        deployed = hfp.deploy(compiled)
        # The compiled model keeps its SVDLinear layers; the deployed copy
        # carries HybridLinear replacements.
        from repro.svd import SVDLinear

        assert any(isinstance(m, SVDLinear) for _, m in compiled.model.iter_static_linears())
        assert all(isinstance(m, HybridLinear) for _, m in deployed.iter_static_linears())

    def test_deployed_model_runs(self, compiled_setup):
        hfp, compiled, data = compiled_setup
        deployed = hfp.deploy(compiled)
        logits = deployed(data.test.inputs[:8])
        assert logits.shape == (8, 2)


class TestEvaluateAndSweep:
    def test_ideal_reference_beats_chance(self, compiled_setup):
        hfp, compiled, data = compiled_setup
        score = hfp.ideal_reference(compiled, data.test)
        assert score > 0.7  # the task is learnable; INT8 keeps it learnable

    def test_protection_recovers_accuracy(self, compiled_setup):
        """Fig. 12's core claim at mini scale: accuracy at a moderate SLC
        rate sits within a small gap of the noise-free baseline, and full
        MLC (0 %) is the worst configuration."""
        hfp, compiled, data = compiled_setup
        sweep = hfp.protection_sweep(compiled, data.test, rates=(0.0, 0.3, 1.0))
        baseline = hfp.ideal_reference(compiled, data.test)
        assert sweep[0.0] <= sweep[1.0] + 0.02
        assert sweep[1.0] >= baseline - 0.05
        # Mini-scale models absorb MLC noise far better than the paper's
        # 12-24-layer models, so we assert the band, not a 40-pt collapse.
        assert all(value >= baseline - 0.15 for value in sweep.values())

    def test_sweep_is_deterministic(self, compiled_setup):
        hfp, compiled, data = compiled_setup
        a = hfp.protection_sweep(compiled, data.test, rates=(0.1,))
        b = hfp.protection_sweep(compiled, data.test, rates=(0.1,))
        assert a == b

    def test_rank_policy_sweep_runs(self, compiled_setup):
        hfp, compiled, data = compiled_setup
        sweep = hfp.protection_sweep(
            compiled, data.test, rates=(0.1,), policy="rank"
        )
        assert 0.0 <= sweep[0.1] <= 1.0
