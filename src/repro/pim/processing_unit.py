"""Processing Unit (Fig. 5(b)): 24 analog + 8 digital PIM modules.

Each PU is dedicated to one Transformer layer (or collaborates with other
PUs under tensor parallelism, Section 3.1).  The PU's job in the functional
simulator is *placement*: distributing a layer's factored weight matrices
across its analog modules (spilling between modules as array budgets fill)
and its dynamic operands across digital modules, with validation against
the hardware's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pim.analog_module import AnalogModuleConfig, AnalogPimModule
from repro.pim.digital_module import DigitalModuleConfig, DigitalPimModule
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import GemvStats
from repro.rram.mapping import array_footprint
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.svd.pipeline import LayerPlan

__all__ = ["ProcessingUnitConfig", "PlacementRecord", "ProcessingUnit"]


@dataclass(frozen=True)
class ProcessingUnitConfig:
    """PU composition per Fig. 5(b) and Table 2."""

    num_analog_modules: int = 24
    num_digital_modules: int = 8
    analog: AnalogModuleConfig = field(default_factory=AnalogModuleConfig)
    digital: DigitalModuleConfig = field(default_factory=DigitalModuleConfig)

    @property
    def total_analog_arrays(self) -> int:
        return self.num_analog_modules * self.analog.num_arrays

    @property
    def digital_capacity_bytes(self) -> int:
        return self.num_digital_modules * self.digital.capacity_bytes


@dataclass
class PlacementRecord:
    """Where one factored matrix fragment landed."""

    layer: str
    fragment: str  # e.g. "A/slc", "B/mlc"
    module_index: int
    arrays: int
    cell: str


class ProcessingUnit:
    """Capacity-checked placement of one layer's weights onto PIM modules."""

    def __init__(
        self,
        config: ProcessingUnitConfig | None = None,
        noise: NoiseSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or ProcessingUnitConfig()
        self.noise = noise or DEFAULT_NOISE
        self.analog_modules = [
            AnalogPimModule(self.config.analog, noise=self.noise, seed=seed + i)
            for i in range(self.config.num_analog_modules)
        ]
        self.digital_modules = [
            DigitalPimModule(self.config.digital)
            for _ in range(self.config.num_digital_modules)
        ]
        self.placements: list[PlacementRecord] = []

    # -- analog placement -----------------------------------------------------
    def _place_fragment(
        self, layer: str, fragment: str, codes: np.ndarray, cell: CellType
    ) -> None:
        if codes.size == 0:
            return
        needed = array_footprint(codes.shape[0], codes.shape[1], cell, self.config.analog.array)
        for index, module in enumerate(self.analog_modules):
            if module.arrays_free >= needed:
                module.deploy(f"{layer}/{fragment}", codes, cell)
                self.placements.append(
                    PlacementRecord(layer, fragment, index, needed, cell.name)
                )
                return
        # No single module can hold the fragment: split it into row-tile
        # chunks (input dim) and, if still too wide, per-array output chunks.
        # Hardware recombines the chunks' partial results over the inner-unit
        # shared bus (Section 3.1).
        rows = self.config.analog.array.rows
        if codes.shape[1] > rows:
            for start in range(0, codes.shape[1], rows):
                self._place_fragment(
                    layer, f"{fragment}/rows{start}", codes[:, start : start + rows], cell
                )
            return
        slices = -(-8 // cell.bits)  # INT8 weights
        outs_per_array = max(1, self.config.analog.array.cols // slices)
        if codes.shape[0] > outs_per_array:
            for start in range(0, codes.shape[0], outs_per_array):
                self._place_fragment(
                    layer, f"{fragment}/outs{start}", codes[start : start + outs_per_array], cell
                )
            return
        raise MemoryError(
            f"PU cannot place {layer}/{fragment}: needs {needed} arrays, "
            f"free per module: {[m.arrays_free for m in self.analog_modules]}"
        )

    def place_layer(
        self, plan: LayerPlan, mlc_cell: CellType = MLC2, weight_bits: int = 8
    ) -> None:
        """Place one factored layer's four fragments on analog modules.

        Uses first-fit over the PU's modules; INT8 codes are derived with
        per-tensor symmetric quantization.
        """
        from repro.quant.quantizer import quantize

        a_codes, _ = quantize(plan.a_matrix, num_bits=weight_bits)
        b_codes, _ = quantize(plan.b_matrix, num_bits=weight_bits)
        protected = plan.protected_ranks
        self._place_fragment(plan.name, "A/slc", a_codes[protected, :], SLC)
        self._place_fragment(plan.name, "A/mlc", a_codes[~protected, :], mlc_cell)
        self._place_fragment(plan.name, "B/slc", b_codes[:, protected], SLC)
        self._place_fragment(plan.name, "B/mlc", b_codes[:, ~protected], mlc_cell)

    # -- capacity queries -----------------------------------------------------
    def arrays_used(self) -> int:
        return sum(m.arrays_used for m in self.analog_modules)

    def arrays_free(self) -> int:
        return sum(m.arrays_free for m in self.analog_modules)

    def analog_utilization(self) -> float:
        return self.arrays_used() / self.config.total_analog_arrays

    def can_fit_layer(
        self, plan: LayerPlan, mlc_cell: CellType = MLC2
    ) -> bool:
        """Whole-PU feasibility check (ignores per-module fragmentation)."""
        protected = plan.protected_ranks
        n_prot = int(protected.sum())
        n_rest = plan.rank - n_prot
        in_f = plan.a_matrix.shape[1]
        out_f = plan.b_matrix.shape[0]
        cfg = self.config.analog.array
        needed = 0
        if n_prot:
            needed += array_footprint(n_prot, in_f, SLC, cfg)
            needed += array_footprint(out_f, n_prot, SLC, cfg)
        if n_rest:
            needed += array_footprint(n_rest, in_f, mlc_cell, cfg)
            needed += array_footprint(out_f, n_rest, mlc_cell, cfg)
        return needed <= self.arrays_free()

    # -- digital side -----------------------------------------------------------
    def digital_capacity_bytes(self) -> int:
        return self.config.digital_capacity_bytes

    def store_dynamic(self, num_bytes: int) -> None:
        """Spread real-time operand storage across digital modules."""
        remaining = num_bytes
        for module in self.digital_modules:
            chunk = min(remaining, module.free_bytes)
            if chunk:
                module.write(chunk)
                remaining -= chunk
            if remaining == 0:
                return
        raise MemoryError(
            f"digital capacity exceeded: {num_bytes} B requested, "
            f"{self.digital_capacity_bytes()} B total"
        )

    def merged_analog_stats(self) -> GemvStats:
        total = GemvStats()
        for module in self.analog_modules:
            total.merge(module.merged_stats())
        return total
