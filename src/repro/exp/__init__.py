"""Declarative experiment runner: specs, caching, parallel sweeps, CLI.

The subsystem behind every figure reproduction and example study:

>>> from repro.exp import ExperimentSpec, Runner
>>> spec = ExperimentSpec(experiment="fig12", params={"workload": "sst2"})
>>> result = Runner().run(spec)              # cached under .repro_cache/
>>> series = Runner(workers=4).sweep(spec.sweep(workload=["sst2", "mrpc"]))

Experiments are plain functions ``fn(params, seed) -> dict`` registered by
name (see :mod:`repro.exp.registry`); the bundled figure studies live in
:mod:`repro.exp.studies_model` and :mod:`repro.exp.studies_arch`, the
kernel/serving perf-trajectory benchmarks in
:mod:`repro.exp.studies_bench`, and the sharding scaling benchmark in
:mod:`repro.exp.studies_dist`.
``python -m repro.exp`` exposes the same engine from the command line
(``run`` / ``sweep`` / ``list`` / ``list-cache``).
"""

from repro.exp.builders import (
    train_decoder_lm,
    train_encoder,
    train_vit,
)
from repro.exp.cache import CacheEntry, ResultCache, default_cache_root
from repro.exp.registry import available_experiments, experiment, get_experiment
from repro.exp.result import Result, Series
from repro.exp.runner import Runner, RunnerStats
from repro.exp.spec import ExperimentSpec, SweepSpec, canonical_json, derive_seed

__all__ = [
    "CacheEntry",
    "ExperimentSpec",
    "Result",
    "ResultCache",
    "Runner",
    "RunnerStats",
    "Series",
    "SweepSpec",
    "available_experiments",
    "canonical_json",
    "default_cache_root",
    "derive_seed",
    "experiment",
    "get_experiment",
    "train_decoder_lm",
    "train_encoder",
    "train_vit",
]
