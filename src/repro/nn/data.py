"""Minimal dataset / dataloader utilities with explicit randomness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "BatchIterator", "train_test_split"]


@dataclass
class ArrayDataset:
    """A dataset of aligned (inputs, targets) numpy arrays."""

    inputs: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.targets):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and targets ({len(self.targets)}) disagree"
            )

    def __len__(self) -> int:
        return len(self.inputs)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.inputs[indices], self.targets[indices])


class BatchIterator:
    """Yield (inputs, targets) minibatches, optionally shuffled per epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield self.dataset.inputs[idx], self.dataset.targets[idx]


def train_test_split(
    dataset: ArrayDataset, test_fraction: float, rng: np.random.Generator
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split preserving alignment between inputs and targets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
