"""Serving-engine integration of the sharded (repro.dist) deployment path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DeviceMesh
from repro.nn import DecoderLM, TransformerConfig
from repro.rram.noise import NoiseSpec
from repro.serve import ServingEngine
from repro.svd.pipeline import LayerPlan


@pytest.fixture
def model():
    return DecoderLM(
        TransformerConfig(
            vocab_size=40,
            d_model=16,
            num_heads=2,
            num_layers=2,
            d_ff=32,
            max_seq_len=32,
            seed=0,
        )
    )


@pytest.fixture
def plans(model, rng):
    plans = {}
    for name, linear in model.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        rank = min(out_f, in_f)
        mask = np.zeros(rank, dtype=bool)
        mask[: max(1, rank // 4)] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(rank),
        )
    return plans


def deploy(model, plans, calib, ways=1, num_chips=1, **kwargs):
    return ServingEngine.deploy(
        model,
        plans,
        calibration_prompts=calib,
        noise=NoiseSpec.noiseless(),
        mode="crossbar",
        mesh=DeviceMesh(num_chips=num_chips),
        tensor_parallel=ways,
        max_batch_size=4,
        **kwargs,
    )


class TestShardedDeployment:
    def test_mesh_deploy_shards_every_layer(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=4)
        assert engine.shard_plan is not None
        assert engine.shard_plan.tensor_parallel == 4
        assert all(layer.is_sharded for layer in engine.hybrid_layers.values())
        assert all(layer.is_calibrated for layer in engine.hybrid_layers.values())

    def test_tokens_bitwise_equal_across_mesh_widths(self, model, plans, rng):
        """The ISSUE-5 acceptance bar, end to end through the engine."""
        calib = rng.integers(0, 40, size=(2, 6))
        prompts = [rng.integers(0, 40, size=5) for _ in range(4)]
        baseline = None
        for ways, chips in [(1, 1), (2, 1), (4, 1), (8, 1), (2, 2)]:
            engine = deploy(model, plans, calib, ways=ways, num_chips=chips)
            tokens = [r.tokens for r in engine.serve(prompts, max_new_tokens=6)]
            if baseline is None:
                baseline = tokens
            else:
                for got, want in zip(tokens, baseline):
                    np.testing.assert_array_equal(got, want)

    def test_unsharded_engine_has_no_projection(self, model, plans, rng):
        engine = ServingEngine.deploy(
            model, plans, noise=NoiseSpec.noiseless(), mode="crossbar"
        )
        assert engine.shard_plan is None
        assert engine.hardware_report() is None
        [result] = engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
        assert result.projected_latency_s is None
        assert engine.stats.projected_tokens_per_s == 0.0


class TestProjectedLatency:
    def test_results_carry_projected_latency(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=2)
        results = engine.serve(
            [rng.integers(0, 40, size=5) for _ in range(3)], max_new_tokens=4
        )
        for result in results:
            assert result.projected_latency_s is not None
            assert result.projected_latency_s > 0
        stats = engine.stats.as_dict()
        assert stats["projected_busy_s"] > 0
        assert stats["projected_tokens_per_s"] > 0

    def test_four_way_projects_speedup_over_one_way(self, model, plans, rng):
        """The BENCH_shard CI gate's invariant, at unit-test scale."""
        calib = rng.integers(0, 40, size=(2, 6))
        prompts = [rng.integers(0, 40, size=5) for _ in range(4)]
        rates = {}
        for ways in (1, 4):
            engine = deploy(model, plans, calib, ways=ways)
            engine.serve(prompts, max_new_tokens=4)
            rates[ways] = engine.stats.projected_tokens_per_s
        assert rates[4] >= 1.5 * rates[1]

    def test_longer_requests_project_longer_latency(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=2)
        short, long = engine.serve(
            [rng.integers(0, 40, size=3), rng.integers(0, 40, size=12)],
            max_new_tokens=3,
        )
        assert short.projected_latency_s < long.projected_latency_s


class TestInterconnectTraffic:
    def test_tensor_parallel_serving_exercises_oci(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=4)
        # Deploy-time calibration forwards must not pre-pollute the ledger:
        # served-traffic accounting starts from zero.
        assert engine.shard_plan.mesh.transfer_seconds() == 0.0
        engine.serve([rng.integers(0, 40, size=5)], max_new_tokens=3)
        report = engine.hardware_report()
        assert report["traffic"]["oci"]["bytes"] > 0
        assert report["traffic"]["pcie6"]["bytes"] == 0
        assert report["transfer_seconds"] > 0

    def test_pipeline_serving_exercises_pcie(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=1, num_chips=2)
        prompt = rng.integers(0, 40, size=5)
        [result] = engine.serve([prompt], max_new_tokens=3)
        pcie = engine.shard_plan.mesh.traffic["pcie6"]
        # One INT8 hidden vector per boundary per position actually
        # forwarded: the prompt's prefill plus one decode per generated
        # token except the last (emitted, never fed back).  The continuous
        # path records this per step, fused across rows — one transfer
        # launch per boundary per step, not per row.
        positions = prompt.size + int(result.tokens.size) - 1
        assert pcie.num_bytes == pytest.approx(positions * model.config.d_model)
        # Fused per-step launches: strictly fewer transfers than the
        # per-position accounting the static path uses.
        assert 0 < pcie.transfers < positions

    def test_static_scheduler_also_projects(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=2, scheduler="static")
        [result] = engine.serve([rng.integers(0, 40, size=5)], max_new_tokens=3)
        assert result.projected_latency_s > 0


class TestPerShardStats:
    def test_shard_gemv_stats_cover_all_shards(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        engine = deploy(model, plans, calib, ways=4)
        engine.serve([rng.integers(0, 40, size=5)], max_new_tokens=3)
        per_shard = engine.shard_gemv_stats()
        assert len(per_shard) == 4
        assert all(s.adc_conversions > 0 for s in per_shard)
        merged = engine.gemv_stats()
        assert merged.adc_conversions == sum(s.adc_conversions for s in per_shard)

    def test_unsharded_engine_reports_single_entry(self, model, plans, rng):
        engine = ServingEngine.deploy(
            model, plans, noise=NoiseSpec.noiseless(), mode="crossbar"
        )
        engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
        per_shard = engine.shard_gemv_stats()
        assert len(per_shard) == 1
        assert per_shard[0].adc_conversions == engine.gemv_stats().adc_conversions

    def test_shard_parallel_serving_matches_serial(self, model, plans, rng):
        calib = rng.integers(0, 40, size=(2, 6))
        prompts = [rng.integers(0, 40, size=5) for _ in range(2)]
        serial = deploy(model, plans, calib, ways=4)
        threaded = deploy(model, plans, calib, ways=4, shard_parallel=True)
        a = serial.serve(prompts, max_new_tokens=4)
        b = threaded.serve(prompts, max_new_tokens=4)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.tokens, y.tokens)
