"""Fig. 11: gradient distribution before SVD, after SVD, after fine-tuning.

Regenerates the three panels on a trained mini encoder: (a) per-element
weight gradients of a dense FC layer, (b) singular-value gradients right
after full-rank SVD, (c) singular-value gradients after hard-threshold
truncation + fine-tuning (gradient redistribution).
"""

from __future__ import annotations

import numpy as np

from conftest import train_mini_encoder
from repro.datasets import make_glue_task
from repro.nn import Tensor, cross_entropy
from repro.svd import apply_svd, finetune, sigma_gradient_snapshot


def _leading_mass(grads: np.ndarray, fraction: float = 0.25) -> float:
    k = max(1, int(round(len(grads) * fraction)))
    total = grads.sum()
    return float(grads[:k].sum() / total) if total > 0 else 0.0


def test_fig11_gradient_redistribution(benchmark, print_header):
    data = make_glue_task("sst2", seed=0)

    def run():
        model = train_mini_encoder(data, num_layers=2, epochs=5)
        state = model.state_dict()

        # (a) dense weight-element gradients of one FC layer.
        inputs, targets = data.train.inputs[:64], data.train.targets[:64].astype(int)
        loss = cross_entropy(model(inputs), targets)
        model.zero_grad()
        loss.backward()
        dense_grads = np.abs(model.blocks[0].attn.w_q.weight.grad[0])

        # (b) full-rank SVD, no fine-tuning.
        from repro.nn import EncoderClassifier

        model_b = EncoderClassifier(model.config)
        model_b.load_state_dict(state)
        apply_svd(model_b, rank=model.config.d_model)
        snap_b = sigma_gradient_snapshot(model_b, data.train, "classification", max_batches=4)

        # (c) hard threshold + fine-tune.
        model_c = EncoderClassifier(model.config)
        model_c.load_state_dict(state)
        layers_c = apply_svd(model_c)
        finetune(model_c, data.train, "classification", epochs=2, batch_size=32,
                 learning_rate=2e-3)
        grads_c = {name: layer.mean_sigma_gradient() for name, layer in layers_c.items()}
        return dense_grads, snap_b.per_layer, grads_c

    dense_grads, grads_b, grads_c = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 11 — gradient distributions across the pipeline stages")
    spread = dense_grads.max() / max(dense_grads.mean(), 1e-12)
    print(f"(a) dense |dL/dW| (first row): max/mean spread {spread:.2f} (near-uniform)")

    mass_b = np.mean([_leading_mass(np.asarray(g)) for g in grads_b.values()])
    mass_c = np.mean([_leading_mass(np.asarray(g)) for g in grads_c.values()])
    print(f"(b) post-SVD |dL/dsigma|: leading-25%-rank mass {mass_b:.3f}")
    print(f"(c) truncated+fine-tuned: leading-25%-rank mass {mass_c:.3f} (uniform = 0.25)")

    example = next(iter(grads_c.values()))
    ranks = " ".join(f"{v:.2e}" for v in example[:8])
    print(f"    first 8 ranks of one layer: {ranks}")
    print("paper: fine-tuning concentrates gradient mass into the initial ranks,")
    print("       demarcating the 5-10% of ranks that need SLC protection.")
    print("note: from-scratch mini models show the bias more weakly than the")
    print("      paper's pretrained 768-dim models (see EXPERIMENTS.md).")
    assert mass_c > 0.25  # leading ranks must carry excess mass
