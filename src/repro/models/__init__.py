"""Model zoo: paper-scale specs (for the perf model) and mini factories."""

from repro.models.configs import (
    FineTuneParams,
    ModelSpec,
    PAPER_MODELS,
    TABLE1_HYPERPARAMS,
    downscaled_config,
    paper_model,
)

__all__ = [
    "FineTuneParams",
    "ModelSpec",
    "PAPER_MODELS",
    "TABLE1_HYPERPARAMS",
    "downscaled_config",
    "paper_model",
]
