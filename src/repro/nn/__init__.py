"""Numpy-based neural-network substrate (autograd, layers, Transformers)."""

from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.nn.kv_cache import KVCache
from repro.nn.data import ArrayDataset, BatchIterator, train_test_split
from repro.nn.losses import cross_entropy, lm_cross_entropy, mse_loss
from repro.nn.modules import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.optim import AdamW, LinearWarmupSchedule, Optimizer, SGD, clip_grad_norm
from repro.nn.tensor import (
    Parameter,
    Tensor,
    as_tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    stack,
    where,
)
from repro.nn.transformer import (
    DecoderLM,
    EncoderClassifier,
    TransformerBlock,
    TransformerConfig,
    VisionTransformer,
)

__all__ = [
    "AdamW",
    "ArrayDataset",
    "BatchIterator",
    "DecoderLM",
    "Dropout",
    "Embedding",
    "EncoderClassifier",
    "GELU",
    "KVCache",
    "LayerNorm",
    "Linear",
    "LinearWarmupSchedule",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "TransformerBlock",
    "TransformerConfig",
    "VisionTransformer",
    "as_tensor",
    "causal_mask",
    "clip_grad_norm",
    "concatenate",
    "cross_entropy",
    "default_dtype",
    "get_default_dtype",
    "is_grad_enabled",
    "lm_cross_entropy",
    "mse_loss",
    "no_grad",
    "set_default_dtype",
    "stack",
    "train_test_split",
    "where",
]
