"""Tests for the bench_kernels/bench_serve/bench_faults trajectory studies."""

from __future__ import annotations

from repro.exp import ExperimentSpec, Runner, available_experiments

TINY = {
    "batches": (1,),
    "out_features": (8,),
    "in_features": 32,
    "cells": ("SLC",),
    "reps": 1,
    "include_fig12": False,
}


class TestBenchKernels:
    def test_registered_with_smoke_config(self):
        defn = available_experiments()["bench_kernels"]
        assert defn.smoke  # CI runs it via --smoke

    def test_tiny_run_payload_shape(self):
        result = Runner(use_cache=False).run(
            ExperimentSpec("bench_kernels", params=TINY)
        )
        value = result.value
        # SLC x {none, calibrated} x 1 batch x 1 out-features = 2 grid rows.
        assert len(value["grid"]) == 2
        for row in value["grid"]:
            assert row["reference_us"] > 0
            assert row["fast_us"] > 0
            assert row["speedup"] > 0
        # The gated large points are always measured, even off-grid.
        for key in ("large_noiseless", "large_noisy"):
            assert value[key]["batch"] == 64
            assert value[key]["out_features"] == 256
        assert "fig12_smoke_wall_s" not in value


SERVE_TINY = {
    "batches": (1,),
    "prompt_len": 4,
    "new_tokens": 6,
    "reps": 1,
    "d_model": 16,
    "num_heads": 2,
    "num_layers": 1,
    "d_ff": 32,
    "max_seq_len": 16,
    "vocab_size": 32,
    "engine_requests": 3,
    "engine_max_batch": 2,
    "engine_new_tokens": 4,
    "trace_requests": 6,
    "trace_max_batch": 2,
    "trace_reps": 1,
}


FAULTS_TINY = {
    "protect_fractions": (0.0, 1.0),
    "rank": 48,
    "in_features": 48,
    "out_features": 48,
    "batch": 4,
}


class TestBenchFaults:
    def test_registered_with_smoke_config(self):
        defn = available_experiments()["bench_faults"]
        assert defn.smoke  # CI runs it via --smoke

    def test_tiny_run_payload_shape_and_gates(self):
        result = Runner(use_cache=False).run(
            ExperimentSpec("bench_faults", params=FAULTS_TINY)
        )
        value = result.value
        # 5 scenarios x 2 protection fractions.
        assert len(value["grid"]) == 10
        for row in value["grid"]:
            assert row["error"] >= 0
        gate = value["gate"]
        # The paper's premise: SLC protection buys accuracy under
        # calibrated programming noise, and every fault mechanism hurts.
        curve = [point["error"] for point in gate["clean_curve"]]
        assert curve == sorted(curve, reverse=True)
        assert gate["protection_gain"] > 0
        assert gate["min_fault_margin"] > 0

    def test_deterministic_across_runs(self):
        runner = Runner(use_cache=False)
        spec = ExperimentSpec("bench_faults", params=FAULTS_TINY)
        first = runner.run(spec).value
        second = runner.run(spec).value
        assert first == second


class TestBenchServe:
    def test_registered_with_smoke_config(self):
        defn = available_experiments()["bench_serve"]
        assert defn.smoke  # CI runs it via --smoke

    def test_tiny_run_payload_shape(self):
        result = Runner(use_cache=False).run(
            ExperimentSpec("bench_serve", params=SERVE_TINY)
        )
        value = result.value
        assert len(value["grid"]) == 1
        row = value["grid"][0]
        assert row["naive_tok_s"] > 0 and row["cached_tok_s"] > 0
        # The gated large point is always measured, even off-grid.
        assert value["large"]["batch"] == 8
        assert value["large"]["prompt_len"] == 16
        engine = value["engine"]
        assert engine["requests_completed"] == 3
        assert engine["tokens_generated"] == 12
        assert engine["tokens_per_s"] > 0
        assert "slot_pool" in engine
        # Static vs continuous replay of the same mixed-length trace, with
        # identical total work (per-request parity is asserted inside).
        trace = value["trace"]
        assert trace["num_requests"] == 6
        assert trace["static"]["tokens"] == trace["continuous"]["tokens"] > 0
        assert trace["speedup"] > 0
        assert trace["continuous"]["mean_ttft_s"] > 0
