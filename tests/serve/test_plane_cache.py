"""PlaneCache serving correctness: no stale packed planes, ever.

The batched-decode fast path packs each step's activation bit-planes once
and reuses them across every crossbar stage (``repro.rram.kernels.
PlaneCache``).  The cache is invalidated through the
:class:`~repro.serve.slots.RowSlotManager` generation counter whenever the
batch composition changes, and keys on activation *content*, so serving
with the cache must be **bitwise-indistinguishable** from packing fresh on
every layer call.  A hypothesis harness interleaves submit / step
operations on two identically-seeded crossbar engines — ``plane_cache=True``
vs the pack-every-step control — and demands identical per-request tokens.

Also covered: the new :class:`~repro.serve.engine.ServingStats` dispatch
counters (``planes_packed`` / ``pack_reuses`` / ``fused_rows``) and the
gemm-policy ≡ fast-policy serving equivalence.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import DecoderLM, TransformerConfig
from repro.rram import KernelPolicy, kernel_policy
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.serve import ServingEngine
from repro.svd.pipeline import LayerPlan

VOCAB = 16
MAX_SEQ = 24


def _lm() -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=8,
            num_heads=2,
            num_layers=1,
            d_ff=16,
            max_seq_len=MAX_SEQ,
            seed=3,
        )
    )


def _plans(lm: DecoderLM) -> dict[str, LayerPlan]:
    rng = np.random.default_rng(3)
    plans = {}
    for name, linear in lm.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        r = min(out_f, in_f)
        mask = np.zeros(r, dtype=bool)
        mask[: r // 2] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(r),
        )
    return plans


def _engine(plane_cache: bool, noisy: bool = True, **kwargs) -> ServingEngine:
    lm = _lm()
    calib = np.random.default_rng(7).integers(0, VOCAB, size=(2, 8))
    return ServingEngine.deploy(
        lm,
        _plans(lm),
        calibration_prompts=calib,
        noise=DEFAULT_NOISE if noisy else NoiseSpec.noiseless(),
        mode="crossbar",
        max_batch_size=3,
        plane_cache=plane_cache,
        **kwargs,
    )


def _prompt(seed: int, length: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, VOCAB, size=length)


# An op is either a submission (prompt length, token budget, prompt seed)
# or one forced engine step; interleavings admit mid-flight, retire at
# ragged lengths and leave rows live between ops — exactly the traffic
# that would surface a stale packed plane.
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=0, max_value=2**16),
        ),
        st.just("step"),
    ),
    min_size=2,
    max_size=10,
)


class TestNoStalePlanes:
    @settings(max_examples=10, deadline=None)
    @given(ops=_OPS)
    def test_cached_serving_matches_pack_every_step(self, ops):
        """Golden equivalence vs the pack-every-step control, under noise
        and the fused gemm dispatch, for arbitrary admit/retire/decode
        interleavings."""
        with kernel_policy(KernelPolicy(mode="gemm")):
            cached = _engine(plane_cache=True)
            control = _engine(plane_cache=False)
            traces = []
            for engine in (cached, control):
                submitted, finished = [], {}
                for op in ops:
                    if op == "step":
                        for result in engine.step(force=True):
                            finished[result.request_id] = result
                    else:
                        length, budget, seed = op
                        submitted.append(
                            engine.submit(_prompt(seed, length), budget)
                        )
                for result in engine.run_until_idle():
                    finished[result.request_id] = result
                traces.append([finished[rid].tokens.tolist() for rid in submitted])
        assert traces[0] == traces[1]

    def test_admissions_and_retirements_invalidate(self):
        """The generation-counter plumbing: batch-composition changes must
        reach the cache as invalidations."""
        engine = _engine(plane_cache=True)
        cache = engine._continuous.plane_cache
        engine.submit(_prompt(0, 4), 4)
        engine.submit(_prompt(1, 2), 2)
        engine.run_until_idle()
        assert cache.stats.invalidations > 0
        assert cache._generation == engine._continuous.slots.generation


class TestServingStatsCounters:
    def test_gemm_policy_reports_dispatch_counters(self):
        engine = _engine(
            plane_cache=True, policy=KernelPolicy(mode="gemm"), max_wait_s=0.0
        )
        for i in range(3):
            engine.submit(_prompt(i, 3 + i), 4)
        engine.run_until_idle()
        stats = engine.stats
        assert stats.planes_packed > 0
        assert stats.fused_rows > 0
        snapshot = stats.as_dict()
        for key in ("planes_packed", "pack_reuses", "fused_rows"):
            assert snapshot[key] == getattr(stats, key)

    def test_sharded_steps_reuse_packed_planes(self):
        """Tensor-parallel stage-1 shards consume identical activation
        codes: the first shard packs, the rest must hit the cache."""
        from repro.dist import DeviceMesh

        engine = _engine(
            plane_cache=True,
            policy=KernelPolicy(mode="gemm"),
            mesh=DeviceMesh(),
            tensor_parallel=2,
        )
        engine.submit(_prompt(5, 4), 4)
        engine.run_until_idle()
        assert engine.stats.planes_packed > 0
        assert engine.stats.pack_reuses > 0

    def test_cache_disabled_packs_fresh_but_still_fuses(self):
        engine = _engine(plane_cache=False, policy=KernelPolicy(mode="gemm"))
        engine.submit(_prompt(2, 4), 4)
        engine.run_until_idle()
        assert engine.stats.planes_packed == 0
        assert engine.stats.pack_reuses == 0
        assert engine.stats.fused_rows > 0  # fused dispatch, fresh packing


class TestGemmPolicyEquivalence:
    def test_gemm_serving_matches_fast_serving(self):
        """Continuous serving under the fused gemm dispatch emits the same
        tokens as the per-row fast kernel (noiseless => bitwise logits)."""
        trace = [(_prompt(i, 2 + i % 4), 3 + i % 3) for i in range(5)]
        outputs = {}
        for mode in ("fast", "gemm"):
            with kernel_policy(KernelPolicy(mode=mode)):
                engine = _engine(plane_cache=True, noisy=False)
                ids = [engine.submit(p, budget) for p, budget in trace]
                results = {r.request_id: r for r in engine.run_until_idle()}
                outputs[mode] = [results[rid].tokens.tolist() for rid in ids]
        assert outputs["gemm"] == outputs["fast"]
