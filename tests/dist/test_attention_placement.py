"""Unit tests for attention-head KV-operand placement on the mesh."""

from __future__ import annotations

import pytest

from repro.dist import DeviceMesh, place_attention_heads


class TestPlacementPolicy:
    def test_single_chip_is_fully_colocated(self):
        placement = place_attention_heads(DeviceMesh(), num_layers=2, num_heads=4)
        assert placement.chips == (0,)
        assert placement.colocated_fraction() == 1.0
        assert all(chip == 0 for chip in placement.head_chips.values())

    def test_two_chip_mesh_anchors_head_zero_and_rotates(self):
        placement = place_attention_heads(
            DeviceMesh(num_chips=2), num_layers=2, num_heads=4
        )
        for layer in range(2):
            anchor = placement.block_chip(layer)
            assert placement.head_chip(layer, 0) == anchor
            assert placement.head_chip(layer, 1) == (anchor + 1) % 2
        # Half the heads rotate away from their block's chip.
        assert placement.colocated_fraction() == 0.5

    def test_describe_is_json_friendly(self):
        placement = place_attention_heads(
            DeviceMesh(num_chips=2), num_layers=1, num_heads=2
        )
        summary = placement.describe()
        assert summary == {
            "heads": 2,
            "chips": [0, 1],
            "colocated_fraction": 0.5,
        }

    def test_rejects_empty_geometry(self):
        with pytest.raises(ValueError, match="positive"):
            place_attention_heads(DeviceMesh(), num_layers=0, num_heads=4)
        with pytest.raises(ValueError, match="positive"):
            place_attention_heads(DeviceMesh(), num_layers=1, num_heads=0)
