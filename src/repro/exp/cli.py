"""``python -m repro.exp`` — run registered experiments from the shell.

Subcommands
-----------
``list``        registered experiments with default grids and smoke configs
``run``         execute one experiment point (``-p key=value`` overrides)
``sweep``       expand a grid (``-g key=v1,v2,...``) and fan it out
``list-cache``  show the on-disk result cache
``clear-cache`` delete cached results (optionally per experiment)

``--smoke`` merges each experiment's registered reduced-size parameter set,
which is what the CI benchmark-smoke job runs: one cheap point per figure.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Sequence

from repro.exp.cache import ResultCache
from repro.exp.registry import available_experiments, get_experiment
from repro.exp.runner import Runner
from repro.exp.spec import ExperimentSpec, SweepSpec, canonical_json

__all__ = ["build_parser", "main"]


def _parse_value(text: str) -> Any:
    """Parse a CLI value: JSON if possible, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_params(pairs: Sequence[str] | None) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"bad -p/--param {pair!r}: expected key=value")
        key, _, raw = pair.partition("=")
        params[key.strip()] = _parse_value(raw)
    return params


def _parse_grid(pairs: Sequence[str] | None) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"bad -g/--grid {pair!r}: expected key=v1,v2,...")
        key, _, raw = pair.partition("=")
        parsed = _parse_value(raw)
        if isinstance(parsed, list):
            grid[key.strip()] = parsed
        else:
            grid[key.strip()] = [_parse_value(item) for item in raw.split(",")]
    return grid


def _runner(args: argparse.Namespace) -> Runner:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    return Runner(
        workers=args.workers,
        cache=cache,
        use_cache=not args.no_cache,
        force=args.force,
    )


def _base_params(args: argparse.Namespace) -> dict[str, Any]:
    """Explicit -p params layered over the registered smoke set if --smoke."""
    defn = get_experiment(args.experiment)
    params: dict[str, Any] = {}
    if args.smoke:
        params.update(defn.smoke)
    params.update(_parse_params(args.param))
    return params


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="registered experiment name")
    parser.add_argument(
        "-p", "--param", action="append", metavar="KEY=VALUE",
        help="parameter override (JSON-parsed; repeatable)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base sweep seed")
    parser.add_argument(
        "--smoke", action="store_true",
        help="merge the experiment's reduced-size smoke parameters",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for sweeps (0/1 = serial)",
    )
    parser.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    parser.add_argument(
        "--force", action="store_true", help="recompute even when cached"
    )
    parser.add_argument("--cache-dir", help="cache directory (default .repro_cache)")
    parser.add_argument("--json", dest="json_path", help="write results JSON here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="HyFlexPIM experiment runner (specs, caching, parallel sweeps)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="execute one experiment point")
    _add_common(run)

    sweep = sub.add_parser("sweep", help="expand a parameter grid and run every point")
    _add_common(sweep)
    sweep.add_argument(
        "-g", "--grid", action="append", metavar="KEY=V1,V2,...",
        help="sweep values for one parameter (repeatable; "
        "defaults to the experiment's registered grid)",
    )
    sweep.add_argument("--csv", dest="csv_path", help="write results CSV here")

    list_cache = sub.add_parser("list-cache", help="show cached results")
    list_cache.add_argument("--cache-dir", help="cache directory (default .repro_cache)")

    clear = sub.add_parser("clear-cache", help="delete cached results")
    clear.add_argument("--cache-dir", help="cache directory (default .repro_cache)")
    clear.add_argument(
        "experiments", nargs="*", help="only clear these experiments (default: all)"
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_list(out) -> int:
    print(f"{'experiment':<12} {'grid':<38} description", file=out)
    for name, defn in available_experiments().items():
        grid = canonical_json(defn.grid) if defn.grid else "-"
        summary = defn.description.splitlines()[0] if defn.description else ""
        print(f"{name:<12} {grid:<38} {summary}", file=out)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    defn = get_experiment(args.experiment)
    spec = ExperimentSpec(
        experiment=args.experiment, params=_base_params(args), seed=args.seed
    )
    runner = _runner(args)
    started = time.perf_counter()
    result = runner.run(spec)
    wall = time.perf_counter() - started
    origin = "cache" if result.cached else "computed"
    print(
        f"[{result.experiment}] {origin} in {wall:.2f}s "
        f"(point seed {spec.point_seed(exclude=defn.eval_params)}, key {result.key[:12]})",
        file=out,
    )
    print(json.dumps(result.value, indent=2, sort_keys=True), file=out)
    if args.json_path:
        from repro.exp.result import Series

        Series([result]).to_json(args.json_path)
        print(f"wrote {args.json_path}", file=out)
    return 0


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    defn = get_experiment(args.experiment)
    grid = _parse_grid(args.grid) or {k: list(v) for k, v in defn.grid.items()}
    if not grid:
        raise SystemExit(
            f"experiment {args.experiment!r} has no default grid; pass -g KEY=V1,V2,..."
        )
    sweep = SweepSpec(
        experiment=args.experiment, grid=grid, base=_base_params(args), seed=args.seed
    )
    runner = _runner(args)
    started = time.perf_counter()
    series = runner.sweep(sweep)
    wall = time.perf_counter() - started
    stats = runner.stats
    print(
        f"[{args.experiment}] {len(series)} points in {wall:.2f}s "
        f"({stats.hits} cached, {stats.computed} computed, workers={args.workers})",
        file=out,
    )
    grid_keys = sorted(grid)
    for result in series:
        coords = ", ".join(f"{k}={result.params.get(k)!r}" for k in grid_keys)
        value = canonical_json(result.value)
        if len(value) > 120:
            value = value[:117] + "..."
        print(f"  {coords}: {value}", file=out)
    if args.json_path:
        series.to_json(args.json_path)
        print(f"wrote {args.json_path}", file=out)
    if args.csv_path:
        series.to_csv(args.csv_path)
        print(f"wrote {args.csv_path}", file=out)
    return 0


def _cmd_list_cache(args: argparse.Namespace, out) -> int:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    entries = cache.entries()
    if not entries:
        print(f"cache empty ({cache.root})", file=out)
        return 0
    print(f"{len(entries)} cached results under {cache.root}", file=out)
    print(f"{'key':<14} {'experiment':<12} {'elapsed':>8}  params", file=out)
    for entry in entries:
        params = canonical_json(entry.params)
        if len(params) > 70:
            params = params[:67] + "..."
        print(
            f"{entry.key[:12]:<14} {entry.experiment:<12} {entry.elapsed_s:>7.2f}s  {params}",
            file=out,
        )
    return 0


def _cmd_clear_cache(args: argparse.Namespace, out) -> int:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    removed = cache.clear(args.experiments or None)
    print(f"removed {removed} cached results from {cache.root}", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "list-cache":
            return _cmd_list_cache(args, out)
        if args.command == "clear-cache":
            return _cmd_clear_cache(args, out)
    except KeyError as error:
        # Unknown experiment names surface as a clean CLI error, not a trace.
        raise SystemExit(f"error: {error.args[0]}") from None
    raise SystemExit(f"unknown command {args.command!r}")
