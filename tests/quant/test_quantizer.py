"""Unit and property tests for the INT8 quantization substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    QuantParams,
    bits_to_int,
    dequantize,
    fake_quantize,
    int_to_bit_planes,
    int_to_bits,
    offset_decode,
    offset_encode,
    quantize,
)


class TestQuantize:
    def test_codes_in_range(self, rng):
        codes, params = quantize(rng.normal(size=(10, 10)))
        assert codes.min() >= params.qmin
        assert codes.max() <= params.qmax

    def test_max_abs_maps_to_qmax(self):
        x = np.array([-2.0, 0.0, 4.0])
        codes, params = quantize(x)
        assert codes[2] == params.qmax

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        x = rng.normal(size=(100,))
        codes, params = quantize(x)
        err = np.abs(dequantize(codes, params) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_per_channel_scales(self, rng):
        x = rng.normal(size=(4, 8))
        x[0] *= 100.0  # one channel with much larger range
        codes, params = quantize(x, per_channel_axis=0)
        assert np.asarray(params.scale).shape == (4, 1)
        err = np.abs(dequantize(codes, params) - x)
        # Per-channel keeps small channels precise despite the large one.
        assert err[1:].max() < np.abs(x[1:]).max() / 100

    def test_reuse_calibrated_params(self, rng):
        x = rng.normal(size=(16,))
        _, params = quantize(x)
        y = rng.normal(size=(16,)) * 0.1
        codes_y, params_y = quantize(y, params=params)
        assert params_y is params
        np.testing.assert_allclose(dequantize(codes_y, params), y, atol=params.scale)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), num_bits=1)
        with pytest.raises(ValueError):
            quantize(np.ones(3), num_bits=32)

    def test_params_conflict_detected(self):
        _, params = quantize(np.ones(3), num_bits=8)
        with pytest.raises(ValueError):
            quantize(np.ones(3), num_bits=4, params=params)

    def test_zero_tensor_does_not_divide_by_zero(self):
        codes, params = quantize(np.zeros(5))
        np.testing.assert_array_equal(codes, np.zeros(5))
        assert np.isfinite(params.scale)

    def test_fake_quantize_is_idempotent(self, rng):
        x = rng.normal(size=(20,))
        once = fake_quantize(x)
        twice = fake_quantize(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestOffsetEncoding:
    def test_roundtrip(self, rng):
        codes, params = quantize(rng.normal(size=(8, 8)))
        encoded = offset_encode(codes, params)
        assert encoded.min() >= 0
        assert encoded.max() <= 255
        np.testing.assert_array_equal(offset_decode(encoded, params), codes)

    def test_rejects_out_of_range(self):
        params = QuantParams(scale=1.0, num_bits=8)
        with pytest.raises(ValueError):
            offset_encode(np.array([200]), params)


class TestBitDecomposition:
    def test_known_value(self):
        bits = int_to_bits(np.array([5]), 4)
        np.testing.assert_array_equal(bits[0], [1, 0, 1, 0])  # LSB first

    def test_roundtrip_matrix(self, rng):
        values = rng.integers(0, 256, size=(6, 7))
        np.testing.assert_array_equal(bits_to_int(int_to_bits(values, 8)), values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(np.array([-1]), 8)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(np.array([256]), 8)

    def test_bit_planes_match_trailing_axis_layout(self, rng):
        """Plane-major uint8 planes are a transposed view of int_to_bits."""
        values = rng.integers(0, 256, size=(6, 7))
        planes = int_to_bit_planes(values, 8)
        assert planes.dtype == np.uint8
        assert planes.shape == (8, 6, 7)
        assert planes[0].flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(
            np.moveaxis(planes, 0, -1), int_to_bits(values, 8)
        )

    def test_bit_planes_validate_range(self):
        with pytest.raises(ValueError):
            int_to_bit_planes(np.array([-1]), 8)
        with pytest.raises(ValueError):
            int_to_bit_planes(np.array([256]), 8)

    def test_weighted_sum_identity(self, rng):
        """Bit-serial dot product == integer dot product (the S&A identity)."""
        a = rng.integers(0, 16, size=5)
        w = rng.integers(0, 16, size=5)
        a_bits = int_to_bits(a, 4)  # (5, 4)
        partials = np.einsum("ib,i->b", a_bits, w)  # per input-bit partial sums
        total = sum(partials[b] << b for b in range(4))
        assert total == int(a @ w)


class TestQuantProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=16),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bound_property(self, x):
        codes, params = quantize(x)
        err = np.abs(dequantize(codes, params) - x)
        assert err.max(initial=0.0) <= float(np.max(params.scale)) / 2 + 1e-9

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_bit_roundtrip_property(self, bits):
        values = np.arange(2**bits)
        np.testing.assert_array_equal(bits_to_int(int_to_bits(values, bits)), values)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 8)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_quantization_monotone_property(self, x):
        """Quantization preserves (non-strict) ordering."""
        codes, _ = quantize(x)
        order = np.argsort(x)
        sorted_codes = codes[order]
        assert (np.diff(sorted_codes) >= 0).all()
