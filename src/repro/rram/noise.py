"""BER-calibrated programming-noise model (paper Section 5.2, Eq. (5)).

The paper injects multiplicative Gaussian noise ``W̃ = W ⊙ (1 + η)`` and
*reverse-calculates* the standard deviation of ``η`` so the resulting bit
error rate matches measurements from fabricated RRAM chips: Fan et al.
report ≈4.04 % BER for MLC one day after programming (3M cells), and the
paper's reliability discussion puts higher-level MLC at ~7× the SLC error
rate.

Calibration model
-----------------
A cell storing level ``k`` reads ``k(1 + η)`` with ``η ~ N(0, σ²)``; a
*level error* occurs when the read crosses the midpoint to an adjacent
level (±0.5 in the cell's own level units, one-sided at the extremes).
Averaging over uniformly distributed levels gives ``BER(σ)``, which is
inverted numerically to recover σ from the measured 4.04 % MLC2 anchor.

SLC devices are driven into saturated SET/RESET states and so are
programmed far more precisely than verify-programmed MLC intermediate
levels.  We model this with a single precision ratio: σ(SLC) =
σ(MLC2) / ``SLC_PRECISION_RATIO`` (default 7, the paper's reliability
ratio), which makes SLC storage effectively error-free — "a much higher
noise margin against data distortion" — while MLC2 sits exactly at the
measured BER.  3-/4-bit MLC get proportionally larger σ, reproducing the
paper's reason for rejecting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, stats

from repro.rram.cell import CellType, MLC2, MLC3, MLC4, SLC

__all__ = [
    "level_error_rate",
    "sigma_to_ber",
    "ber_to_sigma",
    "NoiseSpec",
    "DEFAULT_NOISE",
    "apply_multiplicative_noise",
    "MEASURED_MLC2_BER",
    "SLC_PRECISION_RATIO",
]

#: Measured MLC BER anchor (Fan et al., 3M cells, one day after programming).
MEASURED_MLC2_BER = 0.0404
#: SLC programming precision relative to MLC2 (paper's 7x reliability ratio).
SLC_PRECISION_RATIO = 7.0


def level_error_rate(sigma: float, level: int, max_level: int) -> float:
    """P(read level != stored level) for one cell storing ``level``.

    The stored value reads ``level * (1 + η)``.  Decision boundaries sit at
    ``level ± 0.5`` (one-sided for the extreme levels).  Level 0 is
    noise-free under multiplicative noise — zero weights stay zero, exactly
    as in Eq. (5).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if not 0 <= level <= max_level:
        raise ValueError(f"level {level} outside [0, {max_level}]")
    if level == 0 or sigma == 0:
        return 0.0
    spread = sigma * level
    p_low = stats.norm.cdf(-0.5 / spread)  # read below level - 0.5
    p_high = stats.norm.sf(0.5 / spread)  # read above level + 0.5
    if level == max_level:
        # Reads above full scale saturate back to the top level.
        return float(p_low)
    return float(p_low + p_high)


def sigma_to_ber(sigma: float, cell: CellType) -> float:
    """Average level-error probability over uniformly distributed levels."""
    rates = [level_error_rate(sigma, k, cell.max_level) for k in range(cell.levels)]
    return float(np.mean(rates))


def ber_to_sigma(ber: float, cell: CellType) -> float:
    """Invert :func:`sigma_to_ber` numerically (the paper's calibration)."""
    if not 0.0 <= ber < 0.5:
        raise ValueError(f"target BER must be in [0, 0.5), got {ber}")
    if ber == 0.0:
        return 0.0

    def objective(sigma: float) -> float:
        return sigma_to_ber(sigma, cell) - ber

    # BER is monotonically increasing in sigma; bracket then bisect.
    low, high = 1e-6, 1.0
    while objective(high) < 0 and high < 1e3:
        high *= 2
    return float(optimize.brentq(objective, low, high, xtol=1e-9))


def _default_sigmas() -> dict[str, float]:
    sigma_mlc2 = ber_to_sigma(MEASURED_MLC2_BER, MLC2)
    return {
        MLC2.name: sigma_mlc2,
        SLC.name: sigma_mlc2 / SLC_PRECISION_RATIO,
        # Higher-level cells pack more states into the same conductance
        # window; their per-level-unit noise grows accordingly.
        MLC3.name: sigma_mlc2 * 1.5,
        MLC4.name: sigma_mlc2 * 2.0,
    }


@dataclass(frozen=True)
class NoiseSpec:
    """Calibrated per-cell-type multiplicative noise σ (level units)."""

    sigmas: dict[str, float] = field(default_factory=_default_sigmas)

    def sigma(self, cell: CellType) -> float:
        """Programming-noise σ for ``cell`` (multiplicative, level units)."""
        if cell.name not in self.sigmas:
            raise KeyError(f"no noise sigma for cell type {cell.name}")
        return self.sigmas[cell.name]

    def ber(self, cell: CellType) -> float:
        """Storage bit-error rate implied by the calibrated σ."""
        return sigma_to_ber(self.sigma(cell), cell)

    @classmethod
    def noiseless(cls) -> "NoiseSpec":
        """Ideal devices — useful for exactness tests and ablations."""
        return cls(sigmas={name: 0.0 for name in (SLC.name, MLC2.name, MLC3.name, MLC4.name)})


DEFAULT_NOISE = NoiseSpec()


def apply_multiplicative_noise(
    values: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Eq. (5): ``x̃ = x ⊙ (1 + η)`` with ``η ~ N(0, σ²)``."""
    values = np.asarray(values, dtype=float)
    if sigma == 0.0:
        return values.copy()
    return values * (1.0 + rng.normal(0.0, sigma, size=values.shape))
