"""Declarative experiment and sweep specifications.

An :class:`ExperimentSpec` names a registered experiment function plus the
parameters and base seed it runs with; a :class:`SweepSpec` adds parameter
grids that expand to a deterministic list of points.  Both hash to stable
content keys (sha256 over canonical JSON), which drives the on-disk result
cache and the per-point seed derivation — a point's seed depends only on
the spec content, never on execution order, so parallel and serial sweeps
are bitwise identical.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "ExperimentSpec",
    "SweepSpec",
    "canonical_json",
    "content_hash",
    "derive_seed",
]


def _jsonable(value: Any) -> Any:
    """Coerce ``value`` into a JSON-round-trippable form (tuples -> lists)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        # numpy scalars -> native python numbers
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return value


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any) -> str:
    """sha256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, params: Mapping[str, Any]) -> int:
    """Deterministic per-point seed from the base seed and the parameters.

    Uses sha256 (not ``hash()``) so the value is stable across processes
    and Python invocations regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(
        f"{base_seed}|{canonical_json(params)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment invocation: registered name + parameters + seed."""

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    def point_seed(self, exclude: Sequence[str] = ()) -> int:
        """The derived seed the experiment function actually receives.

        ``exclude`` drops evaluation-axis parameters (an experiment's
        registered ``eval_params``) from the derivation, so e.g. changing
        the list of protection rates evaluated does not silently retrain a
        different model.
        """
        params = {k: v for k, v in self.params.items() if k not in exclude}
        return derive_seed(self.seed, params)

    def content_key(self, code_version: str = "") -> str:
        """Cache key: spec content + the code-version fingerprint."""
        return content_hash(
            {
                "experiment": self.experiment,
                "params": self.params,
                "seed": self.seed,
                "code_version": code_version,
            }
        )

    def with_params(self, **overrides: Any) -> "ExperimentSpec":
        merged = {**self.params, **overrides}
        return ExperimentSpec(
            experiment=self.experiment, params=merged, seed=self.seed, tags=self.tags
        )

    def sweep(self, **grid: Sequence[Any]) -> "SweepSpec":
        """Lift this spec into a sweep over the given parameter grid."""
        return SweepSpec(
            experiment=self.experiment,
            grid={k: tuple(v) for k, v in grid.items()},
            base=dict(self.params),
            seed=self.seed,
            tags=self.tags,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": _jsonable(self.params),
            "seed": self.seed,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            experiment=payload["experiment"],
            params=dict(payload.get("params", {})),
            seed=int(payload.get("seed", 0)),
            tags=tuple(payload.get("tags", ())),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian-product grid of :class:`ExperimentSpec` points."""

    experiment: str
    grid: Mapping[str, Sequence[Any]]
    base: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "grid", {k: tuple(v) for k, v in dict(self.grid).items()}
        )
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(self, "tags", tuple(self.tags))

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def points(self) -> list[ExperimentSpec]:
        """Expand the grid in deterministic (sorted-key, row-major) order."""
        keys = sorted(self.grid)
        specs: list[ExperimentSpec] = []
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            params = {**self.base, **dict(zip(keys, combo))}
            specs.append(
                ExperimentSpec(
                    experiment=self.experiment,
                    params=params,
                    seed=self.seed,
                    tags=self.tags,
                )
            )
        return specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.points())

    def with_base(self, **overrides: Any) -> "SweepSpec":
        return SweepSpec(
            experiment=self.experiment,
            grid=self.grid,
            base={**self.base, **overrides},
            seed=self.seed,
            tags=self.tags,
        )
