"""KV-cache slot management: pooled decode buffers and row-level slots.

Serving traffic churns through many short-lived generation batches; without
pooling, every batch would reallocate ``num_layers * 2`` multi-megabyte K/V
buffers.  :class:`CacheSlotPool` keeps a bounded set of :class:`KVCache`
objects keyed by batch width, hands them out per serving batch, and evicts
the least-recently-used free slot when the pool is full — the software
analogue of a fixed digital-PIM K/V region being re-partitioned between
request batches.  Checked-out caches are tracked so a double release (or a
release of a cache the pool never issued) fails loudly instead of silently
corrupting the pool.

:class:`RowSlotManager` is the row-level counterpart used by continuous
(iteration-level) batching: one shared cache's rows are checked out to
in-flight requests, and the live rows are kept as a contiguous prefix
``[0, n_live)`` so the decode step can run over a zero-copy
:meth:`~repro.nn.kv_cache.KVCache.rows_view`.  Retiring a middle row
returns a swap-with-last compaction move for the caller to apply to the
cache (:meth:`~repro.nn.kv_cache.KVCache.copy_row`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.kv_cache import KVCache
from repro.nn.transformer import DecoderLM

__all__ = ["CacheSlotPool", "SlotPoolStats", "RowSlotManager", "RowSlotStats"]


@dataclass
class SlotPoolStats:
    """Allocation accounting for a :class:`CacheSlotPool`."""

    hits: int = 0  # acquire() satisfied by a pooled slot
    misses: int = 0  # acquire() had to allocate fresh buffers
    evictions: int = 0  # pooled slots dropped to make room

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly counter snapshot."""
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class CacheSlotPool:
    """Bounded LRU pool of :class:`KVCache` slots for one served model.

    Parameters
    ----------
    model:
        The decoder whose geometry (layers / heads / head_dim / max_seq_len)
        sizes every slot.
    max_slots:
        Maximum number of *free* caches retained; in-flight caches are not
        counted (the engine bounds those via its batch size).
    """

    def __init__(self, model: DecoderLM, max_slots: int = 4) -> None:
        if max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {max_slots}")
        self._model = model
        self.max_slots = max_slots
        self.stats = SlotPoolStats()
        # LRU order: index 0 is the least recently released.
        self._free: list[KVCache] = []
        # Checked-out caches by identity: release() validates against this,
        # so leaks (never released) and double releases are detectable.
        self._checked_out: dict[int, KVCache] = {}

    def acquire(self, batch: int) -> KVCache:
        """A reset cache with ``batch`` rows (pooled if one matches)."""
        for i, cache in enumerate(self._free):
            if cache.batch == batch:
                self.stats.hits += 1
                cache = self._free.pop(i)
                cache.reset()
                break
        else:
            self.stats.misses += 1
            cache = self._model.new_cache(batch)
        self._checked_out[id(cache)] = cache
        return cache

    def release(self, cache: KVCache) -> None:
        """Return a cache to the pool, evicting the LRU slot if full.

        Releasing a cache that is not currently checked out (double release,
        or a foreign cache) raises — silently accepting it would let one
        cache be handed to two batches at once.
        """
        if self._checked_out.pop(id(cache), None) is None:
            raise ValueError("release() of a cache not checked out from this pool")
        if len(self._free) >= self.max_slots:
            self._free.pop(0)
            self.stats.evictions += 1
        self._free.append(cache)

    @property
    def free_slots(self) -> int:
        """Slots currently available for checkout."""
        return len(self._free)

    @property
    def in_flight(self) -> int:
        """Caches currently checked out (acquired and not yet released)."""
        return len(self._checked_out)


@dataclass
class RowSlotStats:
    """Churn accounting for a :class:`RowSlotManager`."""

    checkouts: int = 0  # rows handed to admitted requests
    retirements: int = 0  # rows returned by finished requests
    compaction_moves: int = 0  # swap-with-last moves applied on retire

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly counter snapshot."""
        return {
            "checkouts": self.checkouts,
            "retirements": self.retirements,
            "compaction_moves": self.compaction_moves,
        }


class RowSlotManager:
    """Tracks which rows of one shared continuous-batching cache are live.

    Live rows always occupy the contiguous prefix ``[0, n_live)`` — that is
    what lets the decode step run over a zero-copy basic-slice view of the
    cache.  :meth:`checkout` hands out the next prefix row; :meth:`retire`
    shrinks the prefix and reports the swap-with-last compaction move the
    caller must apply to the cache (and to its own per-row bookkeeping).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = RowSlotStats()
        self._n_live = 0
        self._generation = 0

    @property
    def n_live(self) -> int:
        """Rows currently holding an in-flight request."""
        return self._n_live

    @property
    def generation(self) -> int:
        """Monotone batch-composition counter: bumps on every checkout/retire.

        Anything keyed to *which requests occupy which rows* — most
        importantly the packed-activation
        :class:`~repro.rram.kernels.PlaneCache` — invalidates itself by
        comparing this counter (``PlaneCache.set_generation``), so an
        admit or retirement can never leave stale per-batch state behind.
        """
        return self._generation

    @property
    def free(self) -> int:
        """Rows available for admission."""
        return self.capacity - self._n_live

    def checkout(self) -> int:
        """Claim the next free row (always ``n_live``, keeping the prefix)."""
        if self._n_live >= self.capacity:
            raise ValueError(f"no free rows (capacity {self.capacity})")
        row = self._n_live
        self._n_live += 1
        self._generation += 1
        self.stats.checkouts += 1
        return row

    def retire(self, row: int) -> int | None:
        """Release ``row``; returns the row to move into its place, if any.

        When ``row`` is not the last live row, the caller must relocate the
        returned source row (the old last live row) into ``row`` — e.g. via
        :meth:`KVCache.copy_row` — to restore the contiguous live prefix.
        Returns ``None`` when ``row`` was already last (no move needed).
        """
        if not (0 <= row < self._n_live):
            raise ValueError(f"row {row} is not live (n_live={self._n_live})")
        self._n_live -= 1
        self._generation += 1
        self.stats.retirements += 1
        if row == self._n_live:
            return None
        self.stats.compaction_moves += 1
        return self._n_live
