"""Evaluation metrics matching the paper's benchmarks (Section 5.1).

GLUE tasks use accuracy, Matthews correlation (cola) and Pearson correlation
(sts-b); language models use evaluation loss / perplexity; ViT uses top-1
accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.nn.data import ArrayDataset
from repro.nn.losses import lm_cross_entropy
from repro.nn.modules import Module
from repro.nn.tensor import no_grad

__all__ = [
    "accuracy",
    "matthews_correlation",
    "pearson_correlation",
    "perplexity",
    "evaluate_classifier",
    "evaluate_regressor",
    "evaluate_lm",
    "metric_for_task",
]


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    return float((predictions == targets).mean())


def matthews_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Binary Matthews correlation coefficient (GLUE cola metric)."""
    predictions = np.asarray(predictions).astype(int)
    targets = np.asarray(targets).astype(int)
    tp = float(((predictions == 1) & (targets == 1)).sum())
    tn = float(((predictions == 0) & (targets == 0)).sum())
    fp = float(((predictions == 1) & (targets == 0)).sum())
    fn = float(((predictions == 0) & (targets == 1)).sum())
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0:
        return 0.0
    return float((tp * tn - fp * fn) / denom)


def pearson_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Pearson r (GLUE sts-b metric)."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.std() == 0 or targets.std() == 0:
        return 0.0
    return float(np.corrcoef(predictions, targets)[0, 1])


def perplexity(mean_nll: float) -> float:
    """exp of the mean token negative log-likelihood."""
    return float(np.exp(mean_nll))


def evaluate_classifier(
    model: Module, dataset: ArrayDataset, metric: str = "accuracy", batch_size: int = 64
) -> float:
    """Run ``model`` over ``dataset`` and score with the named metric."""
    predictions = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            logits = model(dataset.inputs[start : start + batch_size])
            predictions.append(np.argmax(logits.data, axis=-1))
    predictions = np.concatenate(predictions)
    targets = dataset.targets.astype(int)
    if metric == "accuracy":
        return accuracy(predictions, targets)
    if metric == "matthews":
        return matthews_correlation(predictions, targets)
    raise ValueError(f"unknown classification metric {metric!r}")


def evaluate_regressor(model: Module, dataset: ArrayDataset, batch_size: int = 64) -> float:
    """Pearson correlation of model scores against targets (sts-b style)."""
    predictions = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            out = model(dataset.inputs[start : start + batch_size])
            predictions.append(out.data.reshape(-1))
    return pearson_correlation(np.concatenate(predictions), dataset.targets)


def evaluate_lm(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 32,
    pad_id: int | None = None,
) -> float:
    """Mean evaluation loss (nats/token) — the paper's decoder metric.

    The per-batch NLLs are weighted by the number of *scored tokens*, not by
    the number of sequences: sequence weighting skews the mean (and thus the
    reported perplexity) whenever batches score different token counts —
    e.g. a ragged final batch of padded sequences.

    ``pad_id`` marks target positions to exclude from scoring (right-padded
    variable-length sequences, as produced by the serving engine's batched
    decode); None scores every position.
    """
    total, count = 0.0, 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            inputs = dataset.inputs[start : start + batch_size]
            targets = np.asarray(dataset.targets[start : start + batch_size])
            logits = model(inputs)
            if pad_id is None:
                loss = lm_cross_entropy(logits, targets)
                tokens = targets.size
                total += float(loss.data) * tokens
            else:
                mask = targets != pad_id
                tokens = int(mask.sum())
                if tokens == 0:
                    continue
                log_probs = logits.log_softmax(axis=-1).data
                batch_idx, pos_idx = np.nonzero(mask)
                picked = log_probs[batch_idx, pos_idx, targets[mask]]
                total += float(-picked.sum())
            count += tokens
    return total / max(count, 1)


def metric_for_task(task_type: str, metric: str):
    """Resolve the evaluation callable for a task family."""
    if task_type == "classification":
        return lambda model, data: evaluate_classifier(model, data, metric=metric)
    if task_type == "regression":
        return lambda model, data: evaluate_regressor(model, data)
    if task_type == "lm":
        return lambda model, data: evaluate_lm(model, data)
    raise ValueError(f"unknown task_type {task_type!r}")
