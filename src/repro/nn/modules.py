"""Neural-network module system built on :mod:`repro.nn.tensor`.

Provides the layer vocabulary needed by the paper's Transformer workloads:
``Linear``, ``Embedding``, ``LayerNorm``, ``Dropout`` plus the ``Module``
container protocol (parameter registration, train/eval mode, state dicts).
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

import numpy as np

from repro.nn.tensor import Parameter, Tensor

__all__ = [
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
]


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimization and
    serialization, mirroring the familiar torch.nn.Module protocol.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter discovery ----------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    # -- gradient & mode management ----------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- serialization ------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(param.data.dtype).copy()


class ModuleList(Module):
    """Hold an ordered list of sub-modules with proper registration."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __setitem__(self, index: int, module: Module) -> None:
        self._items[index] = module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for i, module in enumerate(self._items):
            yield from module.named_parameters(prefix=f"{prefix}{i}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, Module]]:
        yield prefix.rstrip("."), self
        for i, module in enumerate(self._items):
            yield from module.named_modules(prefix=f"{prefix}{i}.")


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


def _kaiming_uniform(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    bound = math.sqrt(1.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with weight of shape (out, in).

    The (out, in) layout matches the paper's description of storing the
    transposed weight so an input row-vector multiplies it directly, and is
    the layout consumed by :mod:`repro.svd` and :mod:`repro.rram.mapping`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform(rng, in_features, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Token-id to dense-vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.embedding_lookup(indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.p, self.rng, training=self.training)


class _Activation(Module):
    _fn: Callable[[Tensor], Tensor]

    def forward(self, x: Tensor) -> Tensor:
        return type(self)._fn(x)


class GELU(_Activation):
    _fn = staticmethod(Tensor.gelu)


class ReLU(_Activation):
    _fn = staticmethod(Tensor.relu)


class Tanh(_Activation):
    _fn = staticmethod(Tensor.tanh)
