"""Synthetic language-modelling corpora replacing WikiText-2 and PTB.

The decoder experiments in the paper (GPT-2 on WikiText-2, Llama3 on PTB)
measure evaluation *loss* under hybrid SLC/MLC mapping.  We replace the
corpora with seeded Markov-chain text whose transition structure gives the
model something real to learn: a trained decoder reaches a loss far below
``log(vocab)`` and degrades smoothly as weight noise increases, which is the
phenomenology the experiments need.

Two presets mirror the paper's setups:

- :func:`wikitext2_like` — larger vocabulary, longer sequences, moderately
  peaked transitions (GPT-2 / WikiText-2, MSL 1024 in the paper, scaled down);
- :func:`ptb_like` — smaller vocabulary, shorter sequences, sharper
  transitions (Llama3 / PTB, MSL 100 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import ArrayDataset

__all__ = ["LMCorpusSpec", "MarkovCorpus", "make_lm_corpus", "wikitext2_like", "ptb_like"]


@dataclass(frozen=True)
class LMCorpusSpec:
    """Descriptor of a synthetic LM corpus."""

    name: str
    vocab_size: int
    seq_len: int
    train_sequences: int
    test_sequences: int
    branching: int  # plausible next-token count per state (peakedness)


@dataclass
class MarkovCorpus:
    """Generated corpus: (inputs, targets) pairs for next-token prediction."""

    spec: LMCorpusSpec
    train: ArrayDataset
    test: ArrayDataset
    transition: np.ndarray  # (vocab, vocab) row-stochastic matrix

    @property
    def entropy_rate(self) -> float:
        """Per-token entropy of the chain in nats (lower bound on test loss)."""
        probs = self.transition
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(probs > 0, -probs * np.log(probs), 0.0)
        row_entropy = terms.sum(axis=1)
        stationary = self._stationary()
        return float(stationary @ row_entropy)

    def _stationary(self) -> np.ndarray:
        values, vectors = np.linalg.eig(self.transition.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        v = np.real(vectors[:, idx])
        v = np.abs(v)
        return v / v.sum()


def _build_transition(spec: LMCorpusSpec, rng: np.random.Generator) -> np.ndarray:
    """Row-stochastic matrix where each state strongly prefers a few successors."""
    vocab = spec.vocab_size
    transition = np.full((vocab, vocab), 1e-3)
    for state in range(vocab):
        successors = rng.choice(vocab, size=spec.branching, replace=False)
        weights = rng.dirichlet(np.ones(spec.branching) * 0.6)
        transition[state, successors] += weights * 10.0
    transition /= transition.sum(axis=1, keepdims=True)
    return transition


def _sample_sequences(
    transition: np.ndarray, n: int, seq_len: int, rng: np.random.Generator
) -> np.ndarray:
    vocab = transition.shape[0]
    sequences = np.zeros((n, seq_len + 1), dtype=np.int64)
    cumulative = transition.cumsum(axis=1)
    state = rng.integers(0, vocab, size=n)
    sequences[:, 0] = state
    for t in range(1, seq_len + 1):
        u = rng.random(n)
        state = (cumulative[state] < u[:, None]).sum(axis=1)
        state = np.minimum(state, vocab - 1)
        sequences[:, t] = state
    return sequences


def make_lm_corpus(spec: LMCorpusSpec, seed: int = 0) -> MarkovCorpus:
    """Build a seeded Markov corpus with aligned input/target next-token pairs."""
    rng = np.random.default_rng(seed)
    transition = _build_transition(spec, rng)
    total = spec.train_sequences + spec.test_sequences
    sequences = _sample_sequences(transition, total, spec.seq_len, rng)
    inputs, targets = sequences[:, :-1], sequences[:, 1:]
    train = ArrayDataset(inputs[: spec.train_sequences], targets[: spec.train_sequences])
    test = ArrayDataset(inputs[spec.train_sequences :], targets[spec.train_sequences :])
    return MarkovCorpus(spec=spec, train=train, test=test, transition=transition)


def wikitext2_like(seed: int = 0) -> MarkovCorpus:
    """WikiText-2 stand-in: wider vocabulary, flatter transitions."""
    spec = LMCorpusSpec(
        name="wikitext2", vocab_size=64, seq_len=24, train_sequences=320,
        test_sequences=96, branching=6,
    )
    return make_lm_corpus(spec, seed=seed)


def ptb_like(seed: int = 0) -> MarkovCorpus:
    """PTB stand-in: smaller vocabulary, sharper transitions."""
    spec = LMCorpusSpec(
        name="ptb", vocab_size=48, seq_len=20, train_sequences=320,
        test_sequences=96, branching=4,
    )
    return make_lm_corpus(spec, seed=seed)
