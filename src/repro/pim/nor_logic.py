"""NOR-gate digital PIM primitive (Fig. 3(d), Section 3.1).

Digital RRAM PIM computes with memristor-aided logic where NOR is the native
in-array operation (MAGIC-style, [22, 58] in the paper): every Boolean
function is synthesized from NOR gates, each occupying three bitcell columns
(two operand bits, one output bit) and five cycles of row processing
(four writes + one read).

This module builds the full INT8 x INT8 multiplier the paper's digital PIM
modules use for Q·Kᵀ and S·V out of *counted* NOR operations, so both the
functional result (exact integer arithmetic) and the paper's cost model
(64 NOR ops per 8-bit multiply-accumulate step, 3 columns per NOR) are
grounded in an executable artifact.

Vectorization note: the one-bit gates (:func:`nor` through
:func:`full_adder`) evaluate real NOR netlists on whole arrays.  The wide
arithmetic (:func:`ripple_add`, :func:`multiply_int8`) used to iterate those
gates bit-by-bit in Python; it now computes the identical binary results
with bit-shift arrays in a constant number of numpy operations, while the
:class:`NorCounter` is charged exactly the gate count the sequential netlist
would have evaluated — so both the outputs and the cost model are unchanged,
only the Python-level per-bit loops are gone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.quantizer import int_to_bit_planes

__all__ = [
    "NorCounter",
    "nor",
    "nor_not",
    "nor_or",
    "nor_and",
    "nor_xor",
    "full_adder",
    "ripple_add",
    "multiply_int8",
    "NOR_OPS_PER_INT8_MULT",
    "COLUMNS_PER_NOR",
    "CYCLES_PER_ROW",
]

#: Paper constants for the digital PIM cost model.
NOR_OPS_PER_INT8_MULT = 64
COLUMNS_PER_NOR = 3
CYCLES_PER_ROW = 5  # four write cycles + one read cycle

#: Gate costs of the composite netlists (used to charge :class:`NorCounter`
#: when the sequential bit loops are evaluated as closed-form arithmetic).
_GATES_PER_AND = 3
_GATES_PER_FULL_ADDER = 18  # two XORs (5 each), two ANDs (3 each), one OR (2)


@dataclass
class NorCounter:
    """Counts primitive NOR evaluations (the unit of digital PIM work)."""

    count: int = 0


def nor(a: np.ndarray, b: np.ndarray, counter: NorCounter | None = None) -> np.ndarray:
    """The native in-memory gate: NOR(a, b) over {0,1} arrays."""
    if counter is not None:
        counter.count += 1
    return 1 - np.bitwise_or(a, b)


def nor_not(a: np.ndarray, counter: NorCounter | None = None) -> np.ndarray:
    """NOT(a) = NOR(a, a): one gate."""
    return nor(a, a, counter)


def nor_or(a: np.ndarray, b: np.ndarray, counter: NorCounter | None = None) -> np.ndarray:
    """OR = NOT(NOR): two gates."""
    return nor_not(nor(a, b, counter), counter)


def nor_and(a: np.ndarray, b: np.ndarray, counter: NorCounter | None = None) -> np.ndarray:
    """AND(a, b) = NOR(NOT a, NOT b): three gates."""
    return nor(nor_not(a, counter), nor_not(b, counter), counter)


def nor_xor(a: np.ndarray, b: np.ndarray, counter: NorCounter | None = None) -> np.ndarray:
    """XOR from five NOR gates (standard minimal construction)."""
    n1 = nor(a, b, counter)
    n2 = nor(a, n1, counter)
    n3 = nor(b, n1, counter)
    return nor_not(nor(n2, n3, counter), counter)


def full_adder(
    a: np.ndarray, b: np.ndarray, carry: np.ndarray, counter: NorCounter | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-bit full adder from NOR gates; returns (sum, carry_out)."""
    axb = nor_xor(a, b, counter)
    s = nor_xor(axb, carry, counter)
    carry_out = nor_or(
        nor_and(a, b, counter), nor_and(axb, carry, counter), counter
    )
    return s, carry_out


def ripple_add(
    a_bits: np.ndarray, b_bits: np.ndarray, counter: NorCounter | None = None
) -> np.ndarray:
    """Add two LSB-first bit vectors of equal width; returns width+1 bits.

    The result is the carry-chain of ``width`` :func:`full_adder` netlists,
    evaluated in closed form: the operands are recombined with bit-shift
    weights, added as integers (binary addition *is* the ripple carry), and
    re-split into planes.  The counter is charged the same
    ``width x 18`` gates the sequential chain evaluates, and the output is
    bitwise identical to it.
    """
    a_bits = np.asarray(a_bits)
    b_bits = np.asarray(b_bits)
    if a_bits.shape != b_bits.shape:
        raise ValueError("operand widths must match")
    width = a_bits.shape[-1]
    if counter is not None:
        counter.count += width * _GATES_PER_FULL_ADDER
    weights = (1 << np.arange(width)).astype(np.int64)
    totals = (a_bits * weights).sum(axis=-1) + (b_bits * weights).sum(axis=-1)
    planes = int_to_bit_planes(totals, width + 1)  # (width+1,) + batch shape
    return np.moveaxis(planes, 0, -1).astype(a_bits.dtype)


def multiply_int8(
    a: int | np.ndarray, b: int | np.ndarray, counter: NorCounter | None = None
) -> np.ndarray:
    """Unsigned 8-bit multiply built entirely from NOR gates.

    Shift-and-add over AND-ed partial products; returns 16-bit results.
    Signed INT8 multiplication in the digital PIM uses the same array with
    two's-complement pre/post conditioning handled by the peripheral logic.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if (a < 0).any() or (a > 255).any() or (b < 0).any() or (b > 255).any():
        raise ValueError("multiply_int8 expects unsigned 8-bit operands")
    a_bits = np.moveaxis(int_to_bit_planes(a, 8), 0, -1)
    b_bits = np.moveaxis(int_to_bit_planes(b, 8), 0, -1)

    # All 64 partial-product bits a_k AND b_j from one vectorized evaluation
    # of the AND netlist (previously one call per b bit-plane j).
    partials = nor_and(a_bits[..., None, :], b_bits[..., :, None], counter)
    if counter is not None:
        # Charge the gates the sequential shift-and-add netlist evaluates:
        # the seven AND evaluations folded into the single call above, plus
        # the eight 16-bit ripple additions of the partial products.
        counter.count += 7 * _GATES_PER_AND
        counter.count += 8 * 16 * _GATES_PER_FULL_ADDER
    # Shift-and-add in closed form: partial bit (j, k) carries weight 2^(j+k).
    # einsum reduces without materializing the broadcast int64 product.
    weights = (1 << (np.arange(8)[:, None] + np.arange(8)[None, :])).astype(np.int64)
    return np.einsum("...jk,jk->...", partials, weights)
