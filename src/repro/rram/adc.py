"""Reconfigurable 6-bit / 7-bit SAR ADC model (Fig. 8).

The paper shares one successive-approximation ADC across 128 bitlines via a
multiplexer and sample-and-hold bank.  Precision follows the rule

    bits = ceil(log2(R)) + w - 1

for ``R`` crossbar rows and ``w`` bits per cell: 6 b for SLC and 7 b for MLC
at R = 64.  The 7-b design runs as a 6-b converter by bypassing the MSB
capacitor (C7), with <1 % area/energy overhead versus a dedicated 6-b ADC.
Per the survey cited in the paper, each extra bit doubles conversion energy;
MLC halves the number of conversions, so total ADC energy is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["required_adc_bits", "SarAdc"]


def required_adc_bits(rows: int, cell_bits: int) -> int:
    """The paper's precision rule ``ceil(log2 R) + w - 1``."""
    if rows < 1 or cell_bits < 1:
        raise ValueError("rows and cell_bits must be positive")
    return math.ceil(math.log2(rows)) + cell_bits - 1


@dataclass(frozen=True)
class SarAdc:
    """Unit-step quantizer over bitline level-sums.

    One ADC code corresponds to one cell-level unit of bitline current; reads
    clip at the full-scale code ``2^bits - 1``.  ``max_bits`` models the
    physical capacitor array: requesting more bits than the hardware has is
    an error, while fewer bits engage the MSB-bypass mode.
    """

    bits: int
    max_bits: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= self.max_bits:
            raise ValueError(
                f"bits must be in [1, {self.max_bits}], got {self.bits}"
            )

    @property
    def full_scale(self) -> int:
        """Largest code the converter can emit (2^bits - 1)."""
        return 2**self.bits - 1

    @property
    def bypassed_capacitors(self) -> int:
        """MSB capacitors skipped in reduced-precision mode (Fig. 8(b))."""
        return self.max_bits - self.bits

    def convert(self, analog_sums: np.ndarray) -> np.ndarray:
        """Quantize analog level-sums to integer codes (round, clip, floor at 0)."""
        codes = np.rint(np.asarray(analog_sums, dtype=float))
        np.clip(codes, 0, self.full_scale, out=codes)
        return codes.astype(np.int64)

    def convert_(self, analog_sums: np.ndarray) -> np.ndarray:
        """In-place :meth:`convert` for the fast GEMV kernel.

        Rounds and clips ``analog_sums`` (a float array) in place and returns
        it: the codes stay in the float dtype (exact small integers) so the
        caller's digital shift-and-add can run as BLAS without a single
        intermediate allocation.
        """
        np.rint(analog_sums, out=analog_sums)
        np.clip(analog_sums, 0, self.full_scale, out=analog_sums)
        return analog_sums

    def relative_energy(self) -> float:
        """Energy per conversion relative to a 6-b conversion (doubles per bit)."""
        return 2.0 ** (self.bits - 6)

    def reconfigure(self, bits: int) -> "SarAdc":
        """Same physical ADC at a different precision (SLC<->MLC switch)."""
        return SarAdc(bits=bits, max_bits=self.max_bits)
