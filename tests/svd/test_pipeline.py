"""Integration tests for the gradient-redistribution pipeline (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_glue_task
from repro.nn import EncoderClassifier, TransformerConfig
from repro.svd import (
    GradientRedistributionPipeline,
    SVDLinear,
    apply_svd,
    finetune,
    sigma_gradient_snapshot,
)


@pytest.fixture(scope="module")
def task_and_model():
    """Tiny encoder + sst2-like task reused across tests (training is slow)."""
    data = make_glue_task("sst2", seed=0)
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=2,
        d_ff=64,
        max_seq_len=data.spec.seq_len,
        num_classes=2,
        seed=0,
    )
    return data, config


class TestApplySVD:
    def test_replaces_all_static_linears(self, task_and_model):
        _, config = task_and_model
        model = EncoderClassifier(config)
        replaced = apply_svd(model)
        assert len(replaced) == 6 * config.num_layers
        for _, layer in model.iter_static_linears():
            assert isinstance(layer, SVDLinear)

    def test_model_still_runs_after_replacement(self, task_and_model, rng):
        data, config = task_and_model
        model = EncoderClassifier(config)
        before = model(data.test.inputs[:4]).data
        apply_svd(model, rank=config.d_model)  # full rank: lossless
        after = model(data.test.inputs[:4]).data
        np.testing.assert_allclose(after, before, atol=1e-8)

    def test_truncation_changes_output(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        before = model(data.test.inputs[:4]).data
        apply_svd(model, rank=4)
        after = model(data.test.inputs[:4]).data
        assert not np.allclose(after, before)


class TestFinetune:
    def test_recovers_accuracy_after_truncation(self, task_and_model):
        """The paper's core recovery claim, at mini scale: fine-tuning brings
        the truncated model's loss back down."""
        data, config = task_and_model
        model = EncoderClassifier(config)
        apply_svd(model)  # hard-threshold truncation
        result = finetune(
            model, data.train, task_type="classification",
            epochs=2, batch_size=32, learning_rate=2e-3,
        )
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert result.steps == 2 * ((len(data.train) + 31) // 32)

    def test_sigma_gradients_recorded_per_layer(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        apply_svd(model)
        result = finetune(
            model, data.train, task_type="classification",
            epochs=1, batch_size=64, learning_rate=1e-3,
        )
        assert len(result.sigma_gradients) == 6 * config.num_layers
        for grads in result.sigma_gradients.values():
            assert (grads >= 0).all()
            assert grads.sum() > 0

    def test_rejects_unknown_task(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        with pytest.raises(ValueError):
            finetune(model, data.train, task_type="ranking")


class TestGradientSnapshot:
    def test_snapshot_does_not_change_weights(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        apply_svd(model)
        state_before = model.state_dict()
        sigma_gradient_snapshot(model, data.test, "classification", max_batches=2)
        state_after = model.state_dict()
        for key in state_before:
            np.testing.assert_array_equal(state_before[key], state_after[key])

    def test_concentration_metric_bounds(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        apply_svd(model)
        snap = sigma_gradient_snapshot(model, data.test, "classification", max_batches=2)
        conc = snap.concentration(0.1)
        assert conc
        for value in conc.values():
            assert 0.0 <= value <= 1.0


class TestPipeline:
    @pytest.fixture(scope="class")
    def plan(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        pipeline = GradientRedistributionPipeline(
            protect_fraction=0.2, epochs=1, batch_size=32, learning_rate=2e-3,
        )
        return pipeline.run(model, data.train, task_type="classification")

    def test_plan_covers_all_layers(self, plan, task_and_model):
        _, config = task_and_model
        assert len(plan.layers) == 6 * config.num_layers

    def test_protection_rate_respected(self, plan):
        for layer in plan.layers.values():
            expected = max(1, int(round(layer.rank * 0.2)))
            assert int(layer.protected_ranks.sum()) == expected

    def test_merged_factor_shapes(self, plan):
        for layer in plan.layers.values():
            rank, in_f = layer.a_matrix.shape
            out_f, rank_b = layer.b_matrix.shape
            assert rank == rank_b == layer.rank

    def test_protected_ranks_have_largest_gradients(self, plan):
        for layer in plan.layers.values():
            protected = layer.sigma_gradients[layer.protected_ranks]
            unprotected = layer.sigma_gradients[~layer.protected_ranks]
            if len(protected) and len(unprotected):
                assert protected.min() >= unprotected.max() - 1e-12

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GradientRedistributionPipeline(policy="random")

    def test_totals_consistent(self, plan):
        assert plan.protected_ranks() <= plan.total_ranks()
        assert plan.protected_ranks() > 0


class TestGradientRedistributionEffect:
    """Fig. 11's qualitative claims at mini scale.

    The paper starts from large *pretrained* models whose weight spectra
    decay steeply; our from-scratch mini models have flatter spectra, so we
    assert the load-bearing directional invariants rather than the paper's
    absolute concentration levels (see EXPERIMENTS.md for the measured gap):

    1. after truncation + fine-tuning, the gradient mass over ranks is
       markedly non-uniform, and
    2. it is biased toward the *leading* ranks (larger singular values),
       which is what makes a small SLC-protection budget effective.
    """

    @pytest.fixture(scope="class")
    def finetuned_layers(self, task_and_model):
        data, config = task_and_model
        model = EncoderClassifier(config)
        # Pre-train the dense model first (the paper fine-tunes pretrained
        # models; an untrained model has no information to redistribute).
        from repro.nn import AdamW, BatchIterator, cross_entropy

        opt = AdamW(model.parameters(), lr=2e-3, weight_decay=0.05)
        gen = np.random.default_rng(0)
        for _ in range(4):
            for x, y in BatchIterator(data.train, 32, rng=gen):
                loss = cross_entropy(model(x), y.astype(int))
                model.zero_grad()
                loss.backward()
                opt.step()
        layers = apply_svd(model)
        finetune(
            model, data.train, task_type="classification",
            epochs=2, batch_size=32, learning_rate=2e-3,
        )
        return layers

    def test_gradient_mass_is_nonuniform(self, finetuned_layers):
        ratios = []
        for layer in finetuned_layers.values():
            grads = layer.mean_sigma_gradient()
            ratios.append(grads.max() / max(grads.mean(), 1e-12))
        # Uniform gradients would give ratio 1; demand clear structure.
        assert np.mean(ratios) > 1.5

    def test_leading_ranks_carry_excess_mass(self, finetuned_layers):
        """Mass in the first 25% of ranks should exceed the uniform share."""
        shares = []
        for layer in finetuned_layers.values():
            grads = layer.mean_sigma_gradient()
            k = max(1, len(grads) // 4)
            shares.append(grads[:k].sum() / max(grads.sum(), 1e-12))
        assert np.mean(shares) > 0.25

    def test_gradient_rank_correlation_is_negative(self, finetuned_layers):
        """Spearman(rank index, |grad|) < 0: gradients shrink down the ranks."""
        from scipy import stats

        correlations = []
        for layer in finetuned_layers.values():
            grads = layer.mean_sigma_gradient()
            correlations.append(
                stats.spearmanr(np.arange(len(grads)), grads).statistic
            )
        assert np.mean(correlations) < -0.05
