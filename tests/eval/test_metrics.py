"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    accuracy,
    matthews_correlation,
    pearson_correlation,
    perplexity,
    metric_for_task,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0
        assert accuracy(np.array([1, 1, 1]), np.array([0, 0, 0])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 1, 0]), np.array([1, 0, 0, 1])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))


class TestMatthews:
    def test_perfect_prediction_is_one(self):
        y = np.array([0, 1, 0, 1, 1])
        assert matthews_correlation(y, y) == pytest.approx(1.0)

    def test_inverted_prediction_is_minus_one(self):
        y = np.array([0, 1, 0, 1])
        assert matthews_correlation(1 - y, y) == pytest.approx(-1.0)

    def test_constant_prediction_is_zero(self):
        assert matthews_correlation(np.ones(6, dtype=int), np.array([0, 1, 0, 1, 0, 1])) == 0.0

    def test_random_prediction_near_zero(self):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 2, size=10_000)
        targets = rng.integers(0, 2, size=10_000)
        assert abs(matthews_correlation(preds, targets)) < 0.05


class TestPearson:
    def test_linear_relation_is_one(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 3) == pytest.approx(1.0)

    def test_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0


class TestPerplexity:
    def test_uniform_model(self):
        assert perplexity(np.log(50)) == pytest.approx(50.0)

    def test_zero_loss(self):
        assert perplexity(0.0) == 1.0


class TestMetricForTask:
    def test_unknown_task(self):
        with pytest.raises(ValueError):
            metric_for_task("ranking", "accuracy")

    def test_unknown_classification_metric(self):
        evaluator = metric_for_task("classification", "f1")
        from repro.nn import ArrayDataset

        with pytest.raises(ValueError):
            evaluator(_ArgmaxModel(), ArrayDataset(np.zeros((2, 2)), np.zeros(2)))


class _ArgmaxModel:
    def __call__(self, x):
        from repro.nn import Tensor

        return Tensor(np.zeros((len(x), 2)))


class TestEvaluateLm:
    """Regression tests for token-weighted (not sequence-weighted) mean NLL."""

    @staticmethod
    def _tiny_lm():
        from repro.nn import DecoderLM, TransformerConfig

        return DecoderLM(
            TransformerConfig(
                vocab_size=20,
                d_model=16,
                num_heads=2,
                num_layers=1,
                d_ff=32,
                max_seq_len=10,
                seed=3,
            )
        )

    @staticmethod
    def _manual_token_nll(model, inputs, targets, pad_id):
        from repro.nn import no_grad

        with no_grad():
            log_probs = model(inputs).log_softmax(axis=-1).data
        mask = targets != pad_id
        b, t = np.nonzero(mask)
        return float(-log_probs[b, t, targets[mask]].sum() / mask.sum())

    def test_batch_size_invariant_with_ragged_last_batch(self):
        """Mean NLL must not depend on how the dataset is batched."""
        from repro.eval import evaluate_lm
        from repro.nn import ArrayDataset

        rng = np.random.default_rng(0)
        model = self._tiny_lm()
        inputs = rng.integers(1, 20, size=(7, 8))
        targets = rng.integers(1, 20, size=(7, 8))
        data = ArrayDataset(inputs, targets)
        full = evaluate_lm(model, data, batch_size=7)
        ragged = evaluate_lm(model, data, batch_size=3)  # batches of 3, 3, 1
        assert full == pytest.approx(ragged, rel=1e-12)

    def test_padded_sequences_score_tokens_not_sequences(self):
        """With pad_id, rows contribute their valid tokens — a short row in a
        ragged final batch must not carry the same weight as a full one."""
        from repro.eval import evaluate_lm
        from repro.nn import ArrayDataset

        rng = np.random.default_rng(1)
        model = self._tiny_lm()
        inputs = rng.integers(1, 20, size=(5, 8))
        targets = rng.integers(1, 20, size=(5, 8))
        targets[3, 4:] = 0  # ragged rows, pad_id = 0
        targets[4, 2:] = 0
        data = ArrayDataset(inputs, targets)

        expected = self._manual_token_nll(model, inputs, targets, pad_id=0)
        for batch_size in (5, 2, 1):
            got = evaluate_lm(model, data, batch_size=batch_size, pad_id=0)
            assert got == pytest.approx(expected, rel=1e-12), batch_size

        # The old sequence-weighted mean over ragged batches is measurably
        # different — that skew is what this fix removes.
        from repro.nn import no_grad
        from repro.nn.losses import lm_cross_entropy

        seq_weighted_total, seq_count = 0.0, 0
        with no_grad():
            for start in range(0, 5, 2):
                batch_in = inputs[start : start + 2]
                batch_tg = targets[start : start + 2]
                loss = lm_cross_entropy(model(batch_in), batch_tg)
                seq_weighted_total += float(loss.data) * len(batch_in)
                seq_count += len(batch_in)
        old_style = seq_weighted_total / seq_count
        assert old_style != pytest.approx(expected, rel=1e-6)

    def test_all_pad_batch_is_skipped(self):
        from repro.eval import evaluate_lm
        from repro.nn import ArrayDataset

        rng = np.random.default_rng(2)
        model = self._tiny_lm()
        inputs = rng.integers(1, 20, size=(3, 6))
        targets = rng.integers(1, 20, size=(3, 6))
        targets[2, :] = 0  # final single-row batch fully padded
        data = ArrayDataset(inputs, targets)
        expected = self._manual_token_nll(model, inputs, targets, pad_id=0)
        assert evaluate_lm(model, data, batch_size=2, pad_id=0) == pytest.approx(expected)
