"""Sharding benchmark: the tracked perf trajectory of ``repro.dist``.

``bench_shard`` deploys one crossbar-mode decoder onto 1/2/4/8-way
tensor-parallel meshes (plus a two-chip pipeline point), serves the same
request trace through every deployment, and reports:

- **correctness riding along** — every mesh's greedy tokens must match the
  1-way deployment bit-for-bit (the noiseless sharded forward is
  bitwise-equal to the unsharded fast kernel);
- **hardware-projected throughput** — tokens/s from the
  :class:`~repro.dist.HardwareProjection` over the deployed geometry and
  the interconnect traffic actually exercised; the CI gate requires
  >= 1.5x at 4-way over 1-way;
- **the analytic cross-check** — the same shard-count curve from
  :class:`~repro.arch.scaling.ScalabilityModel` (Fig. 17's model), both
  normalized to their 1-way points, which must agree in shape: monotone
  non-decreasing, with the functional curve within the analytic bound
  (the mapper's per-shard tiling overhead can only *lower* it).

The payload lands in ``BENCH_shard.json`` (written by
``benchmarks/bench_shard.py`` and the CI smoke job).  Wall-clock numbers
ride along for context but are not gated — the projection is the
deterministic quantity.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exp.registry import experiment

__all__ = ["bench_shard"]

#: Mesh widths benchmarked (tensor-parallel ways on one chip).  The gate
#: compares the 4-way point against 1-way.
DEFAULT_WAYS = (1, 2, 4, 8)
GATE_WAYS = 4

#: Served trace geometry (overridable via params).
DEFAULT_REQUESTS = 8
DEFAULT_PROMPT_LEN = 5
DEFAULT_NEW_TOKENS = 6


def _shard_model_and_plans(params: dict[str, Any], seed: int):
    from repro.nn import DecoderLM, TransformerConfig
    from repro.svd.pipeline import LayerPlan

    config = TransformerConfig(
        vocab_size=int(params.get("vocab_size", 40)),
        d_model=int(params.get("d_model", 16)),
        num_heads=int(params.get("num_heads", 2)),
        num_layers=int(params.get("num_layers", 2)),
        d_ff=int(params.get("d_ff", 32)),
        max_seq_len=int(params.get("max_seq_len", 32)),
        seed=seed,
    )
    model = DecoderLM(config)
    rng = np.random.default_rng(seed + 1)
    plans: dict[str, LayerPlan] = {}
    for name, linear in model.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        rank = min(out_f, in_f)
        mask = np.zeros(rank, dtype=bool)
        mask[: max(1, rank // 4)] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(rank),
        )
    return model, plans


def _deploy_engine(model, plans, calib, ways: int, num_chips: int, seed: int):
    from repro.dist import DeviceMesh
    from repro.rram.noise import NoiseSpec
    from repro.serve import ServingEngine

    return ServingEngine.deploy(
        model,
        plans,
        calibration_prompts=calib,
        noise=NoiseSpec.noiseless(),  # the bitwise-equality regime
        mode="crossbar",
        seed=seed,
        mesh=DeviceMesh(num_chips=num_chips),
        tensor_parallel=ways,
        max_batch_size=int(max(1, len(calib))) * 2,
    )


def _serve_point(engine, prompts, new_tokens: int) -> dict[str, Any]:
    start = time.perf_counter()
    results = engine.serve(prompts, max_new_tokens=new_tokens)
    wall_s = time.perf_counter() - start
    tokens = sum(int(r.tokens.size) for r in results)
    report = engine.hardware_report()
    return {
        "tokens": tokens,
        "wall_s": round(wall_s, 4),
        "wall_tok_s": round(tokens / wall_s, 1),
        "projected_tok_s": report["projected_tokens_per_s"],
        "projected_rate_tok_s": report["pipeline_rate_tokens_per_s"],
        "serial_token_latency_us": report["serial_token_latency_us"],
        "mean_projected_latency_us": round(
            float(np.mean([r.projected_latency_s for r in results])) * 1e6, 4
        ),
        "plan": report["plan"],
        "traffic": report["traffic"],
        "_tokens_per_request": [r.tokens for r in results],
    }


def _analytic_curve(params: dict[str, Any], ways: tuple[int, ...]) -> list[float]:
    """Fig. 17 model's normalized throughput over the same shard counts."""
    from repro.arch.scaling import ScalabilityModel
    from repro.models.configs import ModelSpec

    spec = ModelSpec(
        name="bench-shard",
        kind="decoder",
        num_layers=int(params.get("num_layers", 2)),
        d_model=int(params.get("d_model", 16)),
        num_heads=int(params.get("num_heads", 2)),
        d_ff=int(params.get("d_ff", 32)),
        vocab_size=int(params.get("vocab_size", 40)),
        max_seq_len=int(params.get("max_seq_len", 32)),
    )
    model = ScalabilityModel()
    seq_len = int(params.get("max_seq_len", 32))
    rates = [
        model.throughput(spec, seq_len, 0.25, 1, pus_per_layer=w).tokens_per_second
        for w in ways
    ]
    return [rate / rates[0] for rate in rates]


@experiment(
    "bench_shard",
    smoke={"ways": (1, 4), "requests": 6, "new_tokens": 4},
)
def bench_shard(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Shard-count scaling of the crossbar serving engine (see module doc)."""
    ways_grid = tuple(int(w) for w in params.get("ways", DEFAULT_WAYS))
    if 1 not in ways_grid:
        ways_grid = (1,) + ways_grid
    num_requests = int(params.get("requests", DEFAULT_REQUESTS))
    prompt_len = int(params.get("prompt_len", DEFAULT_PROMPT_LEN))
    new_tokens = int(params.get("new_tokens", DEFAULT_NEW_TOKENS))

    model, plans = _shard_model_and_plans(params, seed)
    rng = np.random.default_rng(seed + 2)
    vocab = model.config.vocab_size
    calib = rng.integers(0, vocab, size=(2, prompt_len + 1))
    prompts = [rng.integers(0, vocab, size=prompt_len) for _ in range(num_requests)]

    curve = []
    baseline_tokens = None
    for ways in ways_grid:
        engine = _deploy_engine(model, plans, calib, ways, num_chips=1, seed=seed)
        point = _serve_point(engine, prompts, new_tokens)
        per_request = point.pop("_tokens_per_request")
        if baseline_tokens is None:
            baseline_tokens = per_request
        elif any(
            not np.array_equal(a, b) for a, b in zip(baseline_tokens, per_request)
        ):
            raise AssertionError(
                f"{ways}-way sharded deployment diverged from the 1-way tokens"
            )
        point["ways"] = ways
        curve.append(point)

    base_rate = curve[0]["projected_rate_tok_s"]
    for point in curve:
        point["normalized_projected"] = round(
            point["projected_rate_tok_s"] / base_rate, 4
        )

    # Two-chip pipeline point (case 3): PCIe-6.0 handoffs must show up in
    # the exercised-traffic ledger and the tokens must still match.
    pipeline_engine = _deploy_engine(
        model, plans, calib, ways=2, num_chips=2, seed=seed
    )
    pipeline = _serve_point(pipeline_engine, prompts, new_tokens)
    per_request = pipeline.pop("_tokens_per_request")
    if any(not np.array_equal(a, b) for a, b in zip(baseline_tokens, per_request)):
        raise AssertionError("two-chip pipeline deployment diverged from 1-way tokens")
    if pipeline["traffic"]["pcie6"]["bytes"] <= 0:
        raise AssertionError("pipeline point recorded no PCIe-6.0 handoff traffic")

    analytic = _analytic_curve(params, ways_grid)
    gated = next((p for p in curve if p["ways"] == GATE_WAYS), None)
    payload: dict[str, Any] = {
        "ways": list(ways_grid),
        "curve": curve,
        "pipeline_2chip": pipeline,
        "analytic_normalized": [round(v, 4) for v in analytic],
        "trace": {
            "requests": num_requests,
            "prompt_len": prompt_len,
            "new_tokens": new_tokens,
        },
    }
    if gated is not None:
        payload["gate"] = {
            "ways": GATE_WAYS,
            "projected_speedup": round(
                gated["projected_tok_s"] / curve[0]["projected_tok_s"], 3
            ),
            "threshold": 1.5,
        }
    return payload
