"""Property-based tests for row insert/retire on a live KVCache.

Randomized interleavings of admissions (row-view prefill), retirements
(swap-with-last compaction) and decode steps are driven against a live
shared cache across batch geometries; after **every** operation, the
cached next-token logits of each live row must match a from-scratch
full-context forward over that row's entire token history.  This is the
correctness core of continuous batching: row views, ragged scatter
appends, key-validity masks and compaction copies must compose in any
order.

The same harness runs against a host-float model (hypothesis-driven,
many interleavings) and against a crossbar-deployed model under both
GEMV kernel modes (``KernelPolicy(mode="reference"/"fast")``), where
frozen activation calibration plus noiseless cells make the incremental
and full-context paths agree exactly.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import DecoderLM, TransformerConfig
from repro.nn.tensor import no_grad
from repro.pim.hybrid import attach_hybrid_layers, calibrate_activations
from repro.rram import KernelPolicy, kernel_policy
from repro.serve import RowSlotManager
from repro.svd.pipeline import LayerPlan

VOCAB = 24
MAX_SEQ = 32


def _host_model() -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=16,
            num_heads=2,
            num_layers=2,
            d_ff=32,
            max_seq_len=MAX_SEQ,
            seed=11,
        )
    )


def _deployed_model(mode: str = "crossbar") -> DecoderLM:
    """A tiny crossbar-deployed decoder with frozen activation scales."""
    rng = np.random.default_rng(3)
    config = TransformerConfig(
        vocab_size=16,
        d_model=8,
        num_heads=2,
        num_layers=1,
        d_ff=16,
        max_seq_len=24,
        seed=3,
    )
    lm = DecoderLM(config)
    plans = {}
    for name, linear in lm.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        r = min(out_f, in_f)
        mask = np.zeros(r, dtype=bool)
        mask[: r // 2] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(r),
        )
    attached = attach_hybrid_layers(lm, plans, mode=mode, seed=0)
    lm.eval()

    def run_calibration() -> None:
        with no_grad():
            lm(rng.integers(0, 16, size=(2, 8)))

    # Frozen scales are what make the incremental path (1-token inputs)
    # quantize identically to the full-context path (L-token inputs).
    calibrate_activations(attached, run_calibration)
    return lm


class RowHarness:
    """Oracle-checked driver for row-level ops on one live shared cache.

    Mirrors exactly what the continuous scheduler does (row-view prefill,
    live-prefix decode, swap-with-last compaction) while keeping a
    pure-python history of every live row's tokens as the oracle.
    """

    def __init__(self, model: DecoderLM, batch: int, atol: float = 1e-10) -> None:
        self.model = model
        self.model.eval()
        self.cache = model.new_cache(batch)
        self.slots = RowSlotManager(batch)
        self.histories: list[list[int] | None] = [None] * batch
        self.atol = atol

    @property
    def live(self) -> int:
        return self.slots.n_live

    @property
    def free(self) -> int:
        return self.slots.free

    def row_len(self, index: int) -> int:
        return len(self.histories[index])

    def admit(self, prompt: list[int]) -> None:
        row = self.slots.checkout()
        view = self.cache.row_view(row)
        with no_grad():
            logits = self.model.prefill(np.array(prompt, dtype=np.int64), view)
        self.histories[row] = list(prompt)
        self._assert_matches(logits[0], self.histories[row], f"admit row {row}")

    def decode(self, tokens: list[int]) -> None:
        n = self.live
        assert len(tokens) == n
        feeds = np.array(tokens, dtype=np.int64)[:, None]
        with no_grad():
            logits = self.model.forward(
                feeds, cache=self.cache.rows_view(0, n)
            ).data[:, -1]
        for i, token in enumerate(tokens):
            self.histories[i].append(int(token))
            self._assert_matches(logits[i], self.histories[i], f"decode row {i}")

    def retire(self, row: int) -> None:
        moved_src = self.slots.retire(row)
        if moved_src is None:
            self.histories[row] = None
            self.cache.clear_row(row)
        else:
            self.cache.copy_row(moved_src, row)
            self.histories[row] = self.histories[moved_src]
            self.histories[moved_src] = None
            self.cache.clear_row(moved_src)

    def check_all_rows(self) -> None:
        """Probe every live row: cached logits ≡ from-scratch forward.

        Feeds a probe token through a deep copy of the live cache (the
        real cache is untouched) and compares each row's logits against a
        full-context forward over ``history + probe``.
        """
        n = self.live
        if n == 0:
            return
        probe = 0
        dup = copy.deepcopy(self.cache)
        feeds = np.full((n, 1), probe, dtype=np.int64)
        with no_grad():
            logits = self.model.forward(feeds, cache=dup.rows_view(0, n)).data[:, -1]
        for i in range(n):
            self._assert_matches(logits[i], self.histories[i] + [probe], f"probe row {i}")

    def _assert_matches(self, cached_logits, history: list[int], label: str) -> None:
        with no_grad():
            scratch = self.model.forward(
                np.array(history, dtype=np.int64)[None, :]
            ).data[0, -1]
        np.testing.assert_allclose(
            cached_logits, scratch, atol=self.atol, rtol=self.atol, err_msg=label
        )


def _drive(harness: RowHarness, data, n_ops: int, vocab: int, max_prompt: int) -> None:
    """Draw and apply a constraint-respecting interleaving of operations."""
    for _ in range(n_ops):
        ops = []
        if harness.free > 0:
            ops.append("admit")
        if harness.live > 0:
            ops.append("retire")
        # A decode appends a token to every live row, and the probe check
        # needs one more free position on top of that.
        if harness.live > 0 and all(
            harness.row_len(i) + 2 <= harness.cache.capacity
            for i in range(harness.live)
        ):
            ops.append("decode")
        op = data.draw(st.sampled_from(ops))
        if op == "admit":
            prompt = data.draw(
                st.lists(
                    st.integers(0, vocab - 1), min_size=1, max_size=max_prompt
                )
            )
            harness.admit(prompt)
        elif op == "retire":
            harness.retire(data.draw(st.integers(0, harness.live - 1)))
        else:
            tokens = [
                data.draw(st.integers(0, vocab - 1)) for _ in range(harness.live)
            ]
            harness.decode(tokens)
        harness.check_all_rows()


class TestHostModelInterleavings:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), batch=st.integers(1, 4))
    def test_random_interleavings(self, data, batch):
        """Arbitrary admit/retire/decode orders across batch geometries."""
        harness = RowHarness(_host_model(), batch=batch)
        n_ops = data.draw(st.integers(3, 12))
        _drive(harness, data, n_ops, vocab=VOCAB, max_prompt=5)

    def test_seeded_long_interleaving(self):
        """One deep deterministic interleaving (regression anchor)."""
        rng = np.random.default_rng(99)
        harness = RowHarness(_host_model(), batch=3)
        for _ in range(40):
            choice = rng.random()
            if (harness.live == 0 or choice < 0.35) and harness.free > 0:
                harness.admit(list(rng.integers(0, VOCAB, size=rng.integers(1, 6))))
            elif choice < 0.55 and harness.live > 0:
                harness.retire(int(rng.integers(0, harness.live)))
            elif harness.live > 0 and all(
                harness.row_len(i) + 2 <= harness.cache.capacity
                for i in range(harness.live)
            ):
                harness.decode(list(rng.integers(0, VOCAB, size=harness.live)))
            harness.check_all_rows()


@pytest.mark.slow
class TestKernelModes:
    """The same harness against a crossbar deployment, both GEMV kernels."""

    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_interleavings_match_from_scratch(self, mode):
        model = _deployed_model()
        rng = np.random.default_rng(7)
        with kernel_policy(KernelPolicy(mode=mode)):
            harness = RowHarness(model, batch=3, atol=1e-9)
            for _ in range(10):
                choice = rng.random()
                if (harness.live == 0 or choice < 0.4) and harness.free > 0:
                    harness.admit(list(rng.integers(0, 16, size=rng.integers(1, 5))))
                elif choice < 0.6 and harness.live > 0:
                    harness.retire(int(rng.integers(0, harness.live)))
                elif harness.live > 0 and all(
                    harness.row_len(i) + 2 <= harness.cache.capacity
                    for i in range(harness.live)
                ):
                    harness.decode(list(rng.integers(0, 16, size=harness.live)))
                harness.check_all_rows()

    def test_kernel_modes_agree_bitwise(self):
        """Noiseless fast ≡ reference on the cached decode path itself."""
        model = _deployed_model()
        prompt = np.array([1, 5, 3, 2], dtype=np.int64)
        outs = {}
        for mode in ("reference", "fast"):
            with kernel_policy(KernelPolicy(mode=mode)):
                outs[mode] = model.generate(prompt, 6)
        np.testing.assert_array_equal(outs["reference"], outs["fast"])
