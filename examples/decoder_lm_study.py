"""Decoder LM study: evaluation loss vs SLC rate (mini Fig. 12(b)).

Trains a GPT-like causal LM on the WikiText-2 stand-in corpus, compiles it
through gradient redistribution, and reports evaluation loss under hybrid
SLC/MLC deployment.  The paper finds decoders need more protection (5-20 %)
than encoders; the same trend appears here.  Also demonstrates generation
with a deployed model.

Run:  python examples/decoder_lm_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HyFlexPim
from repro.datasets import wikitext2_like
from repro.nn import AdamW, BatchIterator, DecoderLM, TransformerConfig, lm_cross_entropy


def main() -> None:
    print("== Decoder LM protection study (mini Fig. 12b) ==")
    corpus = wikitext2_like(seed=0)
    config = TransformerConfig(
        vocab_size=corpus.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=2,
        d_ff=128,  # GPT-2's 4x expansion
        max_seq_len=corpus.spec.seq_len,
        seed=0,
    )
    model = DecoderLM(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(0)
    print(f"chain entropy rate (lower bound): {corpus.entropy_rate:.3f} nats/token")
    for epoch in range(4):
        total, batches = 0.0, 0
        for inputs, targets in BatchIterator(corpus.train, 16, rng=rng):
            loss = lm_cross_entropy(model(inputs), targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            total += float(loss.data)
            batches += 1
        print(f"  epoch {epoch + 1}: train loss {total / batches:.3f}")

    hfp = HyFlexPim(protect_fraction=0.2, epochs=2, batch_size=16, learning_rate=2e-3)
    compiled = hfp.compile(model, corpus.train, task_type="lm")
    baseline = hfp.ideal_reference(compiled, corpus.test, metric="loss")
    print(f"\nnoise-free INT8 eval loss: {baseline:.3f} "
          f"(ppl {np.exp(baseline):.1f}, uniform would be {corpus.spec.vocab_size})")

    print("eval loss vs SLC rate (lower is better):")
    sweep = hfp.protection_sweep(compiled, corpus.test, rates=(0.0, 0.05, 0.2, 0.5, 1.0))
    for rate, loss in sweep.items():
        increase = 100.0 * (loss - sweep[1.0]) / sweep[1.0]
        print(f"  SLC {rate * 100:5.1f}%: loss {loss:.3f} (+{increase:5.1f}% vs all-SLC)")

    print("\nsample generation from the deployed (20% SLC) model:")
    deployed = hfp.deploy(compiled.with_protection(0.2))
    prompt = corpus.test.inputs[0][:5]
    tokens = deployed.generate(prompt, max_new_tokens=15, rng=np.random.default_rng(1))
    print(f"  prompt {prompt.tolist()} -> {tokens[5:].tolist()}")


if __name__ == "__main__":
    main()
