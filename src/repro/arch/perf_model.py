"""Comparison orchestration: the quantities behind Figs. 14, 15 and 16.

``PerformanceComparison`` evaluates HyFlexPIM (at a set of SLC rates)
against the five Section 5.3 baselines and emits the normalized tables the
paper plots:

- :meth:`linear_energy_table` — Fig. 14: linear-layer energy, normalized to
  the non-PIM baseline (=100), per sequence length and SLC rate;
- :meth:`end_to_end_energy` / :meth:`energy_improvement` — Fig. 15;
- :meth:`speedup_table` — Fig. 16: throughput ratios vs ASADI† and SPRINT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.baselines import (
    AsadiBaseline,
    AsadiDaggerBaseline,
    BaselineCosts,
    NmpBaseline,
    NonPimBaseline,
    SprintBaseline,
)
from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig
from repro.arch.energy import EnergyBreakdown, HyFlexPimEnergyModel
from repro.arch.latency import HyFlexPimLatencyModel
from repro.models.configs import ModelSpec

__all__ = ["PerformanceComparison", "FIG14_SEQ_LENS", "FIG14_SLC_RATES"]

FIG14_SEQ_LENS = (128, 512, 1024, 2048, 4096, 8192)
FIG14_SLC_RATES = (0.05, 0.10, 0.30, 0.40, 0.50)


@dataclass
class PerformanceComparison:
    """HyFlexPIM vs baselines on one model spec."""

    hardware: HardwareConfig = field(default_factory=lambda: DEFAULT_HARDWARE)
    costs: BaselineCosts = field(default_factory=BaselineCosts)

    def __post_init__(self) -> None:
        self.energy_model = HyFlexPimEnergyModel(self.hardware)
        self.latency_model = HyFlexPimLatencyModel(self.hardware)
        self.baselines = {
            "asadi-dagger": AsadiDaggerBaseline(self.costs, self.hardware),
            "asadi": AsadiBaseline(self.costs, self.hardware),
            "nmp": NmpBaseline(self.costs),
            "sprint": SprintBaseline(self.costs),
            "non-pim": NonPimBaseline(self.costs),
        }

    # ------------------------------------------------------------------
    # Fig. 14
    # ------------------------------------------------------------------
    def linear_energy_table(
        self,
        spec: ModelSpec,
        seq_lens: tuple[int, ...] = FIG14_SEQ_LENS,
        slc_rates: tuple[float, ...] = FIG14_SLC_RATES,
    ) -> dict[int, dict[str, float]]:
        """Normalized linear-layer energy (non-PIM = 100) per sequence length.

        Keys of the inner dict: ``hyflexpim@<rate>`` plus baseline names.
        """
        table: dict[int, dict[str, float]] = {}
        for n in seq_lens:
            reference = self.baselines["non-pim"].linear_layers_energy(spec, n).total_pj()
            row: dict[str, float] = {}
            for rate in slc_rates:
                ours = self.energy_model.linear_layers_energy(spec, n, rate).total_pj()
                row[f"hyflexpim@{int(rate * 100)}%"] = 100.0 * ours / reference
            for name, model in self.baselines.items():
                row[name] = 100.0 * model.linear_layers_energy(spec, n).total_pj() / reference
            table[n] = row
        return table

    # ------------------------------------------------------------------
    # Fig. 15
    # ------------------------------------------------------------------
    def end_to_end_energy(
        self, spec: ModelSpec, seq_len: int, slc_rate: float
    ) -> EnergyBreakdown:
        return self.energy_model.end_to_end_energy(spec, seq_len, slc_rate)

    def energy_improvement(
        self, spec: ModelSpec, seq_len: int, slc_rate: float
    ) -> dict[str, float]:
        """End-to-end energy of each baseline relative to HyFlexPIM (x)."""
        ours = self.end_to_end_energy(spec, seq_len, slc_rate).total_pj()
        return {
            name: model.end_to_end_energy(spec, seq_len).total_pj() / ours
            for name, model in self.baselines.items()
        }

    # ------------------------------------------------------------------
    # Fig. 16
    # ------------------------------------------------------------------
    def hyflexpim_time_s(
        self, spec: ModelSpec, seq_len: int, slc_rate: float, mode: str = "prefill"
    ) -> float:
        return self.latency_model.inference_time_s(spec, seq_len, slc_rate, mode=mode)

    def speedup_table(
        self,
        spec: ModelSpec,
        seq_lens: tuple[int, ...] = FIG14_SEQ_LENS,
        slc_rates: tuple[float, ...] = FIG14_SLC_RATES,
        versus: tuple[str, ...] = ("asadi-dagger", "sprint"),
        mode: str = "prefill",
    ) -> dict[str, dict[int, dict[float, float]]]:
        """Throughput ratio (baseline time / HyFlexPIM time) per N and rate.

        ``mode="decode"`` evaluates the generation regime (GPT-2/WikiText-2),
        where weight-streaming baselines become bandwidth-bound and the
        paper's largest speedups appear.
        """
        table: dict[str, dict[int, dict[float, float]]] = {}
        for name in versus:
            baseline = self.baselines[name]
            per_n: dict[int, dict[float, float]] = {}
            for n in seq_lens:
                base_time = baseline.inference_time_s(spec, n, mode=mode)
                per_n[n] = {
                    rate: base_time / self.hyflexpim_time_s(spec, n, rate, mode=mode)
                    for rate in slc_rates
                }
            table[name] = per_n
        return table
