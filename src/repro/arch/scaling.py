"""Tensor/pipeline parallelism scalability model (Fig. 17, Section 6.3.5).

Three scaling regimes from Section 3.1:

1. **Tensor parallelism within a chip** — small models (GPT-2: 12 layers on
   24 PUs) assign multiple PUs per layer; throughput scales almost linearly,
   shaved by the OCI partial-sum aggregation (paper: 1.99x for 2 PUs).
2. **Multi-PU layers** — large hidden dims (Llama3) exceed one PU's arrays,
   forcing >= 2 PUs per layer for capacity alone.
3. **Pipeline parallelism across chips** — models that exceed one chip
   cascade over PCIe-6.0, paying one hidden-vector handoff per chip
   boundary (paper: quad/octa chips reach 1.96x / 3.65x over dual).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig
from repro.arch.interconnect import (
    hidden_vector_handoff_cycles,
    partial_sum_aggregation_cycles,
)
from repro.arch.latency import HyFlexPimLatencyModel
from repro.arch.workload import memory_footprint_bytes
from repro.models.configs import ModelSpec

__all__ = ["ScalingReport", "ScalabilityModel"]


@dataclass
class ScalingReport:
    """Memory demand and normalized throughput for one configuration."""

    model: str
    num_chips: int
    pus_per_layer: int
    analog_demand_gb: float
    digital_demand_gb: float
    fits: bool
    tokens_per_second: float
    normalized_throughput: float = 1.0


@dataclass
class ScalabilityModel:
    """Fig. 17 analysis: capacity requirements and multi-chip throughput."""

    hardware: HardwareConfig = field(default_factory=lambda: DEFAULT_HARDWARE)

    def __post_init__(self) -> None:
        self.latency = HyFlexPimLatencyModel(self.hardware)

    # ------------------------------------------------------------------
    def memory_demand(self, spec: ModelSpec, seq_len: int) -> dict[str, float]:
        """Analog (weights) and digital (dynamic) RRAM demand in bytes.

        Attention-score rows stream through the softmax pipeline without
        being persisted, so the digital demand is the KV cache plus small
        per-layer activation buffers.
        """
        footprint = memory_footprint_bytes(spec, seq_len)
        activation_buffers = 2.0 * spec.num_layers * spec.d_model * 1024
        return {
            "analog_bytes": footprint["analog_weights"],
            "digital_bytes": footprint["kv_cache"] + activation_buffers,
        }

    def min_pus_per_layer(self, spec: ModelSpec, slc_rate: float) -> int:
        """PUs a single layer needs for array capacity alone (case 1)."""
        demand = self.latency.layer_array_demand(spec, slc_rate)
        per_pu = self.hardware.analog_arrays_per_pu()
        return max(1, -(-demand // per_pu))

    def min_chips(self, spec: ModelSpec, slc_rate: float, seq_len: int) -> int:
        """Chips needed to hold every layer at once (pipeline parallelism)."""
        pus_per_layer = self.min_pus_per_layer(spec, slc_rate)
        total_pus = spec.num_layers * pus_per_layer
        by_compute = -(-total_pus // self.hardware.num_pus)
        demand = self.memory_demand(spec, seq_len)
        by_digital = -(
            -int(demand["digital_bytes"]) // self.hardware.chip_digital_capacity_bytes()
        )
        return max(1, by_compute, by_digital)

    # ------------------------------------------------------------------
    def throughput(
        self,
        spec: ModelSpec,
        seq_len: int,
        slc_rate: float,
        num_chips: int,
        pus_per_layer: int | None = None,
    ) -> ScalingReport:
        """Tokens/s of a multi-PU / multi-chip deployment.

        Throughput follows the weights-stationary concurrency model of
        :class:`HyFlexPimLatencyModel`, restricted to the PU budget this
        configuration devotes to the model (``pus_per_layer x num_layers``),
        minus the OCI partial-sum aggregation (tensor parallelism) and the
        PCIe hidden-vector handoff between chips (pipeline parallelism).
        """
        hw = self.hardware
        min_ppl = self.min_pus_per_layer(spec, slc_rate)
        if pus_per_layer is None:
            total_pus = num_chips * hw.num_pus
            pus_per_layer = max(min_ppl, total_pus // spec.num_layers)
        pus_per_layer = max(pus_per_layer, min_ppl)

        from repro.arch.latency import GEMV_STAGES_PER_LAYER

        pus_in_use = min(pus_per_layer * spec.num_layers, num_chips * hw.num_pus)
        budget_arrays = pus_in_use * hw.analog_arrays_per_pu()
        demand_arrays = self.latency.model_array_demand(spec, slc_rate)
        concurrency = budget_arrays / demand_arrays

        stage_s = GEMV_STAGES_PER_LAYER * self.latency.gemv_wave_s()
        # Tensor-parallel partial-sum aggregation per layer (cases 1-2).
        if pus_per_layer > 1:
            stage_s += (
                partial_sum_aggregation_cycles(pus_per_layer, clock_hz=hw.clock_hz)
                / hw.clock_hz
            )
        # Pipeline handoff between chips (case 3), amortized per layer.
        if num_chips > 1:
            layers_per_chip = max(1, -(-spec.num_layers // num_chips))
            handoff_s = (
                hidden_vector_handoff_cycles(spec.d_model, clock_hz=hw.clock_hz)
                / hw.clock_hz
            )
            stage_s += handoff_s / layers_per_chip

        analog_rate = concurrency / stage_s

        attn_macs_per_token = 2.0 * seq_len * spec.d_model * spec.num_layers
        digital_rate_ops = (
            hw.digital_ops_per_cycle_per_module()
            * hw.digital.modules_per_pu
            * pus_in_use
            * hw.clock_hz
        )
        digital_rate = digital_rate_ops / attn_macs_per_token
        tokens_per_second = min(analog_rate, digital_rate)

        demand = self.memory_demand(spec, seq_len)
        analog_capacity = num_chips * hw.chip_analog_slc_capacity_bytes()
        digital_capacity = num_chips * hw.chip_digital_capacity_bytes()
        effective_bits_per_cell = slc_rate + 2.0 * (1.0 - slc_rate)
        fits = (
            spec.num_layers * pus_per_layer <= num_chips * hw.num_pus
            and demand["digital_bytes"] <= digital_capacity
            and demand["analog_bytes"] <= analog_capacity * effective_bits_per_cell
        )
        return ScalingReport(
            model=spec.name,
            num_chips=num_chips,
            pus_per_layer=pus_per_layer,
            analog_demand_gb=demand["analog_bytes"] / 1e9,
            digital_demand_gb=demand["digital_bytes"] / 1e9,
            fits=fits,
            tokens_per_second=tokens_per_second,
        )

    def scaling_curve(
        self,
        spec: ModelSpec,
        seq_len: int,
        slc_rate: float,
        chip_counts: tuple[int, ...],
    ) -> list[ScalingReport]:
        """Fig. 17's series: throughput vs chip count, normalized to the first."""
        reports = [
            self.throughput(spec, seq_len, slc_rate, chips) for chips in chip_counts
        ]
        base = reports[0].tokens_per_second
        for report in reports:
            report.normalized_throughput = report.tokens_per_second / base
        return reports
