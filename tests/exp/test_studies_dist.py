"""Tests for the bench_shard scaling-trajectory study."""

from __future__ import annotations

from repro.exp import ExperimentSpec, Runner, available_experiments

TINY = {
    "ways": (1, 4),
    "requests": 3,
    "prompt_len": 4,
    "new_tokens": 3,
    "d_model": 16,
    "num_heads": 2,
    "num_layers": 2,
    "d_ff": 32,
    "max_seq_len": 32,
    "vocab_size": 40,
}


class TestBenchShard:
    def test_registered_with_smoke_config(self):
        defn = available_experiments()["bench_shard"]
        assert defn.smoke  # CI runs it via --smoke
        assert 4 in defn.smoke["ways"]  # the gated width must be in the smoke grid

    def test_tiny_run_payload_and_gate(self):
        result = Runner(use_cache=False).run(ExperimentSpec("bench_shard", params=TINY))
        value = result.value
        assert value["ways"] == [1, 4]
        assert len(value["curve"]) == 2
        one, four = value["curve"]
        assert one["normalized_projected"] == 1.0
        # The tentpole's scaling claim, at test scale: 4-way tensor
        # parallelism projects >= 1.5x the 1-way engine throughput while
        # the study has already asserted bitwise token equality.
        assert value["gate"]["projected_speedup"] >= 1.5
        assert four["plan"]["pus_assigned"] > one["plan"]["pus_assigned"]
        assert four["traffic"]["oci"]["bytes"] > 0
        # Analytic Fig. 17 curve rides along for the cross-check.
        assert len(value["analytic_normalized"]) == 2
        assert four["normalized_projected"] <= value["analytic_normalized"][1] * 1.05
        # The two-chip pipeline point exercises PCIe-6.0.
        assert value["pipeline_2chip"]["traffic"]["pcie6"]["bytes"] > 0

    def test_one_way_is_prepended_when_missing(self):
        params = dict(TINY, ways=(2,))
        result = Runner(use_cache=False).run(
            ExperimentSpec("bench_shard", params=params)
        )
        assert result.value["ways"] == [1, 2]
        assert "gate" not in result.value
