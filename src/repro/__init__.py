"""HyFlexPIM reproduction: hybrid SLC-MLC RRAM mixed-signal PIM for Transformers.

Reproduction of "Hybrid SLC-MLC RRAM Mixed-Signal Processing-in-Memory
Architecture for Transformer Acceleration via Gradient Redistribution"
(ISCA 2025).  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-versus-measured record.

Sub-packages
------------
``repro.nn``        numpy autograd + Transformer model substrate
``repro.quant``     INT8 quantization
``repro.svd``       SVD gradient-redistribution pipeline (the paper's algorithm)
``repro.rram``      RRAM device, noise, ADC and crossbar models
``repro.pim``       analog/digital PIM modules, processing units, chip
``repro.arch``      analytic performance model + baseline accelerators
``repro.dist``      sharded multi-chip execution (tensor/pipeline parallelism)
``repro.models``    paper model configs and down-scaled factories
``repro.datasets``  synthetic GLUE/LM/vision workloads
``repro.eval``      metrics and experiment harness
``repro.core``      public compile -> deploy -> evaluate API
"""

__version__ = "1.0.0"
