"""Tests for the HyFlexPIM energy and latency models."""

from __future__ import annotations

import pytest

from repro.arch import HyFlexPimEnergyModel, HyFlexPimLatencyModel
from repro.models import paper_model


@pytest.fixture(scope="module")
def energy():
    return HyFlexPimEnergyModel()


@pytest.fixture(scope="module")
def latency():
    return HyFlexPimLatencyModel()


@pytest.fixture(scope="module")
def bert():
    return paper_model("bert-large")


class TestWaveEnergies:
    def test_adc_per_conversion_matches_table2(self, energy):
        """512 mW over 512 ADCs at 1.28 GSps -> 0.78 pJ per 6-b conversion."""
        per_conversion = energy.wave.adc_6b_pj / 128  # 128 conversions per wave
        assert per_conversion == pytest.approx(0.781, abs=0.01)

    def test_7b_doubles_6b(self, energy):
        assert energy.wave.adc_7b_pj == 2 * energy.wave.adc_6b_pj

    def test_adc_share_of_slc_wave(self, energy):
        """ADC must be ~55 % of SLC analog energy, per Table 2's power split."""
        share = energy.wave.adc_6b_pj / energy.wave.per_wave_pj(1)
        assert share == pytest.approx(0.55, abs=0.02)

    def test_mlc_wave_costs_more_but_halves_arrays(self, energy):
        slc = energy.wave.per_wave_pj(1)
        mlc = energy.wave.per_wave_pj(2)
        assert mlc > slc
        # Half the arrays at higher per-wave cost must still win overall.
        assert 0.5 * mlc < slc


class TestGemvEnergy:
    def test_mlc_saves_energy_at_equal_adc(self, energy):
        slc = energy.gemv_energy(768, 768, cell_bits=1, tokens=128)
        mlc = energy.gemv_energy(768, 768, cell_bits=2, tokens=128)
        # ADC energy identical (paper Section 3.2)...
        assert mlc.categories["adc"] == pytest.approx(slc.categories["adc"], rel=0.01)
        # ...every other analog component halves.
        assert mlc.categories["rram_analog"] == pytest.approx(
            slc.categories["rram_analog"] / 2, rel=0.01
        )
        assert mlc.categories["wl_drv_analog"] == pytest.approx(
            slc.categories["wl_drv_analog"] / 2, rel=0.01
        )
        # Net MLC saving ~20-25 %.
        ratio = mlc.total_pj() / slc.total_pj()
        assert 0.70 < ratio < 0.85

    def test_energy_scales_with_tokens(self, energy):
        one = energy.gemv_energy(768, 768, 1, tokens=1).total_pj()
        many = energy.gemv_energy(768, 768, 1, tokens=128).total_pj()
        assert many == pytest.approx(128 * one)

    def test_factored_energy_increases_with_slc_rate(self, energy):
        totals = [
            energy.factored_layer_energy(768, 768, rate, tokens=128).total_pj()
            for rate in (0.05, 0.3, 0.5, 1.0)
        ]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_rate_validation(self, energy):
        with pytest.raises(ValueError):
            energy.factored_layer_energy(64, 64, 1.5, tokens=1)

    def test_linear_layers_scale_with_depth(self, energy):
        base = paper_model("bert-base")
        large = paper_model("bert-large")
        e_base = energy.linear_layers_energy(base, 128, 0.1).total_pj()
        e_large = energy.linear_layers_energy(large, 128, 0.1).total_pj()
        assert e_large > 2 * e_base  # 2x layers and wider


class TestEndToEnd:
    def test_breakdown_categories_present(self, energy, bert):
        breakdown = energy.end_to_end_energy(bert, 1024, 0.05)
        for category in (
            "adc",
            "rram_analog",
            "wl_drv_analog",
            "attention_dot",
            "rram_write_digital",
            "sfu",
        ):
            assert breakdown.categories.get(category, 0) > 0, category

    def test_adc_is_dominant_category(self, energy, bert):
        """Fig. 15(b): the linear-layer ADC dominates HyFlexPIM's energy."""
        shares = energy.end_to_end_energy(bert, 128, 0.05).shares()
        assert max(shares, key=shares.get) == "adc"
        assert shares["adc"] > 0.35

    def test_shares_sum_to_one(self, energy, bert):
        shares = energy.end_to_end_energy(bert, 512, 0.1).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_attention_share_grows_with_n(self, energy, bert):
        short = energy.end_to_end_energy(bert, 128, 0.05).shares()["attention_dot"]
        long = energy.end_to_end_energy(bert, 4096, 0.05).shares()["attention_dot"]
        assert long > short


class TestAnalogAttentionEnergy:
    def test_analog_swaps_digital_categories_for_analog_stack(self, energy, bert):
        analog = energy.attention_energy(bert, 512, attention="analog")
        assert "attention_dot" not in analog.categories
        assert "rram_write_digital" not in analog.categories
        for category in ("adc", "rram_analog", "wl_drv_analog", "rram_write_analog", "sfu"):
            assert analog.categories.get(category, 0) > 0, category

    @pytest.mark.parametrize("mode", ["prefill", "decode"])
    def test_analog_attention_is_cheaper_per_op(self, energy, bert, mode):
        digital = energy.attention_energy(bert, 512, mode=mode).total_pj()
        analog = energy.attention_energy(
            bert, 512, mode=mode, attention="analog"
        ).total_pj()
        assert 0 < analog < digital

    def test_kv_writes_are_not_amortized(self, bert):
        """Unlike static weights, per-token KV writes ignore the
        write-amortization corpus size."""
        from repro.arch import HyFlexPimEnergyModel

        small = HyFlexPimEnergyModel(write_amortization_inferences=10.0)
        large = HyFlexPimEnergyModel(write_amortization_inferences=1e9)
        a = small.analog_attention_energy(bert, 256).categories["rram_write_analog"]
        b = large.analog_attention_energy(bert, 256).categories["rram_write_analog"]
        assert a == b > 0

    def test_digital_default_is_unchanged(self, energy, bert):
        explicit = energy.end_to_end_energy(bert, 512, 0.05, attention="digital")
        default = energy.end_to_end_energy(bert, 512, 0.05)
        assert explicit.categories == default.categories

    def test_rejects_unknown_attention_kind(self, energy, bert):
        with pytest.raises(ValueError, match="attention"):
            energy.attention_energy(bert, 128, attention="quantum")


class TestLatency:
    def test_gemv_wave_is_900ns(self, latency):
        assert latency.gemv_wave_s() == pytest.approx(900e-9)

    def test_mlc_halves_layer_demand(self, latency, bert):
        all_slc = latency.layer_array_demand(bert, 1.0)
        all_mlc = latency.layer_array_demand(bert, 0.0)
        assert all_mlc == pytest.approx(all_slc / 2, rel=0.05)

    def test_bert_large_dense_layer_fills_one_pu(self, latency, bert):
        """Dense SLC BERT-Large layer: 12,288 arrays = exactly one PU."""
        demand = latency.dense_layer_array_demand(bert)
        assert demand == 24 * 512

    def test_throughput_rises_as_slc_rate_falls(self, latency, bert):
        rates = [latency.tokens_per_second(bert, 128, r) for r in (1.0, 0.5, 0.05)]
        assert rates[0] < rates[1] < rates[2]

    def test_mlc_throughput_bound_is_2x(self, latency, bert):
        """Fig. 16's ceiling: all-MLC at most doubles all-SLC throughput."""
        speedup = latency.tokens_per_second(bert, 128, 0.0) / latency.tokens_per_second(
            bert, 128, 1.0
        )
        assert 1.7 < speedup <= 2.05

    def test_chips_scale_throughput(self, latency, bert):
        one = latency.tokens_per_second(bert, 128, 0.1, num_chips=1)
        two = latency.tokens_per_second(bert, 128, 0.1, num_chips=2)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_inference_time_modes(self, latency, bert):
        assert latency.inference_time_s(bert, 128, 0.1, mode="prefill") > 0
        with pytest.raises(ValueError):
            latency.inference_time_s(bert, 128, 0.1, mode="training")
