"""Shared cost constants and interface for baseline accelerator models.

The five comparison points of Section 5.3 are systems from other papers
(ASADI, SPRINT, TransPIM-style NMP, and a non-PIM digital processor).  Their
absolute per-operation energies are not derivable from this paper alone, so
each constant below is *calibrated*: anchored to public 65 nm-era numbers
(off-chip DRAM ≈ tens of pJ/B, HBM single-digit pJ/B, INT8 MAC ≈ 1 pJ) and
tuned within those ranges so the relative factors reported in the paper's
Figs. 14-16 are reproduced in shape.  EXPERIMENTS.md records paper-reported
versus model-measured values for every headline ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.energy import EnergyBreakdown
from repro.models.configs import ModelSpec

__all__ = ["BaselineCosts", "DEFAULT_COSTS", "BaselineModel"]


@dataclass(frozen=True)
class BaselineCosts:
    """Calibrated per-operation energies (pJ) and bandwidths for baselines."""

    # Memory hierarchies (pJ per byte moved).  Off-chip costs are the *full*
    # access energy (row activation + I/O termination + controller) at the
    # 65 nm-era system level, which is several times the pin-level figure.
    dram_pj_per_byte: float = 500.0  # full off-chip DDR access
    sram_pj_per_byte: float = 2.9  # on-chip cache access
    hbm_pj_per_byte: float = 45.0  # full HBM access (NMP baseline)
    nmp_local_pj_per_byte: float = 1.85  # near-bank local movement
    rram_storage_read_pj_per_byte: float = 290.0  # SPRINT's on-chip RRAM reads

    # Compute.
    mac_int8_pj: float = 2.0  # 65 nm digital INT8 MAC incl. datapath
    nmp_mac_int8_pj: float = 2.2  # bank-level ALU MAC (TransPIM-class)
    fp32_energy_factor: float = 4.0  # FP32 vs INT8 energy per op
    fp32_digital_pim_time_factor: float = 4.0  # FP32 vs INT8 digital PIM time

    # Throughput.
    digital_processor_macs_per_cycle: float = 8192.0  # SPRINT/non-PIM datapath
    clock_hz: float = 1e9
    dram_bandwidth_gbps: float = 51.2  # DDR-class
    rram_storage_bandwidth_gbps: float = 100.0  # SPRINT on-chip storage
    hbm_bandwidth_gbps: float = 410.0  # HBM2 (NMP)
    decode_stream_batch: int = 16  # sequences batched to amortize streaming

    # Attention sparsity exploited by prior work.
    sprint_token_keep_ratio: float = 0.254  # 74.6 % pruned (Section 6.3.2)
    asadi_attention_keep_ratio: float = 0.4  # ASADI's locality compression


DEFAULT_COSTS = BaselineCosts()


class BaselineModel:
    """Interface all baselines implement (energies in pJ, times in s)."""

    name: str = "baseline"

    def __init__(self, costs: BaselineCosts | None = None) -> None:
        self.costs = costs or DEFAULT_COSTS

    # Energy -----------------------------------------------------------------
    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        raise NotImplementedError

    def end_to_end_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        raise NotImplementedError

    # Latency ----------------------------------------------------------------
    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        """Time to process (prefill) or generate (decode) ``seq_len`` tokens.

        Decode mode re-streams the full weight set per generated token, so
        memory-bandwidth-bound designs degrade sharply — the regime where
        the paper reports its largest speedups over SPRINT.
        """
        raise NotImplementedError

    def _streaming_time_s(
        self,
        spec: ModelSpec,
        seq_len: int,
        mode: str,
        bandwidth_gbps: float,
        keep_ratio: float = 1.0,
    ) -> float:
        """Shared digital-processor timing: compute vs weight-streaming bound."""
        c = self.costs
        macs = self._linear_macs(spec, seq_len)
        macs += keep_ratio * self._attention_macs(spec, seq_len)
        compute_s = macs / (c.digital_processor_macs_per_cycle * c.clock_hz)
        # Decode re-streams the weight set per generated token; batching
        # ``decode_stream_batch`` concurrent sequences amortizes it.
        fetches = seq_len / c.decode_stream_batch if mode == "decode" else 1.0
        fetch_s = fetches * self._weight_bytes(spec) / (bandwidth_gbps * 1e9)
        return max(compute_s, fetch_s)

    # Helpers ------------------------------------------------------------------
    @staticmethod
    def _linear_macs(spec: ModelSpec, seq_len: int) -> float:
        per_layer = 4 * spec.d_model**2 + 2 * spec.d_model * spec.d_ff
        return float(seq_len) * per_layer * spec.num_layers

    @staticmethod
    def _attention_macs(spec: ModelSpec, seq_len: int) -> float:
        return 2.0 * seq_len * seq_len * spec.d_model * spec.num_layers

    @staticmethod
    def _weight_bytes(spec: ModelSpec) -> float:
        return float(spec.static_weight_bytes())
