"""Request/result types shared by the serving schedulers.

Kept in their own module so both :mod:`repro.serve.engine` (queueing,
stats) and :mod:`repro.serve.continuous` (iteration-level scheduling) can
use them without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["GenerationRequest", "RequestResult", "TokenCallback"]

#: Streaming callback signature: ``(request_id, token)`` per emitted token.
TokenCallback = Callable[[int, int], None]


@dataclass
class GenerationRequest:
    """One queued prompt awaiting generation.

    ``submitted_at`` comes from the engine's injectable clock (never
    ``time.time()`` directly), so scheduler tests are fully deterministic.
    ``on_token`` is an optional streaming callback: the continuous
    scheduler fires it the moment each token is emitted; the static
    scheduler fires it for every token once the request's batch completes
    (a static batch cannot stream mid-flight).

    SLO fields (both optional; the defaults reproduce the historical
    strict-FIFO behaviour exactly):

    ``priority``
        Admission class — higher admits first.  The engine keeps the queue
        ordered by descending priority, FIFO *within* a class, so a burst
        of low-priority batch work cannot starve interactive requests.
    ``deadline_at``
        Absolute clock value (same injectable clock) after which the
        request is over-SLO.  A queued request past its deadline expires
        unserved; a decoding one is *preempted* — it keeps the tokens
        emitted so far and frees its cache row for queued work.
    """

    request_id: int
    prompt: np.ndarray  # (L,) token ids
    max_new_tokens: int
    submitted_at: float
    on_token: TokenCallback | None = field(default=None, repr=False)
    priority: int = 0
    deadline_at: float | None = None

    @property
    def prompt_len(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt.shape[0])

    @property
    def token_need(self) -> int:
        """KV positions this request reserves (prompt + full budget)."""
        return self.prompt_len + self.max_new_tokens


@dataclass
class RequestResult:
    """A completed request: prompt + generated continuation + timing.

    Latency definitions (all measured on the engine's injectable clock).
    Queueing delay and service time are reported *split* so an overloaded
    engine's admission wait cannot masquerade as slow decoding:

    ``queued_s``
        Admission wait — submit until the request was admitted (batch
        start under static scheduling, cache-row checkout under
        continuous).  Pure scheduling delay; the model never touched this
        request during it.
    ``ttft_s``
        Time to first token as the *caller* experiences it — submit until
        the first generated token was available.  Includes ``queued_s``.
        Under continuous scheduling that is the moment the token was
        emitted; under static scheduling results only materialize when the
        whole batch finishes, so TTFT equals ``latency_s``.
    ``service_ttft_s``
        Time to first token as the *engine* spent it — admission until the
        first token (``ttft_s - queued_s``).  This is the prefill cost the
        hardware models care about, independent of queue depth.
    ``service_s``
        Admission until completion (``latency_s - queued_s``): the decode
        service time proper.
    ``tpot_s``
        Time per output token after the first — ``(completion - first
        token) / (n - 1)`` under continuous scheduling (0 for single-token
        results); batch wall-clock per emitted token under static
        scheduling.
    ``projected_latency_s``
        Hardware-projected end-to-end latency on the deployed mesh
        (``None`` unless the engine carries a
        :class:`~repro.dist.ShardPlan`): serial pipeline fill for the
        first position plus every remaining prompt/generated position at
        the plan's steady-state rate, interconnect costs (OCI partial-sum
        aggregation, PCIe-6.0 pipeline handoffs) included — see
        :meth:`repro.dist.HardwareProjection.request_latency_s`.

    ``preempted`` marks an over-deadline request the scheduler cut short:
    ``tokens`` holds whatever was emitted before the deadline passed
    (possibly none, for a request that expired in the queue).
    """

    request_id: int
    prompt: np.ndarray
    tokens: np.ndarray  # generated continuation only
    queued_s: float  # submit -> admission (batch start / row checkout)
    latency_s: float  # submit -> completion
    batch_size: int  # concurrently-decoding requests when this one finished
    ttft_s: float = 0.0
    tpot_s: float = 0.0
    projected_latency_s: float | None = None
    preempted: bool = False

    @property
    def service_s(self) -> float:
        """Admission-to-completion service time (excludes queueing delay)."""
        return self.latency_s - self.queued_s

    @property
    def service_ttft_s(self) -> float:
        """Admission-to-first-token time (``ttft_s`` minus admission wait)."""
        return self.ttft_s - self.queued_s

    @property
    def full_sequence(self) -> np.ndarray:
        """Prompt and generated tokens as one contiguous sequence."""
        return np.concatenate([self.prompt, self.tokens])
