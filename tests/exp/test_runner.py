"""Runner: parallel/serial equivalence and cached-sweep replay.

Covers the two acceptance properties of the subsystem: a 4-worker parallel
sweep reproduces the serial results bitwise, and a cached Fig. 12-style
sweep re-runs without recomputation.
"""

from __future__ import annotations

import json

import pytest

from repro.exp import ExperimentSpec, ResultCache, Runner
from repro.exp.registry import experiment

# A reduced-size Fig. 12 sweep: real workloads (mini encoder + hybrid
# SLC/MLC deployment) at the smallest sizes that still train.
FIG12_STYLE = ExperimentSpec(
    "fig12",
    params={"rates": (0.0, 0.5), "train_epochs": 1, "compile_epochs": 1, "num_layers": 1},
).sweep(workload=["sst2", "cola"])


def serialize(series) -> str:
    return json.dumps([r.value for r in series], sort_keys=True)


class TestParallelSerialEquivalence:
    def test_selfcheck_sweep_bitwise_equal(self, tmp_path):
        sweep = ExperimentSpec("selfcheck").sweep(n=[2, 3, 5, 8, 13, 21])
        serial = Runner(workers=0, cache=ResultCache(tmp_path / "a")).sweep(sweep)
        parallel = Runner(workers=4, cache=ResultCache(tmp_path / "b")).sweep(sweep)
        assert serialize(serial) == serialize(parallel)

    @pytest.mark.slow
    def test_fig12_style_sweep_bitwise_equal(self, tmp_path):
        serial = Runner(workers=0, cache=ResultCache(tmp_path / "a")).sweep(FIG12_STYLE)
        parallel = Runner(workers=4, cache=ResultCache(tmp_path / "b")).sweep(FIG12_STYLE)
        assert serialize(serial) == serialize(parallel)
        # sanity: the sweep really trained + deployed (scores are populated)
        for result in serial:
            assert len(result["scores"]) == 2
            assert 0.0 <= result["baseline"] <= 1.0

    def test_result_order_matches_point_order(self, tmp_path):
        sweep = ExperimentSpec("selfcheck").sweep(n=[9, 1, 4])
        series = Runner(workers=4, cache=ResultCache(tmp_path / "c")).sweep(sweep)
        assert [r.params["n"] for r in series] == [9, 1, 4]

    def test_mixed_cached_and_computed_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Runner(cache=cache).run(ExperimentSpec("selfcheck", params={"n": 3}))
        series = Runner(workers=2, cache=cache).sweep(
            ExperimentSpec("selfcheck").sweep(n=[2, 3, 4])
        )
        assert [r.cached for r in series] == [False, True, False]


class TestCachedSweepReplay:
    @pytest.mark.slow
    def test_fig12_style_cached_rerun_does_not_recompute(self, tmp_path, monkeypatch):
        # Pin the code-version fingerprint so swapping in the tripwire below
        # cannot change the cache key.
        monkeypatch.setattr("repro.exp.runner.code_version", lambda defn: "pinned")
        cache = ResultCache(tmp_path / "cache")
        first = Runner(workers=4, cache=cache).sweep(FIG12_STYLE)
        assert all(not r.cached for r in first)

        # Replace the experiment body with a tripwire: any recomputation on
        # the second pass would now blow up instead of silently re-running.
        from repro.exp import registry

        original = registry._REGISTRY["fig12"]

        @experiment("fig12")
        def tripwire(params, seed):
            raise AssertionError("cached sweep must not recompute")

        try:
            rerun_runner = Runner(workers=4, cache=cache)
            second = rerun_runner.sweep(FIG12_STYLE)
        finally:
            registry._REGISTRY["fig12"] = original

        assert all(r.cached for r in second)
        assert rerun_runner.stats.computed == 0
        assert serialize(first) == serialize(second)

    def test_selfcheck_cached_rerun_does_not_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = ExperimentSpec("selfcheck").sweep(n=[2, 4, 6])
        Runner(cache=cache).sweep(sweep)
        rerun = Runner(cache=cache)
        series = rerun.sweep(sweep)
        assert rerun.stats.computed == 0
        assert rerun.stats.hits == 3
        assert all(r.cached for r in series)


class TestEvalParamSeeding:
    def test_point_seed_ignores_excluded_params(self):
        a = ExperimentSpec("fig12", params={"workload": "sst2", "rates": (0.0, 1.0)})
        b = ExperimentSpec(
            "fig12", params={"workload": "sst2", "rates": (0.0, 0.5, 1.0)}
        )
        assert a.point_seed(exclude=("rates",)) == b.point_seed(exclude=("rates",))
        assert a.point_seed() != b.point_seed()  # full derivation still differs

    @pytest.mark.slow
    def test_changing_rates_does_not_retrain_the_model(self, tmp_path):
        # fig12 registers rates as an eval param: two runs that differ only
        # in the rate grid share the trained model, so scores at the rates
        # common to both grids are identical.
        base = {"train_epochs": 1, "compile_epochs": 1, "num_layers": 1,
                "workload": "sst2"}
        runner = Runner(cache=ResultCache(tmp_path / "cache"))
        short = runner.run(
            ExperimentSpec("fig12", params={**base, "rates": (0.0, 1.0)})
        )
        longer = runner.run(
            ExperimentSpec("fig12", params={**base, "rates": (0.0, 0.5, 1.0)})
        )
        short_scores = dict(zip(short["rates"], short["scores"]))
        longer_scores = dict(zip(longer["rates"], longer["scores"]))
        assert short["baseline"] == longer["baseline"]
        for rate in (0.0, 1.0):
            assert short_scores[rate] == longer_scores[rate]


class TestRunnerEdgeCases:
    def test_empty_sweep(self, tmp_path):
        series = Runner(cache=ResultCache(tmp_path / "cache")).sweep([])
        assert len(series) == 0

    def test_unknown_experiment_raises(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path / "cache"))
        with pytest.raises(KeyError, match="no-such-experiment"):
            runner.run(ExperimentSpec("no-such-experiment"))

    def test_single_point_sweep_stays_serial(self, tmp_path):
        runner = Runner(workers=8, cache=ResultCache(tmp_path / "cache"))
        series = runner.sweep(ExperimentSpec("selfcheck").sweep(n=[5]))
        assert len(series) == 1 and not series[0].cached
