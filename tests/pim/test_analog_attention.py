"""Analog attention + crossbar KV cache: module-level correctness.

Two equality contracts anchor the analog path:

- **exact**: a noiseless, saturation-free analog deployment is *bitwise*
  equal to :class:`~repro.pim.ReferenceQuantizedAttention` — the host
  numpy specification of the same INT8 quantized math — under every cache
  operation the continuous scheduler performs (ragged per-row prefill,
  batched decode over row views, swap-with-last compaction, truncation);
- **approximate**: it tracks the float host attention within the INT8
  quantization error.

Plus the bookkeeping the serving layer relies on: operand contents match
the per-token quantized codes, every append lands in the executor's
stats/wear/traffic accounting, and non-analog caches fall back to the
inherited host path bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DeviceMesh, place_attention_heads
from repro.nn.attention import AnalogAttention, MultiHeadAttention
from repro.nn.kv_cache import KVCache
from repro.nn.tensor import Tensor
from repro.pim import (
    CrossbarAttentionExecutor,
    CrossbarKVCache,
    ReferenceQuantizedAttention,
)
from repro.rram.backend import SimBackend

D_MODEL = 8
HEADS = 2
HEAD_DIM = D_MODEL // HEADS
LAYERS = 2
CAPACITY = 12


def _modules():
    """One shared host attention + analog/reference twins adopting its weights."""
    host = MultiHeadAttention(D_MODEL, HEADS, causal=True, rng=np.random.default_rng(0))
    analog = AnalogAttention.from_host(host, CrossbarAttentionExecutor(backend=SimBackend()))
    ref = ReferenceQuantizedAttention.from_host(host, CrossbarAttentionExecutor(backend=SimBackend()))
    return host, analog, ref


def _caches(batch: int, analog_exec):
    crossbar = analog_exec.make_cache(LAYERS, batch, HEADS, HEAD_DIM, CAPACITY)
    plain = KVCache(LAYERS, batch, HEADS, HEAD_DIM, CAPACITY)
    return crossbar, plain


def _x(rng, batch, seq):
    return Tensor(rng.normal(size=(batch, seq, D_MODEL)))


class TestExactVsReference:
    def test_prefill_and_decode_are_bitwise_equal(self):
        rng = np.random.default_rng(1)
        host, analog, ref = _modules()
        cb, plain = _caches(3, analog.executor)
        x = _x(rng, 3, 4)
        out_a = analog.forward(x, cache=cb.layer(0))
        out_r = ref.forward(x, cache=plain.layer(0))
        np.testing.assert_array_equal(out_a.data, out_r.data)
        cb.advance(4)
        plain.advance(4)
        for _ in range(3):
            step = _x(rng, 3, 1)
            out_a = analog.forward(step, cache=cb.layer(0))
            out_r = ref.forward(step, cache=plain.layer(0))
            np.testing.assert_array_equal(out_a.data, out_r.data)
            cb.advance(1)
            plain.advance(1)

    def test_ragged_rows_views_and_compaction(self):
        """The scheduler's row lifecycle: per-row prefill through 1-row
        views, ragged batched decode, swap-with-last retirement."""
        rng = np.random.default_rng(2)
        host, analog, ref = _modules()
        cb, plain = _caches(3, analog.executor)
        for row, length in enumerate((3, 5, 2)):
            x = _x(rng, 1, length)
            out_a = analog.forward(x, cache=cb.row_view(row).layer(1))
            out_r = ref.forward(x, cache=plain.row_view(row).layer(1))
            np.testing.assert_array_equal(out_a.data, out_r.data)
            cb.row_view(row).advance(length)
            plain.row_view(row).advance(length)
        for _ in range(2):  # ragged decode over the full batch
            step = _x(rng, 3, 1)
            out_a = analog.forward(step, cache=cb.layer(1))
            out_r = ref.forward(step, cache=plain.layer(1))
            np.testing.assert_array_equal(out_a.data, out_r.data)
            cb.advance(1)
            plain.advance(1)
        for cache in (cb, plain):  # retire row 0, compact row 2 into it
            cache.copy_row(2, 0)
            cache.clear_row(2)
        view_a, view_p = cb.rows_view(0, 2), plain.rows_view(0, 2)
        step = _x(rng, 2, 1)
        out_a = analog.forward(step, cache=view_a.layer(1))
        out_r = ref.forward(step, cache=view_p.layer(1))
        np.testing.assert_array_equal(out_a.data, out_r.data)

    def test_tracks_float_host_within_quantization_error(self):
        rng = np.random.default_rng(3)
        host, analog, _ = _modules()
        cb, plain = _caches(2, analog.executor)
        x = _x(rng, 2, 6)
        out_a = analog.forward(x, cache=cb.layer(0))
        out_h = host.forward(x, cache=plain.layer(0))
        err = np.abs(out_a.data - out_h.data).max()
        scale = np.abs(out_h.data).max()
        assert err / scale < 0.05


class TestCacheContract:
    def test_operand_contents_are_the_quantized_host_rows(self):
        """Identity-input GEMVs read back exactly the per-token codes."""
        rng = np.random.default_rng(4)
        ex = CrossbarAttentionExecutor(backend=SimBackend())
        cache = ex.make_cache(1, 1, HEADS, HEAD_DIM, CAPACITY)
        k = rng.normal(size=(1, HEADS, 5, HEAD_DIM))
        v = rng.normal(size=(1, HEADS, 5, HEAD_DIM))
        cache.append(0, k, v)
        cache.advance(5)
        slot = cache.layer(0)
        for h in range(HEADS):
            k_codes, k_scales = ex.quantize_rows(k[0, h])
            eye_w = np.eye(HEAD_DIM, dtype=np.int64)
            got_k = np.asarray(slot.k_op(0, h).gemv(eye_w), dtype=np.int64)
            np.testing.assert_array_equal(got_k.T, k_codes)
            np.testing.assert_allclose(slot.k_scales(0, h)[:5], k_scales)
            v_codes, v_scales = ex.quantize_rows(v[0, h])
            eye_t = np.eye(5, dtype=np.int64)
            got_v = np.asarray(slot.v_op(0, h).gemv(eye_t), dtype=np.int64)
            np.testing.assert_array_equal(got_v, v_codes)
            np.testing.assert_allclose(slot.v_scales(0, h)[:5], v_scales)

    def test_rows_view_shares_operands_with_parent(self):
        ex = CrossbarAttentionExecutor(backend=SimBackend())
        cache = ex.make_cache(LAYERS, 3, HEADS, HEAD_DIM, CAPACITY)
        view = cache.rows_view(1, 3)
        assert view.layer(0).k_op(0, 0) is cache.layer(0).k_op(1, 0)
        assert view.layer(1).v_op(1, 1) is cache.layer(1).v_op(2, 1)

    def test_set_lengths_reset_and_recycling(self):
        rng = np.random.default_rng(5)
        ex = CrossbarAttentionExecutor(backend=SimBackend())
        cache = ex.make_cache(1, 1, HEADS, HEAD_DIM, CAPACITY)
        kv = rng.normal(size=(1, HEADS, 6, HEAD_DIM))
        cache.append(0, kv, kv)
        cache.advance(6)
        cache.set_lengths(np.array([4]))
        assert cache.layer(0).k_op(0, 0).length == 4
        cache.reset()
        assert cache.layer(0).v_op(0, 0).length == 0
        before = ex.stats.cells_reprogrammed
        cache.append(0, kv[:, :, :2], kv[:, :, :2])
        assert ex.stats.cells_reprogrammed > before

    def test_set_lengths_cannot_extend_past_written_tokens(self):
        ex = CrossbarAttentionExecutor(backend=SimBackend())
        cache = ex.make_cache(1, 1, HEADS, HEAD_DIM, CAPACITY)
        with pytest.raises(ValueError):
            cache.set_lengths(np.array([3]))

    def test_requires_executor(self):
        with pytest.raises(ValueError, match="executor"):
            CrossbarKVCache(1, 1, HEADS, HEAD_DIM, CAPACITY)


class TestExecutorAccounting:
    def test_kv_writes_hit_stats_wear_and_mesh_traffic(self):
        rng = np.random.default_rng(6)
        mesh = DeviceMesh(num_chips=2)
        placement = place_attention_heads(mesh, num_layers=LAYERS, num_heads=HEADS)
        ex = CrossbarAttentionExecutor(
            backend=SimBackend(), mesh=mesh, placement=placement
        )
        cache = ex.make_cache(LAYERS, 2, HEADS, HEAD_DIM, CAPACITY)
        kv = rng.normal(size=(2, HEADS, 3, HEAD_DIM))
        for layer in range(LAYERS):
            cache.append(layer, kv, kv)
        cache.advance(3)
        assert ex.kv_tokens_written == 2 * 3  # layer-0 appends only
        assert ex.stats.cells_initial_programmed > 0
        report = ex.wear_report()
        assert report["operands"] == LAYERS * 2 * HEADS * 2
        assert report["dynamic_writes"] == LAYERS * 2 * HEADS * 2
        assert report["max_wear_fraction"] > 0.0
        # 2-chip mesh + anchored round-robin: half the heads are remote.
        oci = mesh.traffic["oci"].num_bytes
        pcie = mesh.traffic["pcie6"].num_bytes
        assert oci > 0 and pcie > 0 and oci == pcie

    def test_fallback_to_host_path_without_analog_cache(self):
        rng = np.random.default_rng(7)
        host, analog, _ = _modules()
        plain_a = KVCache(LAYERS, 2, HEADS, HEAD_DIM, CAPACITY)
        plain_h = KVCache(LAYERS, 2, HEADS, HEAD_DIM, CAPACITY)
        x = _x(rng, 2, 4)
        out_a = analog.forward(x, cache=plain_a.layer(0))
        out_h = host.forward(x, cache=plain_h.layer(0))
        np.testing.assert_array_equal(out_a.data, out_h.data)
