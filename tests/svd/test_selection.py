"""Tests for SLC-protection selection policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svd import (
    protected_count,
    select_elements_by_magnitude,
    select_ranks_by_gradient,
    select_ranks_by_rank,
)


class TestProtectedCount:
    def test_extremes(self):
        assert protected_count(100, 0.0) == 0
        assert protected_count(100, 1.0) == 100

    def test_rounding(self):
        assert protected_count(100, 0.05) == 5
        assert protected_count(10, 0.05) == 1  # at least one when nonzero

    def test_validation(self):
        with pytest.raises(ValueError):
            protected_count(10, 1.5)

    @given(st.integers(1, 1000), st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_bounds_property(self, total, fraction):
        n = protected_count(total, fraction)
        assert 0 <= n <= total
        if fraction == 0.0:
            assert n == 0


class TestGradientSelection:
    def test_selects_largest_gradients(self):
        grads = np.array([0.1, 5.0, 0.2, 3.0, 0.05])
        mask = select_ranks_by_gradient(grads, 0.4)
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_zero_rate_selects_nothing(self):
        assert not select_ranks_by_gradient(np.ones(10), 0.0).any()

    def test_full_rate_selects_all(self):
        assert select_ranks_by_gradient(np.ones(10), 1.0).all()

    def test_count_matches_rate(self):
        mask = select_ranks_by_gradient(np.arange(100, dtype=float), 0.3)
        assert mask.sum() == 30


class TestRankSelection:
    def test_selects_largest_sigma(self):
        sigma = np.array([5.0, 4.0, 0.1, 0.2])
        mask = select_ranks_by_rank(sigma, 0.5)
        np.testing.assert_array_equal(mask, [True, True, False, False])

    def test_differs_from_gradient_when_gradients_disagree(self):
        sigma = np.array([5.0, 4.0, 3.0, 2.0])
        grads = np.array([0.0, 0.0, 1.0, 1.0])
        rank_mask = select_ranks_by_rank(sigma, 0.5)
        grad_mask = select_ranks_by_gradient(grads, 0.5)
        assert not np.array_equal(rank_mask, grad_mask)


class TestMagnitudeSelection:
    def test_l1_selects_largest_abs(self):
        w = np.array([[1.0, -10.0], [0.1, 2.0]])
        mask = select_elements_by_magnitude(w, 0.25, norm="l1")
        assert mask[0, 1] and mask.sum() == 1

    def test_l1_l2_agree_elementwise(self, rng):
        w = rng.normal(size=(6, 6))
        np.testing.assert_array_equal(
            select_elements_by_magnitude(w, 0.3, "l1"),
            select_elements_by_magnitude(w, 0.3, "l2"),
        )

    def test_mask_shape_matches_weight(self, rng):
        w = rng.normal(size=(4, 7))
        assert select_elements_by_magnitude(w, 0.1).shape == (4, 7)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            select_elements_by_magnitude(np.ones((2, 2)), 0.5, norm="linf")

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_protected_weights_dominate_unprotected_property(self, fraction):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 8))
        mask = select_elements_by_magnitude(w, fraction)
        if 0 < mask.sum() < w.size:
            assert np.abs(w[mask]).min() >= np.abs(w[~mask]).max() - 1e-12
