"""Table 1: fine-tuning hyper-parameters per benchmark model."""

from __future__ import annotations

from repro.models import PAPER_MODELS, TABLE1_HYPERPARAMS


def test_table1_hyperparams(benchmark, print_header):
    def build():
        return {name: TABLE1_HYPERPARAMS[name] for name in PAPER_MODELS}

    rows = benchmark(build)
    print_header("Table 1 — fine-tuning hyper-parameters (paper values)")
    print(f"{'model':>12} {'batch':>6} {'lr':>8} {'optimizer':>10} {'epochs':>7}")
    for name, params in rows.items():
        print(
            f"{name:>12} {params.batch_size:>6} {params.learning_rate:>8.0e} "
            f"{params.optimizer:>10} {params.epochs:>7}"
        )
