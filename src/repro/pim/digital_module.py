"""Digital RRAM PIM module (Fig. 5(d)): attention operands + SFU.

Digital PIM computes *exactly* (bit-wise NOR logic has full noise margin),
so the functional result of ``Q·Kᵀ`` and ``S·V`` equals integer matrix
multiplication.  What the module adds over plain arithmetic is the paper's
cost model and capacity accounting:

- 256 arrays of 1024x1024 SLC bitcells (128 KB each, 32 MB per module);
- one INT8xINT8 multiply costs 64 NOR operations, each NOR occupying
  3 columns and each row pass taking 5 cycles (4 writes + 1 read);
- real-time operands (Q, K, V, scores) are *written* before computing, so
  the module tracks write traffic for the endurance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pim.nor_logic import COLUMNS_PER_NOR, CYCLES_PER_ROW, NOR_OPS_PER_INT8_MULT
from repro.pim.sfu import SfuConfig, SpecialFunctionUnit

__all__ = ["DigitalModuleConfig", "DigitalPimStats", "DigitalPimModule"]


@dataclass(frozen=True)
class DigitalModuleConfig:
    """Geometry of one digital PIM module (Table 2)."""

    num_arrays: int = 256
    array_rows: int = 1024
    array_cols: int = 1024
    cell_bits: int = 1  # digital modules use SLC only (Section 3.3)

    @property
    def array_bytes(self) -> int:
        return self.array_rows * self.array_cols * self.cell_bits // 8

    @property
    def capacity_bytes(self) -> int:
        return self.num_arrays * self.array_bytes

    @property
    def throughput_ops_per_cycle(self) -> float:
        """The paper's balance: 256·1024 / (64·3) / 5 ≈ 273 ops/cycle."""
        return (
            self.num_arrays
            * self.array_cols
            / (NOR_OPS_PER_INT8_MULT * COLUMNS_PER_NOR)
            / CYCLES_PER_ROW
        )


@dataclass
class DigitalPimStats:
    """Work and storage accounting for one digital module."""

    nor_ops: int = 0
    int8_macs: int = 0
    bytes_written: int = 0
    compute_cycles: int = 0
    sfu_cycles: int = 0


class DigitalPimModule:
    """Functional digital PIM: exact integer attention math plus cost model."""

    def __init__(
        self,
        config: DigitalModuleConfig | None = None,
        sfu_config: SfuConfig | None = None,
    ) -> None:
        self.config = config or DigitalModuleConfig()
        self.sfu = SpecialFunctionUnit(sfu_config)
        self.stats = DigitalPimStats()
        self._stored_bytes = 0

    # -- storage ------------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes

    @property
    def free_bytes(self) -> int:
        return self.config.capacity_bytes - self._stored_bytes

    def write(self, num_bytes: int) -> None:
        """Store real-time operands (Q/K/V, scores, intermediates)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self.free_bytes:
            raise MemoryError(
                f"digital module overflow: need {num_bytes} B, free {self.free_bytes} B"
            )
        self._stored_bytes += num_bytes
        self.stats.bytes_written += num_bytes

    def release(self, num_bytes: int) -> None:
        """Free operand storage after a stage completes."""
        if num_bytes > self._stored_bytes:
            raise ValueError("releasing more bytes than stored")
        self._stored_bytes -= num_bytes

    # -- compute --------------------------------------------------------------
    def matmul_int(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact integer matmul ``a @ b`` with NOR-level cost accounting.

        ``a`` is (m, k), ``b`` is (k, n); both INT8-range integers.  The
        operands are written into the arrays first (real-time data), then
        multiplied with NOR-synthesized arithmetic.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible matmul shapes {a.shape} x {b.shape}")
        for name, operand in (("a", a), ("b", b)):
            if operand.min(initial=0) < -128 or operand.max(initial=0) > 127:
                raise ValueError(f"operand {name} exceeds INT8 range")
        macs = a.shape[0] * a.shape[1] * b.shape[1]
        self.stats.int8_macs += macs
        self.stats.nor_ops += macs * NOR_OPS_PER_INT8_MULT
        self.stats.compute_cycles += int(
            np.ceil(macs / self.config.throughput_ops_per_cycle)
        )
        self.write(a.size + b.size)  # INT8 operands: one byte per element
        return a @ b

    def attention_scores(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        """``Q @ Kᵀ`` (the paper's first dynamic product, INT8 x INT8)."""
        return self.matmul_int(q, np.asarray(k).T)

    def attention_context(self, probs_int: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``S @ V`` with the score operand already integer-quantized."""
        return self.matmul_int(probs_int, v)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Softmax on the in-module SFU (FP16 pipeline)."""
        before = self.sfu.stats.cycles
        out = self.sfu.softmax(x, axis=axis)
        self.stats.sfu_cycles += self.sfu.stats.cycles - before
        return out

    def layernorm(self, x: np.ndarray, weight=None, bias=None, eps: float = 1e-5) -> np.ndarray:
        before = self.sfu.stats.cycles
        out = self.sfu.layernorm(x, weight=weight, bias=bias, eps=eps)
        self.stats.sfu_cycles += self.sfu.stats.cycles - before
        return out

    def gelu(self, x: np.ndarray) -> np.ndarray:
        before = self.sfu.stats.cycles
        out = self.sfu.gelu(x)
        self.stats.sfu_cycles += self.sfu.stats.cycles - before
        return out
