"""Serving benchmark: decode paths and scheduling policies.

Times ``DecoderLM.generate`` under the KV-cached and naive O(L²) paths
across a batch grid (cross-checking token-for-token greedy equality at
every point), measures end-to-end ``ServingEngine`` throughput over a
ragged request stream, and replays a mixed-length trace under static vs
continuous (iteration-level) scheduling.  The payload is written to
``BENCH_serve.json`` at the repo root — the decode-path perf-trajectory
file CI uploads as an artifact and gates on: cached decode must never be
slower than the naive recompute on the large point, and continuous
scheduling must achieve >= 1.3x the static engine's tokens/s with
strictly lower mean TTFT on the mixed trace.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def test_bench_serve(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = (
        {
            "batches": (8,),
            "reps": 1,
            "engine_requests": 8,
            "trace_requests": 16,
            "trace_max_batch": 4,
        }
        if smoke
        else {}
    )
    spec = ExperimentSpec("bench_serve", params=params)

    result = benchmark.pedantic(
        lambda: fresh_runner.run(spec), rounds=1, iterations=1
    )
    value = result.value

    print_header("Serving benchmark — naive O(L²) recompute vs KV-cached decode (tokens/s)")
    print(f"{'batch':>5} {'prompt':>6} {'new':>4} {'naive':>10} {'cached':>10} {'speedup':>8}")
    for row in value["grid"]:
        print(
            f"{row['batch']:>5} {row['prompt_len']:>6} {row['new_tokens']:>4} "
            f"{row['naive_tok_s']:>10.0f} {row['cached_tok_s']:>10.0f} "
            f"{row['speedup']:>7.1f}x"
        )
    engine = value["engine"]
    print(
        f"\nengine ({engine['scheduler']} scheduling, max_batch={engine['max_batch_size']}): "
        f"{engine['tokens_per_s']:.0f} tok/s over {engine['requests_completed']} requests, "
        f"mean batch {engine['mean_batch_size']:.1f}, "
        f"p95 latency {engine['p95_latency_s'] * 1e3:.1f}ms"
    )

    trace = value["trace"]
    print(
        f"\nmixed-length trace ({trace['num_requests']} requests, every "
        f"{trace['long_every']}th long, max_batch={trace['max_batch_size']}):"
    )
    print(f"{'scheduler':>11} {'tok/s':>8} {'mean TTFT':>10} {'p95 TTFT':>10} {'mean TPOT':>10}")
    for key in ("static", "continuous"):
        row = trace[key]
        print(
            f"{row['scheduler']:>11} {row['tok_s']:>8.0f} "
            f"{row['mean_ttft_s'] * 1e3:>9.1f}ms {row['p95_ttft_s'] * 1e3:>9.1f}ms "
            f"{row['mean_tpot_s'] * 1e3:>9.2f}ms"
        )
    print(f"continuous vs static: {trace['speedup']}x tokens/s, TTFT ratio {trace['ttft_ratio']}")

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_serve.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Perf-trajectory gates (ISSUE 3/4 acceptance criteria): cached decode
    # must never lose to naive recompute (>= 5x on the large point), and
    # continuous scheduling must beat the static engine by >= 1.3x tokens/s
    # with strictly lower mean TTFT on the mixed-length trace.
    large = value["large"]
    assert large["cached_tok_s"] >= large["naive_tok_s"], large
    assert large["speedup"] >= 5.0, large
    assert trace["speedup"] >= 1.3, trace
    assert trace["continuous"]["mean_ttft_s"] < trace["static"]["mean_ttft_s"], trace
