"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate of the reproduction.  The paper's
gradient-redistribution technique (Section 4.2) requires gradients of the task
loss with respect to the *singular values* of decomposed weight matrices, so
the whole fine-tuning stack is built on this small, explicit autograd engine.

Design notes
------------
- A :class:`Tensor` wraps a ``numpy.ndarray`` and optionally records the
  backward closure and parent tensors needed for reverse-mode AD.
- Gradients are plain ``numpy.ndarray`` objects accumulated into ``.grad``.
- All operations support numpy broadcasting; :func:`_unbroadcast` folds
  gradients back onto the operand shapes.
- There is no implicit global state: random operations (e.g. dropout) take an
  explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import special as _special

__all__ = [
    "Tensor",
    "Parameter",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "concatenate",
    "stack",
    "where",
]

#: dtypes the autograd engine supports as its default compute precision.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype new tensors (and accumulated gradients) are created with."""
    return _default_dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide tensor dtype; returns the previous one.

    float64 (the historical default) is the reproduction's accuracy ground
    truth; float32 halves training-memory traffic and is what the perf-tuned
    fine-tuning loops use (``svd.finetune(compute_dtype="float32")``) — the
    convergence tolerance between the two is unit-tested.
    """
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved.name}"
        )
    global _default_dtype
    previous = _default_dtype
    _default_dtype = resolved
    return previous


class default_dtype:
    """Context manager scoping a default-dtype override.

    ``default_dtype(None)`` is a no-op scope, so callers with an optional
    dtype parameter can always write ``with default_dtype(maybe_dtype):``.

    >>> with default_dtype(np.float32):
    ...     Tensor([1.0]).dtype
    dtype('float32')
    """

    def __init__(self, dtype) -> None:
        self._dtype = dtype

    def __enter__(self) -> np.dtype:
        self._previous = None if self._dtype is None else set_default_dtype(self._dtype)
        return get_default_dtype()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_default_dtype(self._previous)


class _GradMode:
    """Process-wide switch used by :func:`no_grad` (explicit, not magical)."""

    enabled = True


class no_grad:
    """Context manager disabling graph construction, mirroring torch.no_grad.

    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were added or broadcast to reach ``shape``.

    numpy broadcasting aligns trailing dimensions; the gradient of a broadcast
    operand is the sum over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Remove leading axes that were introduced by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes where the original dimension was 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array-like or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_default_dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            # Accumulate in the tensor's own dtype: without the cast, a
            # float64 contribution would silently promote a float32 grad.
            self.grad = self.grad + np.asarray(grad, dtype=self.grad.dtype)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode AD from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (and must be omitted only for
            scalar outputs in typical loss usage).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(
                        _unbroadcast(np.expand_dims(grad, -1) * other.data, self.shape)
                    )
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                    )
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(
                        _unbroadcast(np.outer(self.data, grad).reshape(other.shape), other.shape)
                        if other.data.ndim == 2
                        else _unbroadcast(self.data * grad, other.shape)
                    )
                else:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                    )

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = _special.expit(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def erf(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (2.0 / np.sqrt(np.pi)) * np.exp(-self.data**2))

        return Tensor._make(_special.erf(self.data), (self,), backward)

    def gelu(self) -> "Tensor":
        """Exact GELU, x * Phi(x), matching the paper's Transformer FFNs."""
        x = self.data
        phi = 0.5 * (1.0 + _special.erf(x / np.sqrt(2.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                pdf = np.exp(-0.5 * x**2) / np.sqrt(2.0 * np.pi)
                self._accumulate(grad * (phi + x * pdf))

        return Tensor._make(x * phi, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / count

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            full = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                full = np.expand_dims(out_data, axis=axis)
            mask = self.data == full
            # Split the gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse: Sequence[int] | None = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Composite neural-network functions
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(np.where(mask, 0.0, grad), self.shape))

        return Tensor._make(out_data, (self,), backward)

    def dropout(self, p: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Inverted dropout with explicit randomness source."""
        if not training or p <= 0.0:
            return self
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        keep = (rng.random(self.shape) >= p) / (1.0 - p)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * keep)

        return Tensor._make(self.data * keep, (self,), backward)

    def embedding_lookup(self, indices: np.ndarray) -> "Tensor":
        """Row gather used by embedding tables; indices are not differentiated."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    __slots__ = ()

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters stay trainable even when constructed under no_grad.
        self.requires_grad = True


# ----------------------------------------------------------------------
# Free functions over multiple tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, if_true: Tensor, if_false: Tensor) -> Tensor:
    """Differentiable elementwise select; ``condition`` is a constant mask."""
    condition = np.asarray(condition, dtype=bool)
    if_true = as_tensor(if_true)
    if_false = as_tensor(if_false)
    out_data = np.where(condition, if_true.data, if_false.data)

    def backward(grad: np.ndarray) -> None:
        if if_true.requires_grad:
            if_true._accumulate(_unbroadcast(np.where(condition, grad, 0.0), if_true.shape))
        if if_false.requires_grad:
            if_false._accumulate(_unbroadcast(np.where(condition, 0.0, grad), if_false.shape))

    return Tensor._make(out_data, (if_true, if_false), backward)
