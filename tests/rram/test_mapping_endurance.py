"""Tests for array mapping, hybrid rank splitting and endurance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram import (
    CrossbarConfig,
    EnduranceModel,
    MLC2,
    MappedMatrix,
    SLC,
    array_footprint,
    split_by_rank,
)


class TestArrayFootprint:
    def test_small_matrix_single_array(self):
        # 16 outputs x 8 slices = 128 columns exactly, 64 rows: one array.
        assert array_footprint(16, 64, SLC) == 1

    def test_mlc_halves_column_footprint(self):
        slc = array_footprint(128, 64, SLC)  # 128*8 = 1024 cols -> 8 arrays
        mlc = array_footprint(128, 64, MLC2)  # 128*4 = 512 cols -> 4 arrays
        assert slc == 8
        assert mlc == 4

    def test_row_tiling(self):
        assert array_footprint(16, 65, SLC) == 2
        assert array_footprint(16, 128, SLC) == 2

    def test_bert_base_layer_footprint(self):
        """W_Q of BERT-Base (768x768) on SLC: 12 row tiles x 48 col tiles."""
        assert array_footprint(768, 768, SLC) == 12 * 48

    def test_custom_geometry(self):
        cfg = CrossbarConfig(rows=32, cols=32)
        assert array_footprint(4, 32, SLC, config=cfg) == 1
        assert array_footprint(8, 32, SLC, config=cfg) == 2


class TestMappedMatrix:
    def test_gemv_close_to_ideal_with_calibrated_noise(self, rng):
        w = rng.integers(-128, 128, size=(8, 32))
        mapped = MappedMatrix(weight_codes=w, cell=SLC)
        x = rng.integers(-128, 128, size=(4, 32))
        noisy = mapped.gemv(x)
        ideal = mapped.ideal_gemv(x)
        rel = np.abs(noisy - ideal).mean() / (np.abs(ideal).mean() + 1e-9)
        assert rel < 0.1

    def test_stats_accumulate_across_calls(self, rng):
        w = rng.integers(-128, 128, size=(4, 16))
        mapped = MappedMatrix(weight_codes=w, cell=MLC2)
        x = rng.integers(-128, 128, size=(2, 16))
        mapped.gemv(x)
        first = mapped.stats.adc_conversions
        mapped.gemv(x)
        assert mapped.stats.adc_conversions == 2 * first

    def test_written_once(self, rng):
        mapped = MappedMatrix(weight_codes=rng.integers(-128, 128, size=(4, 8)), cell=SLC)
        assert mapped.write_count == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            MappedMatrix(weight_codes=np.zeros(4, dtype=int), cell=SLC)


class TestHybridSplit:
    @pytest.fixture
    def factors(self, rng):
        a = rng.integers(-128, 128, size=(10, 24))  # rank x in
        b = rng.integers(-128, 128, size=(16, 10))  # out x rank
        return a, b

    def test_partition_shapes(self, factors):
        a, b = factors
        protected = np.zeros(10, dtype=bool)
        protected[:3] = True
        split = split_by_rank(a, b, protected)
        assert split.slc_a.weight_codes.shape == (3, 24)
        assert split.mlc_a.weight_codes.shape == (7, 24)
        assert split.slc_b.weight_codes.shape == (16, 3)
        assert split.mlc_b.weight_codes.shape == (16, 7)
        assert split.slc_a.cell is SLC
        assert split.mlc_a.cell is MLC2

    def test_all_protected_has_no_mlc(self, factors):
        a, b = factors
        split = split_by_rank(a, b, np.ones(10, dtype=bool))
        assert split.mlc_a is None and split.mlc_b is None
        assert split.slc_a is not None

    def test_none_protected_has_no_slc(self, factors):
        a, b = factors
        split = split_by_rank(a, b, np.zeros(10, dtype=bool))
        assert split.slc_a is None and split.slc_b is None

    def test_partial_gemvs_recombine_exactly_noiseless(self, factors, rng):
        """The rank split is algebraically lossless: partial GEMVs from the
        SLC and MLC halves must sum to the full GEMV (noise-free check)."""
        from repro.rram import NoiseSpec

        zero_noise = NoiseSpec.noiseless()
        a, b = factors
        protected = rng.random(10) < 0.4
        split = split_by_rank(a, b, protected, noise=zero_noise)
        x = rng.integers(-128, 128, size=(3, 24))
        h_slc = split.slc_a.gemv(x)
        h_mlc = split.mlc_a.gemv(x)
        # Recombine second-stage partials (inputs to B are rank activations;
        # use small codes to stay within INT8 for the test).
        h_full = np.zeros((3, 10), dtype=np.int64)
        h_full[:, protected] = h_slc
        h_full[:, ~protected] = h_mlc
        np.testing.assert_array_equal(h_full, x @ a.T)

    def test_rank_mismatch_raises(self, factors):
        a, b = factors
        with pytest.raises(ValueError):
            split_by_rank(a, b, np.zeros(5, dtype=bool))

    def test_arrays_used_positive(self, factors):
        a, b = factors
        split = split_by_rank(a, b, np.array([True] * 5 + [False] * 5))
        assert split.arrays_used > 0

    def test_mlc_split_uses_fewer_arrays_than_slc_only(self, rng):
        a = rng.integers(-128, 128, size=(64, 128))
        b = rng.integers(-128, 128, size=(128, 64))
        mostly_mlc = split_by_rank(a, b, np.zeros(64, dtype=bool))
        all_slc = split_by_rank(a, b, np.ones(64, dtype=bool))
        assert mostly_mlc.arrays_used < all_slc.arrays_used

    def test_merged_stats(self, factors, rng):
        a, b = factors
        split = split_by_rank(a, b, np.array([True] * 3 + [False] * 7))
        x = rng.integers(-128, 128, size=(2, 24))
        split.slc_a.gemv(x)
        split.mlc_a.gemv(x)
        merged = split.merged_stats()
        assert merged.adc_conversions > 0


class TestEndurance:
    def test_static_weights_live_forever(self):
        model = EnduranceModel(capacity_bytes=10**9)
        report = model.report(bytes_written_per_inference=0, inferences_per_day=10_000)
        assert report.lifetime_years == float("inf")
        assert report.sustains_server_lifetime

    def test_paper_scenario_sustains_server_lifetime(self):
        """~10K daily requests with per-inference intermediate writes far
        smaller than the digital capacity outlive 5 years (Section 5.2)."""
        # Digital PIM capacity: 8 modules x 256 arrays x 128 KB = 256 MB.
        capacity = 8 * 256 * 128 * 1024
        model = EnduranceModel(capacity_bytes=capacity)
        # Generous estimate: 10 MB of intermediates written per inference.
        report = model.report(bytes_written_per_inference=10e6, inferences_per_day=10_000)
        assert report.sustains_server_lifetime
        assert report.lifetime_years > 100

    def test_heavy_write_load_wears_out(self):
        model = EnduranceModel(capacity_bytes=1024)
        report = model.report(bytes_written_per_inference=1e9, inferences_per_day=100_000)
        assert not report.sustains_server_lifetime

    def test_lifetime_scales_inverse_with_load(self):
        model = EnduranceModel(capacity_bytes=10**6)
        light = model.report(1e3, 1e3).lifetime_years
        heavy = model.report(1e3, 2e3).lifetime_years
        assert light == pytest.approx(2 * heavy)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnduranceModel(capacity_bytes=0)
        model = EnduranceModel(capacity_bytes=10)
        with pytest.raises(ValueError):
            model.report(-1, 1)
