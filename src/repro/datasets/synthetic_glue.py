"""Synthetic stand-ins for the seven GLUE tasks used in the paper (Fig. 12).

The paper evaluates BERT on cola, mrpc, qnli, qqp, rte, sst-2 and sts-b.
Those corpora are unavailable offline, so each task is replaced by a seeded
procedural generator that preserves the *shape* of the task:

===========  =====================================  =====================
task         structure                              metric (paper's)
===========  =====================================  =====================
cola         grammar-valid vs corrupted sequences   Matthews correlation
mrpc         sentence-pair paraphrase detection     accuracy
qnli         question/answer containment            accuracy
qqp          near-duplicate pair detection          accuracy
rte          small-sample entailment                accuracy
sst2         token-sentiment majority               accuracy
stsb         graded pair similarity (regression)    Pearson correlation
===========  =====================================  =====================

All generators emit integer token sequences with the conventions
``CLS = 0`` at position 0 and ``SEP = 1`` between pair segments, matching the
input format of :class:`repro.nn.EncoderClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import ArrayDataset

__all__ = ["GlueTaskSpec", "GLUE_TASKS", "make_glue_task", "GlueTaskData"]

CLS_TOKEN = 0
SEP_TOKEN = 1
_FIRST_CONTENT_TOKEN = 2


@dataclass(frozen=True)
class GlueTaskSpec:
    """Descriptor of a synthetic GLUE-like task."""

    name: str
    kind: str  # "single", "pair" or "regression"
    num_classes: int
    vocab_size: int
    seq_len: int
    train_size: int
    test_size: int
    metric: str  # "accuracy", "matthews" or "pearson"


GLUE_TASKS: dict[str, GlueTaskSpec] = {
    "cola": GlueTaskSpec("cola", "single", 2, 40, 20, 480, 160, "matthews"),
    "mrpc": GlueTaskSpec("mrpc", "pair", 2, 40, 22, 480, 160, "accuracy"),
    "qnli": GlueTaskSpec("qnli", "pair", 2, 48, 22, 480, 160, "accuracy"),
    "qqp": GlueTaskSpec("qqp", "pair", 2, 48, 22, 560, 160, "accuracy"),
    "rte": GlueTaskSpec("rte", "pair", 2, 40, 22, 320, 120, "accuracy"),
    "sst2": GlueTaskSpec("sst2", "single", 2, 40, 20, 480, 160, "accuracy"),
    "stsb": GlueTaskSpec("stsb", "regression", 1, 40, 22, 480, 160, "pearson"),
}


@dataclass
class GlueTaskData:
    """Train/test split plus the task spec."""

    spec: GlueTaskSpec
    train: ArrayDataset
    test: ArrayDataset


def _content_rng_tokens(rng: np.random.Generator, n: int, vocab: int) -> np.ndarray:
    return rng.integers(_FIRST_CONTENT_TOKEN, vocab, size=n)


def _make_cola(spec: GlueTaskSpec, rng: np.random.Generator, n: int):
    """Valid = strictly 'grammatical' alternating parity run; invalid = broken."""
    body = spec.seq_len - 1
    inputs = np.zeros((n, spec.seq_len), dtype=np.int64)
    labels = np.zeros(n, dtype=np.int64)
    half_vocab = (spec.vocab_size - _FIRST_CONTENT_TOKEN) // 2
    for i in range(n):
        valid = rng.random() < 0.5
        labels[i] = int(valid)
        # "Grammar": even positions draw from the low half of the vocab,
        # odd positions from the high half.  Corruption flips several slots.
        tokens = np.empty(body, dtype=np.int64)
        for pos in range(body):
            low = pos % 2 == 0
            base = _FIRST_CONTENT_TOKEN if low else _FIRST_CONTENT_TOKEN + half_vocab
            tokens[pos] = base + rng.integers(0, half_vocab)
        if not valid:
            flips = rng.choice(body, size=max(2, body // 4), replace=False)
            for pos in flips:
                low = pos % 2 == 0
                base = _FIRST_CONTENT_TOKEN + (half_vocab if low else 0)
                tokens[pos] = base + rng.integers(0, half_vocab)
        inputs[i, 0] = CLS_TOKEN
        inputs[i, 1:] = tokens
    return inputs, labels


def _make_pair_task(
    spec: GlueTaskSpec,
    rng: np.random.Generator,
    n: int,
    positive_noise: float,
):
    """Pair tasks: label 1 iff segment B is a (noisy) permutation of segment A."""
    seg = (spec.seq_len - 2) // 2
    inputs = np.zeros((n, spec.seq_len), dtype=np.int64)
    labels = np.zeros(n, dtype=np.int64)
    for i in range(n):
        first = _content_rng_tokens(rng, seg, spec.vocab_size)
        positive = rng.random() < 0.5
        labels[i] = int(positive)
        if positive:
            second = rng.permutation(first).copy()
            n_noise = int(round(positive_noise * seg))
            if n_noise:
                idx = rng.choice(seg, size=n_noise, replace=False)
                second[idx] = _content_rng_tokens(rng, n_noise, spec.vocab_size)
        else:
            second = _content_rng_tokens(rng, seg, spec.vocab_size)
        row = np.concatenate([[CLS_TOKEN], first, [SEP_TOKEN], second])
        inputs[i, : len(row)] = row
    return inputs, labels


def _make_qnli(spec: GlueTaskSpec, rng: np.random.Generator, n: int):
    """Entailment: label 1 iff the 'question' token appears in the 'answer'."""
    seg = (spec.seq_len - 2) // 2
    inputs = np.zeros((n, spec.seq_len), dtype=np.int64)
    labels = np.zeros(n, dtype=np.int64)
    for i in range(n):
        question = _content_rng_tokens(rng, seg, spec.vocab_size)
        answer = _content_rng_tokens(rng, seg, spec.vocab_size)
        key = question[0]
        positive = rng.random() < 0.5
        labels[i] = int(positive)
        if positive:
            answer[rng.integers(0, seg)] = key
        else:
            answer[answer == key] = (key + 1 - _FIRST_CONTENT_TOKEN) % (
                spec.vocab_size - _FIRST_CONTENT_TOKEN
            ) + _FIRST_CONTENT_TOKEN
        row = np.concatenate([[CLS_TOKEN], question, [SEP_TOKEN], answer])
        inputs[i, : len(row)] = row
    return inputs, labels


def _make_sst2(spec: GlueTaskSpec, rng: np.random.Generator, n: int):
    """Sentiment: positive/negative token pools; label = majority pool."""
    body = spec.seq_len - 1
    pool = spec.vocab_size - _FIRST_CONTENT_TOKEN
    positive_pool = np.arange(_FIRST_CONTENT_TOKEN, _FIRST_CONTENT_TOKEN + pool // 2)
    negative_pool = np.arange(_FIRST_CONTENT_TOKEN + pool // 2, spec.vocab_size)
    inputs = np.zeros((n, spec.seq_len), dtype=np.int64)
    labels = np.zeros(n, dtype=np.int64)
    for i in range(n):
        positive = rng.random() < 0.5
        labels[i] = int(positive)
        majority = body // 2 + 1 + rng.integers(0, body // 4 + 1)
        majority = min(majority, body)
        main_pool = positive_pool if positive else negative_pool
        other_pool = negative_pool if positive else positive_pool
        tokens = np.concatenate(
            [
                rng.choice(main_pool, size=majority),
                rng.choice(other_pool, size=body - majority),
            ]
        )
        rng.shuffle(tokens)
        inputs[i, 0] = CLS_TOKEN
        inputs[i, 1:] = tokens
    return inputs, labels


def _make_stsb(spec: GlueTaskSpec, rng: np.random.Generator, n: int):
    """Similarity regression: target in [0, 5] = 5 x token-overlap fraction."""
    seg = (spec.seq_len - 2) // 2
    inputs = np.zeros((n, spec.seq_len), dtype=np.int64)
    targets = np.zeros(n, dtype=float)
    for i in range(n):
        first = _content_rng_tokens(rng, seg, spec.vocab_size)
        n_keep = rng.integers(0, seg + 1)
        second = first.copy()
        rng.shuffle(second)
        if n_keep < seg:
            replace_idx = rng.choice(seg, size=seg - n_keep, replace=False)
            second[replace_idx] = _content_rng_tokens(rng, seg - n_keep, spec.vocab_size)
        overlap = len(np.intersect1d(first, second)) / seg
        targets[i] = 5.0 * overlap
        row = np.concatenate([[CLS_TOKEN], first, [SEP_TOKEN], second])
        inputs[i, : len(row)] = row
    return inputs, targets


def make_glue_task(name: str, seed: int = 0) -> GlueTaskData:
    """Generate the named synthetic GLUE task with seeded train/test splits."""
    if name not in GLUE_TASKS:
        raise KeyError(f"unknown GLUE task {name!r}; options: {sorted(GLUE_TASKS)}")
    spec = GLUE_TASKS[name]
    # zlib.crc32 is stable across processes (unlike hash(), which is
    # randomized by PYTHONHASHSEED and would make datasets irreproducible).
    import zlib

    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % (2**16))
    total = spec.train_size + spec.test_size

    if name == "cola":
        inputs, targets = _make_cola(spec, rng, total)
    elif name in ("mrpc", "qqp", "rte"):
        noise = {"mrpc": 0.1, "qqp": 0.15, "rte": 0.2}[name]
        inputs, targets = _make_pair_task(spec, rng, total, positive_noise=noise)
    elif name == "qnli":
        inputs, targets = _make_qnli(spec, rng, total)
    elif name == "sst2":
        inputs, targets = _make_sst2(spec, rng, total)
    else:  # stsb
        inputs, targets = _make_stsb(spec, rng, total)

    train = ArrayDataset(inputs[: spec.train_size], targets[: spec.train_size])
    test = ArrayDataset(inputs[spec.train_size :], targets[spec.train_size :])
    return GlueTaskData(spec=spec, train=train, test=test)
