"""Tests for bit-serial crossbar GEMV: exactness, noise behaviour, stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram import (
    GemvStats,
    MLC2,
    MLC3,
    SLC,
    bit_serial_gemv,
    input_bit_weights,
    slice_weights,
)


class TestWeightSlicing:
    def test_slc_produces_eight_planes(self, rng):
        w = rng.integers(-128, 128, size=(4, 6))
        slices = slice_weights(w, SLC)
        assert slices.values.shape == (6, 4, 8)
        assert slices.num_slices == 8
        np.testing.assert_array_equal(slices.slice_factors, [1, 2, 4, 8, 16, 32, 64, 128])

    def test_mlc2_produces_four_planes_with_4x_factors(self, rng):
        w = rng.integers(-128, 128, size=(4, 6))
        slices = slice_weights(w, MLC2)
        assert slices.values.shape == (6, 4, 4)
        np.testing.assert_array_equal(slices.slice_factors, [1, 4, 16, 64])
        assert slices.values.max() <= 3

    def test_mlc3_pads_to_three_planes(self, rng):
        w = rng.integers(-128, 128, size=(3, 3))
        slices = slice_weights(w, MLC3)
        assert slices.values.shape == (3, 3, 3)
        np.testing.assert_array_equal(slices.slice_factors, [1, 8, 64])

    def test_slices_reconstruct_offset_weights(self, rng):
        w = rng.integers(-128, 128, size=(5, 7))
        for cell in (SLC, MLC2):
            slices = slice_weights(w, cell)
            recombined = (slices.values * slices.slice_factors).sum(axis=-1)
            np.testing.assert_array_equal(recombined, w.T + 128)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            slice_weights(np.array([[300]]), SLC)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            slice_weights(np.zeros(4), SLC)


class TestInputBitWeights:
    def test_twos_complement_weights(self):
        np.testing.assert_array_equal(
            input_bit_weights(4), [1, 2, 4, -8]
        )

    def test_reconstructs_signed_values(self, rng):
        from repro.quant import int_to_bits

        values = rng.integers(-128, 128, size=20)
        bits = int_to_bits(values & 0xFF, 8)
        recombined = bits @ input_bit_weights(8)
        np.testing.assert_array_equal(recombined, values)


class TestNoiselessExactness:
    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    def test_matches_integer_gemv(self, cell, rng):
        x = rng.integers(-128, 128, size=(5, 48))
        w = rng.integers(-128, 128, size=(10, 48))
        out = bit_serial_gemv(x, w, cell=cell, noise_sigma=0.0)
        np.testing.assert_array_equal(out, x @ w.T)

    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    def test_exact_across_row_tiles(self, cell, rng):
        """Inputs longer than 64 rows span multiple arrays; digital partial
        sums must keep the result exact."""
        x = rng.integers(-128, 128, size=(3, 200))
        w = rng.integers(-128, 128, size=(7, 200))
        out = bit_serial_gemv(x, w, cell=cell, noise_sigma=0.0)
        np.testing.assert_array_equal(out, x @ w.T)

    def test_1d_input_promoted(self, rng):
        x = rng.integers(-128, 128, size=16)
        w = rng.integers(-128, 128, size=(4, 16))
        out = bit_serial_gemv(x, w, cell=SLC)
        np.testing.assert_array_equal(out, x[None, :] @ w.T)

    def test_extreme_codes(self):
        x = np.array([[-128, 127]])
        w = np.array([[127, -128], [-128, 127]])
        out = bit_serial_gemv(x, w, cell=SLC)
        np.testing.assert_array_equal(out, x @ w.T)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            bit_serial_gemv(np.zeros((2, 4), dtype=int), np.zeros((3, 5), dtype=int), SLC)

    def test_input_range_validated(self):
        with pytest.raises(ValueError):
            bit_serial_gemv(np.array([[300]]), np.array([[1]]), SLC)

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 30),
        st.integers(1, 8),
        st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactness_property(self, seed, in_f, out_f, batch):
        gen = np.random.default_rng(seed)
        x = gen.integers(-128, 128, size=(batch, in_f))
        w = gen.integers(-128, 128, size=(out_f, in_f))
        for cell in (SLC, MLC2):
            out = bit_serial_gemv(x, w, cell=cell, noise_sigma=0.0)
            np.testing.assert_array_equal(out, x @ w.T)


class TestNoisyBehaviour:
    def test_noise_perturbs_results(self, rng):
        x = rng.integers(-128, 128, size=(4, 32))
        w = rng.integers(-128, 128, size=(8, 32))
        noisy = bit_serial_gemv(x, w, cell=MLC2, noise_sigma=0.05, rng=np.random.default_rng(0))
        assert not np.array_equal(noisy, x @ w.T)

    def test_noise_is_seeded(self, rng):
        x = rng.integers(-128, 128, size=(2, 16))
        w = rng.integers(-128, 128, size=(4, 16))
        a = bit_serial_gemv(x, w, MLC2, 0.05, rng=np.random.default_rng(3))
        b = bit_serial_gemv(x, w, MLC2, 0.05, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_relative_error_grows_with_sigma(self, rng):
        x = rng.integers(-128, 128, size=(16, 64))
        w = rng.integers(-128, 128, size=(16, 64))
        ideal = x @ w.T
        errors = []
        for sigma in (0.01, 0.05, 0.15):
            out = bit_serial_gemv(x, w, MLC2, sigma, rng=np.random.default_rng(0))
            errors.append(np.abs(out - ideal).mean())
        assert errors[0] < errors[1] < errors[2]

    def test_slc_more_accurate_than_mlc_at_calibrated_noise(self, rng):
        """The premise of the hybrid design: at their calibrated noise levels
        SLC computation is more accurate than MLC2."""
        from repro.rram import DEFAULT_NOISE

        x = rng.integers(-128, 128, size=(32, 64))
        w = rng.integers(-128, 128, size=(32, 64))
        ideal = x @ w.T
        err = {}
        for cell in (SLC, MLC2):
            out = bit_serial_gemv(
                x, w, cell, DEFAULT_NOISE.sigma(cell), rng=np.random.default_rng(0)
            )
            err[cell.name] = np.abs(out - ideal).mean()
        assert err["SLC"] < err["MLC2"]


class TestStats:
    def test_adc_conversion_count(self, rng):
        x = rng.integers(-128, 128, size=(2, 32))
        w = rng.integers(-128, 128, size=(3, 32))
        stats = GemvStats()
        bit_serial_gemv(x, w, SLC, stats=stats)
        # one row tile, 8 input bits, 3 outputs x 8 slices, batch 2
        assert stats.adc_conversions == 2 * 8 * 3 * 8
        assert stats.input_cycles == 8

    def test_mlc_halves_adc_conversions(self, rng):
        x = rng.integers(-128, 128, size=(2, 32))
        w = rng.integers(-128, 128, size=(3, 32))
        slc_stats, mlc_stats = GemvStats(), GemvStats()
        bit_serial_gemv(x, w, SLC, stats=slc_stats)
        bit_serial_gemv(x, w, MLC2, stats=mlc_stats)
        assert mlc_stats.adc_conversions * 2 == slc_stats.adc_conversions

    def test_tile_count(self, rng):
        x = rng.integers(-128, 128, size=(1, 130))
        w = rng.integers(-128, 128, size=(20, 130))
        stats = GemvStats()
        bit_serial_gemv(x, w, SLC, stats=stats)
        # 130 inputs -> 3 row tiles; 20 outputs x 8 slices = 160 cols -> 2 col tiles
        assert stats.array_tiles == 6

    def test_merge(self):
        a = GemvStats(adc_conversions=5, input_cycles=8)
        b = GemvStats(adc_conversions=7, array_tiles=2)
        a.merge(b)
        assert a.adc_conversions == 12
        assert a.array_tiles == 2
        assert a.input_cycles == 8
