"""Tests for the Fig. 2 workload op-count model."""

from __future__ import annotations

import pytest

from repro.arch import STAGES, memory_footprint_bytes, stage_op_counts
from repro.models import paper_model


class TestStageOpCounts:
    def test_all_stages_present(self):
        ops = stage_op_counts(paper_model("bert-base"), 128)
        assert set(ops.counts) == set(STAGES)
        assert all(v > 0 for v in ops.counts.values())

    def test_linear_dominates_at_short_sequences(self):
        """Fig. 2 / Section 1: >70 % of computations come from static weights."""
        ops = stage_op_counts(paper_model("bert-base"), 128)
        assert ops.linear_total() / ops.total() > 0.7

    def test_attention_grows_quadratically(self):
        spec = paper_model("bert-base")
        a1 = stage_op_counts(spec, 512).attention_total()
        a2 = stage_op_counts(spec, 1024).attention_total()
        assert a2 / a1 == pytest.approx(4.0)

    def test_linear_grows_linearly(self):
        spec = paper_model("bert-base")
        l1 = stage_op_counts(spec, 512).linear_total()
        l2 = stage_op_counts(spec, 1024).linear_total()
        assert l2 / l1 == pytest.approx(2.0)

    def test_attention_overtakes_at_long_sequences(self):
        """Fig. 2's crossover: score/PV stages dominate at N >= ~3072."""
        spec = paper_model("bert-base")
        short = stage_op_counts(spec, 128)
        long = stage_op_counts(spec, 8192)
        assert short.attention_total() < short.linear_total()
        assert long.attention_total() > long.linear_total()

    def test_ffn_is_largest_linear_stage(self):
        ops = stage_op_counts(paper_model("bert-base"), 128)
        assert ops.counts["ffn1"] > ops.counts["qkv_fc"] / 3
        assert ops.counts["ffn1"] == ops.counts["ffn2"]

    def test_qkv_is_three_projections(self):
        ops = stage_op_counts(paper_model("bert-base"), 128)
        assert ops.counts["qkv_fc"] == pytest.approx(3 * ops.counts["proj_fc"])

    def test_decode_mode_attention_is_half_prefill(self):
        spec = paper_model("gpt2")
        prefill = stage_op_counts(spec, 1024, mode="prefill").attention_total()
        decode = stage_op_counts(spec, 1024, mode="decode").attention_total()
        assert decode / prefill == pytest.approx(0.5, abs=0.01)

    def test_validation(self):
        spec = paper_model("bert-base")
        with pytest.raises(ValueError):
            stage_op_counts(spec, 0)
        with pytest.raises(ValueError):
            stage_op_counts(spec, 128, mode="training")


class TestMemoryFootprint:
    def test_weight_bytes_match_spec(self):
        spec = paper_model("gpt2")
        footprint = memory_footprint_bytes(spec, 1024)
        assert footprint["analog_weights"] == spec.static_weight_bytes()

    def test_kv_cache_scales_with_sequence(self):
        spec = paper_model("llama3-1b")
        short = memory_footprint_bytes(spec, 1024)["kv_cache"]
        long = memory_footprint_bytes(spec, 8192)["kv_cache"]
        assert long == pytest.approx(8 * short)

    def test_llama3_larger_than_gpt2(self):
        gpt2 = memory_footprint_bytes(paper_model("gpt2"), 8192)["total"]
        llama = memory_footprint_bytes(paper_model("llama3-1b"), 8192)["total"]
        assert llama > 2 * gpt2
