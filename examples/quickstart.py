"""Quickstart: train a tiny encoder, compile it for HyFlexPIM, evaluate.

Walks the full paper workflow in miniature:

1. train a BERT-like encoder on a synthetic sst2-style sentiment task;
2. ``compile`` — SVD decomposition, hard-threshold truncation, fine-tuning
   with singular-value gradient accumulation (Algorithm 1);
3. ``deploy`` — map protected ranks to SLC and the rest to 2-bit MLC, with
   BER-calibrated programming noise (Eq. 5);
4. evaluate accuracy across SLC protection rates (a mini Fig. 12 column).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HyFlexPim
from repro.datasets import make_glue_task
from repro.nn import AdamW, BatchIterator, EncoderClassifier, TransformerConfig, cross_entropy


def train_dense_model(data, config, epochs: int = 4) -> EncoderClassifier:
    """Pre-train the dense encoder the paper would download pretrained."""
    model = EncoderClassifier(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(0)
    for epoch in range(epochs):
        total, batches = 0.0, 0
        for inputs, targets in BatchIterator(data.train, 32, rng=rng):
            loss = cross_entropy(model(inputs), targets.astype(int))
            model.zero_grad()
            loss.backward()
            optimizer.step()
            total += float(loss.data)
            batches += 1
        print(f"  epoch {epoch + 1}: train loss {total / batches:.4f}")
    return model


def main() -> None:
    print("== HyFlexPIM quickstart ==")
    data = make_glue_task("sst2", seed=0)
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=2,
        d_ff=64,
        max_seq_len=data.spec.seq_len,
        num_classes=2,
        seed=0,
    )

    print("[1/4] training the dense encoder")
    model = train_dense_model(data, config)

    print("[2/4] compiling: SVD + hard threshold + gradient redistribution")
    hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    plan = compiled.plan
    print(f"  factored layers: {len(plan.layers)}, total ranks: {plan.total_ranks()}")

    print("[3/4] deploying on hybrid SLC/MLC analog PIM")
    baseline = hfp.ideal_reference(compiled, data.test)
    print(f"  noise-free INT8 baseline accuracy: {baseline:.3f}")

    print("[4/4] accuracy vs SLC protection rate (mini Fig. 12)")
    rates = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)
    sweep = hfp.protection_sweep(compiled, data.test, rates=rates)
    for rate, score in sweep.items():
        marker = " <- all-MLC" if rate == 0.0 else (" <- all-SLC" if rate == 1.0 else "")
        print(f"  SLC {rate * 100:5.1f}%: accuracy {score:.3f}{marker}")

    drop_full_mlc = baseline - sweep[0.0]
    drop_protected = baseline - sweep[0.1]
    print(
        f"\nfull-MLC drop {drop_full_mlc * 100:.1f} pts vs "
        f"10%-protected drop {drop_protected * 100:.1f} pts "
        "(protection recovers most of the loss, as in the paper)"
    )


if __name__ == "__main__":
    main()
