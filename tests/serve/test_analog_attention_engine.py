"""End-to-end analog attention through the serving engine.

The acceptance contract for ``deploy(attention="analog")``: served tokens
from a noiseless analog deployment are **bitwise identical** to a host
engine whose attention runs :class:`~repro.pim.ReferenceQuantizedAttention`
(the numpy specification of the same INT8 math) — through the continuous
scheduler, batch > 1, ragged prompts, row compaction and pooled-cache
reuse — while every KV write shows up in ``gemv_stats()``, the wear
ledger's dynamic channel and ``endurance_report()``.  The float host
engine is a tolerance reference only (INT8 attention may flip ties).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.rram.backend import SimBackend
from repro.rram.noise import NoiseSpec
from repro.serve import ServingEngine
from repro.svd.pipeline import LayerPlan
from repro.pim import CrossbarAttentionExecutor, ReferenceQuantizedAttention

VOCAB = 32
MAX_SEQ = 24


def _lm() -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=16,
            num_heads=2,
            num_layers=2,
            d_ff=32,
            max_seq_len=MAX_SEQ,
            seed=3,
        )
    )


def _plans(lm: DecoderLM) -> dict[str, LayerPlan]:
    rng = np.random.default_rng(3)
    plans = {}
    for name, linear in lm.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        r = min(out_f, in_f)
        mask = np.zeros(r, dtype=bool)
        mask[: r // 2] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(r),
        )
    return plans


def _engine(attention: str, **kwargs) -> ServingEngine:
    lm = _lm()
    calib = np.random.default_rng(7).integers(0, VOCAB, size=(2, 6))
    return ServingEngine.deploy(
        lm,
        _plans(lm),
        calibration_prompts=calib,
        noise=NoiseSpec.noiseless(),
        mode="crossbar",
        backend=SimBackend(),
        attention=attention,
        max_batch_size=3,
        **kwargs,
    )


def _reference_engine() -> ServingEngine:
    """Host engine whose attention runs the quantized numpy reference."""
    engine = _engine("host")
    ex = CrossbarAttentionExecutor(backend=SimBackend())
    for block in engine.model.blocks:
        block.attn = ReferenceQuantizedAttention.from_host(block.attn, ex)
    return engine


def _prompts(seed: int, lengths) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=n) for n in lengths]


def _tokens(engine, prompts, n=8):
    return [list(r.tokens) for r in engine.serve(prompts, max_new_tokens=n)]


class TestEndToEndEquality:
    def test_analog_matches_quantized_reference_bitwise(self):
        """Continuous scheduler, batch > 1, ragged prompts: exact tokens."""
        prompts = _prompts(11, (5, 3, 7, 4, 6, 2))
        analog = _engine("analog")
        reference = _reference_engine()
        toks_a = _tokens(analog, prompts)
        toks_r = _tokens(reference, prompts)
        assert toks_a == toks_r

    def test_analog_tracks_float_host(self):
        """INT8 attention may flip greedy ties, but most rows agree."""
        prompts = _prompts(11, (5, 3, 7, 4))
        toks_a = _tokens(_engine("analog"), prompts)
        toks_h = _tokens(_engine("host"), prompts)
        agree = sum(a == h for a, h in zip(toks_a, toks_h))
        assert agree >= len(prompts) // 2


class TestAccounting:
    def test_every_kv_write_is_accounted(self):
        engine = _engine("analog")
        prompts = _prompts(13, (4, 6, 3))
        results = engine.serve(prompts, max_new_tokens=5)
        assert all(len(r.tokens) == 5 for r in results)
        ex = engine.attention_executor
        # Every consumed token's KV is written: the prompt plus all but the
        # final generated token (emitted, never fed back).
        assert ex.kv_tokens_written == sum(len(p) + 5 - 1 for p in prompts)
        stats = engine.gemv_stats()
        assert stats.cells_initial_programmed > 0
        wear = ex.wear_report()
        assert wear["dynamic_writes"] > 0
        assert wear["max_wear_fraction"] > 0.0
        report = engine.endurance_report()
        assert report["attention"]["kv_tokens_written"] == ex.kv_tokens_written
        assert report["layers"] and report["max_layer_wear_fraction"] >= 0.0
        assert any(b["dynamic_writes"] > 0 for b in report["backends"])

    def test_pooled_cache_reuse_reprograms_recycled_rows(self):
        """A second serve() reuses pooled crossbar caches: recycled operand
        rows count as re-programs.  (A few *initial* programs may still
        occur — compaction swaps operand objects between rows, so their
        high watermarks travel and a swapped-in operand can be decoded
        past the depth it ever held — but re-programs must dominate.)"""
        engine = _engine("analog")
        prompts = _prompts(17, (4, 5))
        engine.serve(prompts, max_new_tokens=4)
        first = engine.gemv_stats()
        initial_0 = first.cells_initial_programmed
        reprogram_0 = first.cells_reprogrammed
        engine.serve(prompts, max_new_tokens=4)
        stats = engine.gemv_stats()
        d_initial = stats.cells_initial_programmed - initial_0
        d_reprogram = stats.cells_reprogrammed - reprogram_0
        assert d_reprogram > 0
        assert d_initial < d_reprogram

    def test_host_engine_reports_without_attention_channel(self):
        engine = _engine("host")
        engine.serve(_prompts(19, (4,)), max_new_tokens=3)
        assert engine.attention_executor is None
        report = engine.endurance_report()
        assert "attention" not in report
        assert engine.hardware_report() is None  # unsharded contract


class TestShardedAnalog:
    def test_mesh_deploy_records_kv_traffic_and_endurance(self):
        from repro.dist import DeviceMesh

        mesh = DeviceMesh(num_chips=2)
        engine = _engine("analog", mesh=mesh, tensor_parallel=2)
        engine.serve(_prompts(23, (4, 3)), max_new_tokens=4)
        placement = engine.attention_executor.placement
        assert placement is not None and len(placement.chips) == 2
        # Anchored round-robin on 2 chips: half the heads write remotely.
        assert mesh.traffic["oci"].num_bytes > 0
        assert mesh.traffic["pcie6"].num_bytes > 0
        report = engine.hardware_report()
        assert report is not None
        assert report["endurance"]["attention"]["kv_tokens_written"] > 0

    def test_bogus_attention_kind_rejected(self):
        lm = _lm()
        with pytest.raises(ValueError, match="attention"):
            ServingEngine.deploy(lm, _plans(lm), attention="quantum")
