"""Multi-process replica pool: data-parallel engines behind shared-memory rings.

The paper's replication case 2 deploys the *same* model onto N HyFlexPIM
chip sets, each programmed with its **own** conductance noise draw, and
load-balances requests across them.  :class:`ReplicaPool` is the serving
realization: N worker *processes*, each running one
:class:`~repro.serve.ServingEngine` built by a caller-supplied
``engine_factory(replica_index)`` (seed the backend per replica there —
independent draws come from the factory, not the pool), fed over
:mod:`multiprocessing.shared_memory` token/result rings.

Transport: one inbox + one outbox :class:`ShmRing` per replica — fixed
int64-word ring buffers with head/tail cursors, guarded by a
``multiprocessing.Lock`` each.  Requests travel parent -> inbox; emitted
tokens stream back one record at a time (outbox), and a final ``DONE``
record carries the authoritative token array plus timing, so streaming
callbacks and results both work across the process boundary.

Routing is pluggable (:class:`RoundRobinRouter`,
:class:`LeastOutstandingTokensRouter`, :class:`SessionAffinityRouter`) and
duck-typed: anything with ``pick(outstanding_tokens, session) -> index``.

Fault handling: :meth:`ReplicaPool.poll` detects a dead worker process
(``is_alive()`` false with work outstanding), marks it dead and
*requeues* its outstanding requests onto surviving replicas.  Requeued
requests restart decoding from the prompt — greedy decoding is
idempotent, so the caller-visible token stream is unchanged (streaming
callbacks may re-deliver a prefix).

``processes=False`` runs every replica in-process but through the *same*
ring serialization, router and requeue code — the fast path the
hypothesis equivalence harness uses.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from multiprocessing import Lock, get_all_start_methods, get_context
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

__all__ = [
    "LeastOutstandingTokensRouter",
    "PoolResult",
    "ReplicaPool",
    "RoundRobinRouter",
    "SessionAffinityRouter",
    "ShmRing",
]

# Record kinds on the rings (first payload word after the length prefix).
KIND_REQUEST = 1
KIND_TOKEN = 2
KIND_DONE = 3
KIND_SHUTDOWN = 4

_HEADER_WORDS = 2  # [head, tail] cursors, in words past the header


def _f2i(x: float) -> int:
    """Bitcast a float64 to an int64 ring word."""
    return int(np.float64(x).view(np.int64))


def _i2f(x: int) -> float:
    """Bitcast an int64 ring word back to float64."""
    return float(np.int64(x).view(np.float64))


class ShmRing:
    """Fixed-capacity int64 record ring over a shared-memory segment.

    Single-producer/single-consumer in this repo's usage (one side of one
    replica), but every cursor update happens under the ring's
    ``multiprocessing.Lock`` so the implementation is safe regardless.
    Records are ``[n_words, *payload]``; the ring never splits a record's
    length prefix from its payload — readers see whole records or
    nothing.  ``push`` returns ``False`` when the record does not fit
    (caller backs off and retries); capacity must exceed the largest
    record by at least one word.
    """

    def __init__(self, capacity_words: int = 1 << 15, name: str | None = None) -> None:
        if capacity_words < 16:
            raise ValueError(f"capacity_words must be >= 16, got {capacity_words}")
        self.capacity = capacity_words
        nbytes = (capacity_words + _HEADER_WORDS) * 8
        if name is None:
            self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.owner = True
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        self.words = np.ndarray(
            (capacity_words + _HEADER_WORDS,), dtype=np.int64, buffer=self.shm.buf
        )
        if self.owner:
            self.words[:_HEADER_WORDS] = 0
        self.lock = Lock()

    @property
    def name(self) -> str:
        """Shared-memory segment name (attach handle for other processes)."""
        return self.shm.name

    def _used(self, head: int, tail: int) -> int:
        return (tail - head) % self.capacity

    def push(self, payload: list[int]) -> bool:
        """Append one record; False when the ring lacks space right now."""
        record = [len(payload)] + list(payload)
        if len(record) >= self.capacity:
            raise ValueError(
                f"record of {len(record)} words exceeds ring capacity {self.capacity}"
            )
        with self.lock:
            head, tail = int(self.words[0]), int(self.words[1])
            if self._used(head, tail) + len(record) >= self.capacity:
                return False
            for word in record:
                self.words[_HEADER_WORDS + tail] = word
                tail = (tail + 1) % self.capacity
            self.words[1] = tail
        return True

    def pop(self) -> list[int] | None:
        """Remove and return one record's payload, or None when empty."""
        with self.lock:
            head, tail = int(self.words[0]), int(self.words[1])
            if head == tail:
                return None
            n = int(self.words[_HEADER_WORDS + head])
            head = (head + 1) % self.capacity
            payload = []
            for _ in range(n):
                payload.append(int(self.words[_HEADER_WORDS + head]))
                head = (head + 1) % self.capacity
            self.words[0] = head
        return payload

    def close(self, unlink: bool = False) -> None:
        """Release the mapping (and the segment itself when ``unlink``)."""
        self.words = None
        self.shm.close()
        if unlink and self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # already unlinked by a racing close
                pass


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class RoundRobinRouter:
    """Cycle through live replicas in order, one request each."""

    def __init__(self) -> None:
        self._next = 0

    def pick(self, outstanding_tokens: list[int | None], session=None) -> int:
        """Next live replica index (dead replicas report ``None`` load)."""
        n = len(outstanding_tokens)
        for _ in range(n):
            index = self._next % n
            self._next += 1
            if outstanding_tokens[index] is not None:
                return index
        raise RuntimeError("no live replicas")


class LeastOutstandingTokensRouter:
    """Send each request to the replica with the fewest reserved tokens."""

    def pick(self, outstanding_tokens: list[int | None], session=None) -> int:
        """Live replica with minimal outstanding (prompt + budget) tokens."""
        live = [(load, i) for i, load in enumerate(outstanding_tokens) if load is not None]
        if not live:
            raise RuntimeError("no live replicas")
        return min(live)[1]


class SessionAffinityRouter:
    """Pin each session to one replica; spill sessions round-robin.

    Requests without a session fall back to the inner router, as do
    sessions whose pinned replica has died (they are re-pinned to the
    fallback's next pick).
    """

    def __init__(self, fallback=None) -> None:
        self.fallback = fallback if fallback is not None else RoundRobinRouter()
        self._pin: dict[object, int] = {}

    def pick(self, outstanding_tokens: list[int | None], session=None) -> int:
        """Pinned replica for the session (re-pinned if it died)."""
        if session is not None:
            pinned = self._pin.get(session)
            if pinned is not None and outstanding_tokens[pinned] is not None:
                return pinned
        choice = self.fallback.pick(outstanding_tokens, session)
        if session is not None:
            self._pin[session] = choice
        return choice


ROUTERS = {
    "round_robin": RoundRobinRouter,
    "least_outstanding_tokens": LeastOutstandingTokensRouter,
    "session_affinity": SessionAffinityRouter,
}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _serve_rings_once(engine, inbox: ShmRing, outbox: ShmRing) -> bool:
    """One worker iteration: drain inbox, step the engine, emit results.

    Returns False when a SHUTDOWN record was consumed (drain first, then
    exit).  Shared by the process worker loop and the inline pump, so
    both modes exercise identical serialization.
    """
    running = True
    while True:
        record = inbox.pop()
        if record is None:
            break
        kind = record[0]
        if kind == KIND_SHUTDOWN:
            running = False
            continue
        req_id, max_new, prompt_len = record[1], record[2], record[3]
        prompt = np.array(record[4 : 4 + prompt_len], dtype=np.int64)

        def stream(engine_rid: int, token: int, rid: int = req_id) -> None:
            while not outbox.push([KIND_TOKEN, rid, token]):
                time.sleep(0.0002)

        engine_rid = engine.submit(prompt, max_new, on_token=stream)
        engine._ring_ids = getattr(engine, "_ring_ids", {})
        engine._ring_ids[engine_rid] = req_id
    if engine.busy:
        ring_ids = getattr(engine, "_ring_ids", {})
        for result in engine.step(force=True):
            rid = ring_ids.pop(result.request_id, result.request_id)
            engine.pop_result(result.request_id)
            record = [
                KIND_DONE,
                rid,
                int(result.preempted),
                _f2i(result.queued_s),
                _f2i(result.latency_s),
                _f2i(result.ttft_s),
                _f2i(result.tpot_s),
                int(result.tokens.size),
                *(int(t) for t in result.tokens),
            ]
            while not outbox.push(record):
                time.sleep(0.0002)
    return running


def _replica_worker(engine_factory, index: int, inbox: ShmRing, outbox: ShmRing) -> None:
    """Worker process entry: build the replica's engine and serve forever."""
    engine = engine_factory(index)
    while True:
        busy_before = engine.busy
        if not _serve_rings_once(engine, inbox, outbox):
            # Shutdown requested: finish in-flight work, then exit.
            while engine.busy:
                _drain_results(engine, outbox)
            return
        if not busy_before and not engine.busy:
            time.sleep(0.0005)  # idle — don't spin the CPU


def _drain_results(engine, outbox: ShmRing) -> None:
    """Step once and flush completed results to the outbox (shutdown path)."""
    ring_ids = getattr(engine, "_ring_ids", {})
    for result in engine.step(force=True):
        rid = ring_ids.pop(result.request_id, result.request_id)
        engine.pop_result(result.request_id)
        record = [
            KIND_DONE,
            rid,
            int(result.preempted),
            _f2i(result.queued_s),
            _f2i(result.latency_s),
            _f2i(result.ttft_s),
            _f2i(result.tpot_s),
            int(result.tokens.size),
            *(int(t) for t in result.tokens),
        ]
        while not outbox.push(record):
            time.sleep(0.0002)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class PoolResult:
    """One completed request as seen by the pool's caller."""

    request_id: int
    replica: int
    tokens: np.ndarray
    queued_s: float
    latency_s: float
    ttft_s: float
    tpot_s: float
    preempted: bool = False


@dataclass
class _Outstanding:
    """Parent-side state of one routed-but-unfinished request."""

    request_id: int
    replica: int
    prompt: np.ndarray
    max_new_tokens: int
    session: object
    on_token: Callable[[int, int], None] | None
    streamed: int = 0  # tokens delivered to on_token so far
    token_need: int = field(init=False)

    def __post_init__(self) -> None:
        self.token_need = int(self.prompt.size) + self.max_new_tokens


class ReplicaPool:
    """N data-parallel serving engines behind shared-memory rings.

    Parameters
    ----------
    engine_factory:
        ``factory(replica_index) -> ServingEngine``.  Build each replica's
        engine here — including its per-replica backend seed, which is
        what makes the paper's replication case 2 noise draws independent.
        With process workers the factory runs *in the child* (fork), so it
        may close over parent state.
    replicas:
        Number of engine workers.
    router:
        A router name from ``ROUTERS`` or any object with
        ``pick(outstanding_tokens, session) -> replica_index``.
    processes:
        True (default) forks one worker process per replica; False runs
        the replicas in-process through the identical ring/router path
        (deterministic and fast — what the equivalence tests use).
    ring_words:
        Per-ring capacity in int64 words (two rings per replica).

    Thread safety: :meth:`submit`, :meth:`poll`, :meth:`pop_result`,
    :meth:`outstanding_tokens` and :meth:`drain` may be called from
    different threads concurrently (e.g. an asyncio handler submitting
    while a driver thread polls) — all book-keeping runs under one
    internal re-entrant lock.  Streaming ``on_token`` callbacks fire with
    that lock held, so they must not call back into the pool.
    """

    def __init__(
        self,
        engine_factory: Callable[[int], object],
        replicas: int = 2,
        router="round_robin",
        processes: bool = True,
        ring_words: int = 1 << 15,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if processes and "fork" not in get_all_start_methods():
            raise RuntimeError(
                "ReplicaPool(processes=True) requires the 'fork' start "
                "method: workers inherit the live ShmRing mappings, "
                "which cannot be pickled for spawn. Use processes=False "
                "on this platform."
            )
        self.replicas = replicas
        self.router = ROUTERS[router]() if isinstance(router, str) else router
        self.processes = processes
        self.inboxes = [ShmRing(ring_words) for _ in range(replicas)]
        self.outboxes = [ShmRing(ring_words) for _ in range(replicas)]
        self._alive = [True] * replicas
        self._outstanding: dict[int, _Outstanding] = {}
        self._results: dict[int, PoolResult] = {}
        self._next_id = 0
        self.requeues = 0  # requests re-routed off dead replicas
        self._engines = None
        self._workers: list = []
        # Re-entrant: submit() -> _send() back-pressure -> poll() re-enters
        # on the same thread; a concurrent driver-thread poll() serializes.
        self._lock = threading.RLock()
        if processes:
            ctx = get_context("fork")
            for index in range(replicas):
                worker = ctx.Process(
                    target=_replica_worker,
                    args=(engine_factory, index, self.inboxes[index], self.outboxes[index]),
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        else:
            self._engines = [engine_factory(index) for index in range(replicas)]

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Routed requests not yet completed."""
        with self._lock:
            return len(self._outstanding)

    def outstanding_tokens(self) -> list[int | None]:
        """Per-replica reserved (prompt + budget) tokens; None when dead."""
        with self._lock:
            loads: list[int | None] = [0] * self.replicas
            for index in range(self.replicas):
                if not self._alive[index]:
                    loads[index] = None
            for entry in self._outstanding.values():
                if loads[entry.replica] is not None:
                    loads[entry.replica] += entry.token_need
            return loads

    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        session=None,
        on_token: Callable[[int, int], None] | None = None,
    ) -> int:
        """Route one prompt to a replica; returns the pool request id.

        ``session`` feeds session-affinity routing; ``on_token`` streams
        tokens as :meth:`poll` drains them off the replica's outbox.
        """
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        with self._lock:
            replica = self.router.pick(self.outstanding_tokens(), session)
            request_id = self._next_id
            self._next_id += 1
            entry = _Outstanding(
                request_id=request_id,
                replica=replica,
                prompt=prompt,
                max_new_tokens=int(max_new_tokens),
                session=session,
                on_token=on_token,
            )
            self._outstanding[request_id] = entry
            self._send(entry)
        return request_id

    def _send(self, entry: _Outstanding) -> None:
        record = [
            KIND_REQUEST,
            entry.request_id,
            entry.max_new_tokens,
            int(entry.prompt.size),
            *(int(t) for t in entry.prompt),
        ]
        deadline = time.monotonic() + 5.0
        while not self.inboxes[entry.replica].push(record):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"replica {entry.replica} inbox full for 5s — worker stuck?"
                )
            self.poll()
            time.sleep(0.0005)

    # ------------------------------------------------------------------
    def _pump_inline(self) -> None:
        for index, engine in enumerate(self._engines or []):
            if self._alive[index]:
                _serve_rings_once(engine, self.inboxes[index], self.outboxes[index])

    def poll(self) -> list[PoolResult]:
        """Drain replica outboxes: fire streaming callbacks, collect results.

        Also runs dead-replica detection — outstanding requests of a dead
        worker are requeued onto surviving replicas (decoding restarts
        from the prompt; greedy decode makes the retry token-identical).
        """
        with self._lock:
            if self._engines is not None:
                self._pump_inline()
            completed: list[PoolResult] = []
            for index in range(self.replicas):
                if not self._alive[index]:
                    continue
                while True:
                    record = self.outboxes[index].pop()
                    if record is None:
                        break
                    kind = record[0]
                    if kind == KIND_TOKEN:
                        entry = self._outstanding.get(record[1])
                        if entry is not None and entry.on_token is not None:
                            entry.streamed += 1
                            entry.on_token(entry.request_id, record[2])
                    elif kind == KIND_DONE:
                        entry = self._outstanding.pop(record[1], None)
                        if entry is None:
                            continue  # raced with a requeue — stale completion
                        n = record[7]
                        result = PoolResult(
                            request_id=entry.request_id,
                            replica=index,
                            tokens=np.array(record[8 : 8 + n], dtype=np.int64),
                            preempted=bool(record[2]),
                            queued_s=_i2f(record[3]),
                            latency_s=_i2f(record[4]),
                            ttft_s=_i2f(record[5]),
                            tpot_s=_i2f(record[6]),
                        )
                        self._results[entry.request_id] = result
                        completed.append(result)
            self._detect_dead()
            return completed

    def _detect_dead(self) -> None:
        if not self.processes:
            return
        for index, worker in enumerate(self._workers):
            if self._alive[index] and not worker.is_alive():
                self._alive[index] = False
                self._requeue_from(index)

    def _requeue_from(self, dead: int) -> None:
        victims = [e for e in self._outstanding.values() if e.replica == dead]
        if victims and not any(self._alive):
            raise RuntimeError("all replicas dead with requests outstanding")
        for entry in victims:
            entry.replica = self.router.pick(self.outstanding_tokens(), entry.session)
            entry.streamed = 0  # stream restarts from the prompt
            self.requeues += 1
            self._send(entry)

    def kill_replica(self, index: int) -> None:
        """Forcefully terminate one replica (fault-injection test hook)."""
        if self.processes:
            self._workers[index].terminate()
            self._workers[index].join(timeout=5.0)
        else:
            with self._lock:
                self._alive[index] = False
                self._requeue_from(index)

    # ------------------------------------------------------------------
    def pop_result(self, request_id: int) -> PoolResult | None:
        """Claim (and forget) a completed request's result, if any."""
        with self._lock:
            return self._results.pop(request_id, None)

    def drain(self, timeout_s: float = 60.0) -> list[PoolResult]:
        """Poll until every outstanding request completed; results returned.

        Requests finished by earlier :meth:`poll` calls stay claimable via
        :meth:`pop_result` — only completions observed *during* the drain
        are returned here.
        """
        completed: list[PoolResult] = []
        deadline = time.monotonic() + timeout_s
        while self.outstanding:
            completed.extend(self.poll())
            if not self.outstanding:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{self.outstanding} requests outstanding after {timeout_s}s"
                )
            if self.processes:
                time.sleep(0.001)
        return completed

    def shutdown(self) -> None:
        """Drain-free stop: signal workers, join, release the rings."""
        if self.processes:
            for index in range(self.replicas):
                if self._alive[index]:
                    self.inboxes[index].push([KIND_SHUTDOWN])
            for worker in self._workers:
                worker.join(timeout=10.0)
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=5.0)
        for ring in self.inboxes + self.outboxes:
            ring.close(unlink=True)

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
