"""float32 vs float64 fine-tuning: the nn.tensor dtype policy in practice.

The perf-tuned training path runs the whole loop under
``default_dtype(float32)`` (``finetune(compute_dtype="float32")``); these
tests pin down the policy mechanics and the convergence tolerance between
the two precisions on the mini encoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_glue_task
from repro.nn import (
    EncoderClassifier,
    Tensor,
    TransformerConfig,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.svd import apply_svd, finetune


@pytest.fixture(scope="module")
def task_and_config():
    data = make_glue_task("sst2", seed=0)
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=1,
        d_ff=64,
        max_seq_len=data.spec.seq_len,
        num_classes=2,
        seed=0,
    )
    return data, config


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0]).dtype == np.float64

    def test_context_manager_scopes_new_tensors(self):
        with default_dtype(np.float32):
            assert Tensor([1.0]).dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64

    def test_set_returns_previous_and_validates(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(previous)
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_float64_parameters_keep_their_grad_dtype_under_float32(self):
        weight = Tensor(np.ones((3, 3)), requires_grad=True)
        with default_dtype(np.float32):
            out = (Tensor(np.ones((2, 3))) @ weight.T).sum()
            out.backward()
        assert weight.grad is not None
        assert weight.grad.dtype == np.float64


class TestFinetuneConvergenceTolerance:
    def _run(self, task_and_config, compute_dtype):
        data, config = task_and_config
        model = EncoderClassifier(config)
        apply_svd(model)
        result = finetune(
            model,
            data.train,
            task_type="classification",
            epochs=2,
            batch_size=32,
            learning_rate=2e-3,
            compute_dtype=compute_dtype,
        )
        return result

    def test_float32_converges_like_float64(self, task_and_config):
        """Same recovery trajectory in either precision: the final losses
        agree within a small relative tolerance and both strictly improve.

        float32 forward/backward noise (~1e-7 per op) is invisible next to
        the INT8 quantization every deployed layer undergoes anyway."""
        f64 = self._run(task_and_config, None)
        f32 = self._run(task_and_config, "float32")
        assert f64.epoch_losses[-1] < f64.epoch_losses[0]
        assert f32.epoch_losses[-1] < f32.epoch_losses[0]
        assert f32.final_loss == pytest.approx(f64.final_loss, rel=0.05)
        # Gradient-redistribution signal survives the precision switch: the
        # same ranks dominate |dL/dsigma| in both runs.
        for name, grads64 in f64.sigma_gradients.items():
            grads32 = f32.sigma_gradients[name]
            top64 = set(np.argsort(grads64)[-3:])
            top32 = set(np.argsort(grads32)[-3:])
            assert top64 & top32, name

    def test_finetune_restores_process_dtype(self, task_and_config):
        self._run(task_and_config, "float32")
        assert get_default_dtype() == np.float64
