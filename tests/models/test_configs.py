"""Tests for the paper model zoo and Table 1 hyper-parameters."""

from __future__ import annotations

import pytest

from repro.models import (
    PAPER_MODELS,
    TABLE1_HYPERPARAMS,
    downscaled_config,
    paper_model,
)
from repro.models.configs import ModelSpec


class TestPaperModels:
    def test_all_five_benchmarks_present(self):
        assert set(PAPER_MODELS) == {"bert-base", "bert-large", "gpt2", "llama3-1b", "vit-base"}

    def test_bert_base_dimensions(self):
        spec = paper_model("bert-base")
        assert (spec.num_layers, spec.d_model, spec.num_heads, spec.d_ff) == (12, 768, 12, 3072)
        assert spec.max_seq_len == 128  # GLUE MSL per Section 5.1

    def test_gpt2_msl_is_1024(self):
        assert paper_model("gpt2").max_seq_len == 1024  # WikiText-2 MSL

    def test_llama3_msl_is_100(self):
        assert paper_model("llama3-1b").max_seq_len == 100  # PTB MSL

    def test_d_head_consistency(self):
        for spec in PAPER_MODELS.values():
            assert spec.d_head * spec.num_heads == spec.d_model

    def test_static_weight_count_bert_base(self):
        spec = paper_model("bert-base")
        per_layer = 4 * 768 * 768 + 2 * 768 * 3072
        assert spec.static_weight_params() == 12 * per_layer
        assert spec.static_weight_bytes() == spec.static_weight_params()  # INT8

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            paper_model("t5")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ModelSpec("x", "rnn", 1, 8, 2, 16, 10, 8)
        with pytest.raises(ValueError):
            ModelSpec("x", "encoder", 1, 10, 3, 16, 10, 8)


class TestTable1:
    def test_matches_paper_rows(self):
        assert TABLE1_HYPERPARAMS["bert-base"].batch_size == 32
        assert TABLE1_HYPERPARAMS["bert-base"].learning_rate == 2e-5
        assert TABLE1_HYPERPARAMS["bert-large"].learning_rate == 5e-6
        assert TABLE1_HYPERPARAMS["gpt2"].batch_size == 2
        assert TABLE1_HYPERPARAMS["llama3-1b"].learning_rate == 2e-5
        assert TABLE1_HYPERPARAMS["vit-base"].batch_size == 10
        assert all(p.optimizer == "AdamW" for p in TABLE1_HYPERPARAMS.values())


class TestDownscaling:
    def test_preserves_ffn_ratio(self):
        cfg = downscaled_config("bert-base", d_model=32)
        assert cfg.d_ff == 4 * 32  # BERT uses 4x expansion

    def test_preserves_head_divisibility(self):
        for name in PAPER_MODELS:
            cfg = downscaled_config(name, d_model=32)
            assert cfg.d_model % cfg.num_heads == 0

    def test_mini_model_is_trainable_size(self):
        from repro.nn import EncoderClassifier

        cfg = downscaled_config("bert-base", d_model=32, num_layers=2)
        model = EncoderClassifier(cfg)
        assert model.num_parameters() < 200_000
