"""Typed experiment results and result-series export.

A :class:`Result` is one completed experiment point (spec + value +
provenance); a :class:`Series` is an ordered collection of results — one
sweep — with JSON/CSV export and small tabulation helpers used by the
figure benchmarks.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.exp.spec import ExperimentSpec, canonical_json

__all__ = ["Result", "Series"]


@dataclass(frozen=True)
class Result:
    """One experiment point: what ran, what it produced, where it came from."""

    spec: ExperimentSpec
    value: Any
    elapsed_s: float = 0.0
    cached: bool = False
    key: str = ""

    @property
    def experiment(self) -> str:
        return self.spec.experiment

    @property
    def params(self) -> Mapping[str, Any]:
        return self.spec.params

    def __getitem__(self, field_name: str) -> Any:
        """Index into the value payload: ``result["baseline"]``."""
        return self.value[field_name]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "value": self.value,
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Result":
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            value=payload.get("value"),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            cached=bool(payload.get("cached", False)),
            key=str(payload.get("key", "")),
        )


@dataclass
class Series:
    """An ordered sweep of results with export helpers."""

    results: list[Result] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]

    # ------------------------------------------------------------------
    def values(self, field_name: str) -> list[Any]:
        """The given value field across all results, in sweep order."""
        return [r.value[field_name] for r in self.results]

    def by_param(self, param: str) -> dict[Any, Result]:
        """Index results by one sweep parameter (must be unique per point)."""
        indexed: dict[Any, Result] = {}
        for result in self.results:
            key = result.params.get(param)
            if key in indexed:
                raise ValueError(f"parameter {param!r} is not unique across the series")
            indexed[key] = result
        return indexed

    def table(self, x_param: str, field_name: str) -> dict[Any, Any]:
        """``{point[x_param]: value[field_name]}`` across the series."""
        return {
            r.params.get(x_param): r.value[field_name] for r in self.results
        }

    def total_elapsed(self) -> float:
        return sum(r.elapsed_s for r in self.results)

    # ------------------------------------------------------------------
    def to_json(self, path: str | Path | None = None) -> str:
        """JSON document (list of result dicts); optionally written to disk."""
        text = json.dumps([r.to_dict() for r in self.results], indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "Series":
        path = Path(text_or_path) if not str(text_or_path).lstrip().startswith("[") else None
        text = path.read_text(encoding="utf-8") if path is not None else str(text_or_path)
        return cls(results=[Result.from_dict(item) for item in json.loads(text)])

    def to_csv(self, path: str | Path | None = None) -> str:
        """Flat CSV: one row per point, params + scalar value fields.

        Non-scalar value fields (lists, nested dicts) are JSON-encoded in
        their cell so the table stays loadable by spreadsheet tools.
        """
        param_keys = sorted({k for r in self.results for k in r.params})
        value_keys = sorted(
            {
                k
                for r in self.results
                if isinstance(r.value, Mapping)
                for k in r.value
            }
        )
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "experiment",
                "seed",
                *param_keys,
                *(f"value.{k}" for k in value_keys),
                "elapsed_s",
                "cached",
            ]
        )
        for r in self.results:
            row: list[Any] = [r.experiment, r.spec.seed]
            row += [_cell(r.params.get(k)) for k in param_keys]
            value = r.value if isinstance(r.value, Mapping) else {}
            row += [_cell(value.get(k)) for k in value_keys]
            row += [f"{r.elapsed_s:.6f}", int(r.cached)]
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


def _cell(value: Any) -> Any:
    """CSV cell encoding: scalars verbatim, containers as canonical JSON."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, (Mapping, Sequence)):
        return canonical_json(value)
    return str(value)
