"""Model-level figure studies (training + hybrid-PIM deployment sweeps).

Each function reproduces one accuracy-class figure of the paper as a
registered experiment: JSON-serialisable params in, JSON-serialisable
payload out.  The figure benchmarks and example scripts drive these
through :class:`repro.exp.Runner`, which adds caching and process
fan-out; the functions themselves stay pure and deterministic in
``(params, seed)``.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

from repro.core import HyFlexPim
from repro.datasets import make_glue_task, make_vision_dataset, wikitext2_like
from repro.datasets.synthetic_vision import VisionSpec
from repro.exp.builders import train_decoder_lm, train_encoder, train_vit
from repro.exp.registry import experiment
from repro.eval import evaluate_classifier
from repro.nn import EncoderClassifier
from repro.pim import MagnitudeProtectedLinear
from repro.svd import apply_svd, finetune, select_elements_by_magnitude, sigma_gradient_snapshot

__all__ = ["fig11_redistribution", "fig12_protection", "fig13_policies", "selfcheck"]

DEFAULT_RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)

# Evaluator names for the synthetic GLUE metrics (spec.metric -> evaluate()).
_METRIC_MAP = {"matthews": "matthews", "pearson": "pearson"}


def _eval_metric(spec_metric: str) -> str:
    return _METRIC_MAP.get(spec_metric, "accuracy")


@experiment(
    "selfcheck",
    grid={"n": (4, 8)},
    smoke={"n": 4},
)
def selfcheck(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Milliseconds-fast deterministic series (runner/cache plumbing check)."""
    n = int(params.get("n", 8))
    scale = float(params.get("scale", 1.0))
    rng = np.random.default_rng(seed)
    values = (scale * rng.standard_normal(n)).round(8)
    return {"n": n, "seed": seed, "values": values.tolist(), "total": float(values.sum())}


# ----------------------------------------------------------------------
@experiment(
    "fig11",
    smoke={"train_epochs": 1, "finetune_epochs": 1, "num_layers": 1},
)
def fig11_redistribution(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 11: gradient distributions before SVD, after SVD, after fine-tune."""
    task = params.get("task", "sst2")
    num_layers = int(params.get("num_layers", 2))
    train_epochs = int(params.get("train_epochs", 5))
    finetune_epochs = int(params.get("finetune_epochs", 2))

    dtype = params.get("train_dtype", "float32")
    data = make_glue_task(task, seed=seed)
    model = train_encoder(
        data, num_layers=num_layers, epochs=train_epochs, seed=seed, compute_dtype=dtype
    )
    state = model.state_dict()

    # (a) dense weight-element gradients of one FC layer.
    from repro.nn import cross_entropy

    inputs, targets = data.train.inputs[:64], data.train.targets[:64].astype(int)
    loss = cross_entropy(model(inputs), targets)
    model.zero_grad()
    loss.backward()
    dense = np.abs(model.blocks[0].attn.w_q.weight.grad[0])

    # (b) full-rank SVD, no fine-tuning.
    model_b = EncoderClassifier(model.config)
    model_b.load_state_dict(state)
    apply_svd(model_b, rank=model.config.d_model)
    snap_b = sigma_gradient_snapshot(model_b, data.train, "classification", max_batches=4)

    # (c) hard threshold + fine-tune (gradient redistribution).
    model_c = EncoderClassifier(model.config)
    model_c.load_state_dict(state)
    layers_c = apply_svd(model_c)
    finetune(
        model_c,
        data.train,
        "classification",
        epochs=finetune_epochs,
        batch_size=32,
        learning_rate=2e-3,
        compute_dtype=dtype,
    )
    return {
        "task": task,
        "dense_spread": float(dense.max() / max(dense.mean(), 1e-12)),
        "grads_b": {name: np.asarray(g).tolist() for name, g in snap_b.per_layer.items()},
        "grads_c": {
            name: np.asarray(layer.mean_sigma_gradient()).tolist()
            for name, layer in layers_c.items()
        },
    }


# ----------------------------------------------------------------------
def _fig12_encoder(params: dict[str, Any], task: str, seed: int) -> dict[str, Any]:
    rates = tuple(params.get("rates", DEFAULT_RATES))
    dtype = params.get("train_dtype", "float32")
    data = make_glue_task(task, seed=seed)
    regression = data.spec.kind == "regression"
    model = train_encoder(
        data,
        num_layers=int(params.get("num_layers", 3)),
        epochs=int(params.get("train_epochs", 5)),
        regression=regression,
        seed=seed,
        compute_dtype=dtype,
    )
    hfp = HyFlexPim(
        protect_fraction=0.1,
        epochs=int(params.get("compile_epochs", 2)),
        batch_size=32,
        learning_rate=2e-3,
        train_dtype=dtype,
        seed=seed,
    )
    task_type = "regression" if regression else "classification"
    compiled = hfp.compile(model, data.train, task_type=task_type)
    metric = _eval_metric(data.spec.metric)
    baseline = hfp.ideal_reference(compiled, data.test, metric=metric)
    sweep = hfp.protection_sweep(compiled, data.test, rates=rates, metric=metric)
    return {
        "metric": data.spec.metric,
        "baseline": float(baseline),
        "rates": list(rates),
        "scores": [float(sweep[r]) for r in rates],
    }


def _fig12_lm(params: dict[str, Any], seed: int) -> dict[str, Any]:
    rates = tuple(params.get("rates", DEFAULT_RATES))
    dtype = params.get("train_dtype", "float32")
    corpus = wikitext2_like(seed=seed)
    model = train_decoder_lm(
        corpus,
        num_layers=int(params.get("num_layers", 3)),
        epochs=int(params.get("train_epochs", 3)),
        seed=seed,
        compute_dtype=dtype,
    )
    hfp = HyFlexPim(
        protect_fraction=0.2,
        epochs=int(params.get("compile_epochs", 1)),
        batch_size=16,
        learning_rate=2e-3,
        train_dtype=dtype,
        seed=seed,
    )
    compiled = hfp.compile(model, corpus.train, task_type="lm")
    baseline = hfp.ideal_reference(compiled, corpus.test)
    sweep = hfp.protection_sweep(compiled, corpus.test, rates=rates)
    return {
        "metric": "loss",
        "baseline": float(baseline),
        "rates": list(rates),
        "scores": [float(sweep[r]) for r in rates],
    }


def _fig12_vit(params: dict[str, Any], seed: int) -> dict[str, Any]:
    rates = tuple(params.get("rates", DEFAULT_RATES))
    data = make_vision_dataset(
        VisionSpec(
            image_size=16,
            train_size=int(params.get("train_size", 300)),
            test_size=int(params.get("test_size", 100)),
            noise_std=0.2,
        ),
        seed=seed,
    )
    dtype = params.get("train_dtype", "float32")
    model = train_vit(
        data,
        num_layers=int(params.get("num_layers", 2)),
        epochs=int(params.get("train_epochs", 5)),
        seed=seed,
        compute_dtype=dtype,
    )
    hfp = HyFlexPim(
        protect_fraction=0.05,
        epochs=int(params.get("compile_epochs", 2)),
        batch_size=32,
        learning_rate=1e-3,
        train_dtype=dtype,
        seed=seed,
    )
    compiled = hfp.compile(model, data.train, task_type="classification")
    baseline = hfp.ideal_reference(compiled, data.test)
    sweep = hfp.protection_sweep(compiled, data.test, rates=rates)
    return {
        "metric": "accuracy",
        "baseline": float(baseline),
        "rates": list(rates),
        "scores": [float(sweep[r]) for r in rates],
    }


@experiment(
    "fig12",
    grid={"workload": ("sst2", "cola", "mrpc", "lm", "vit")},
    eval_params=("rates",),
    smoke={
        "workload": "sst2",
        "rates": (0.0, 0.1, 1.0),
        "train_epochs": 1,
        "compile_epochs": 1,
        "num_layers": 1,
    },
)
def fig12_protection(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 12: metric vs SLC protection rate for one workload.

    ``workload`` selects the model family: a GLUE task name trains the mini
    encoder, ``"lm"`` the WikiText-2-like decoder, ``"vit"`` the CIFAR-10-like
    vision transformer.  Tunable sizes (``num_layers``, ``train_epochs``,
    ``compile_epochs``, ``rates``) exist so smoke/CI runs stay cheap; all
    training runs under the float32 tensor-dtype policy by default
    (``train_dtype="float64"`` restores the historical precision).
    """
    workload = params.get("workload", "sst2")
    if workload == "lm":
        payload = _fig12_lm(params, seed)
    elif workload == "vit":
        payload = _fig12_vit(params, seed)
    else:
        payload = _fig12_encoder(params, workload, seed)
    payload["workload"] = workload
    return payload


# ----------------------------------------------------------------------
def _magnitude_sweep(
    model: EncoderClassifier, state: dict, data, rates, metric: str
) -> list[float]:
    """Dense (no-SVD) deployment with elementwise |w| protection."""
    scores = []
    for rate in rates:
        deployed = EncoderClassifier(model.config)
        deployed.load_state_dict(state)
        for name, linear in list(deployed.iter_static_linears()):
            mask = select_elements_by_magnitude(linear.weight.data, rate, norm="l1")
            replacement = MagnitudeProtectedLinear(
                linear.weight.data,
                linear.bias.data if linear.bias is not None else None,
                mask,
                seed=zlib.crc32(name.encode()) % 1000,
            )
            deployed.replace_static_linear(name, replacement)
        scores.append(float(evaluate_classifier(deployed, data.test, metric=metric)))
    return scores


@experiment(
    "fig13",
    grid={"task": ("mrpc", "cola")},
    eval_params=("rates", "policies"),
    smoke={
        "task": "mrpc",
        "rates": (0.0, 0.1, 1.0),
        "train_epochs": 1,
        "compile_epochs": 1,
        "num_layers": 1,
    },
)
def fig13_policies(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fig. 13: SLC selection policies (magnitude vs rank vs gradient).

    ``policies`` limits the comparison (default all three); the magnitude
    baseline protects dense weight elements without SVD, the rank and
    gradient policies operate on the factored ranks.
    """
    task = params.get("task", "mrpc")
    rates = tuple(params.get("rates", DEFAULT_RATES))
    policies = tuple(params.get("policies", ("magnitude", "rank", "gradient")))

    dtype = params.get("train_dtype", "float32")
    data = make_glue_task(task, seed=seed)
    metric = _eval_metric(data.spec.metric)
    model = train_encoder(
        data,
        num_layers=int(params.get("num_layers", 3)),
        epochs=int(params.get("train_epochs", 6)),
        seed=seed,
        compute_dtype=dtype,
    )
    state = model.state_dict()

    series: dict[str, list[float]] = {}
    if "magnitude" in policies:
        series["magnitude"] = _magnitude_sweep(model, state, data, rates, metric)

    hfp = HyFlexPim(
        protect_fraction=0.1,
        epochs=int(params.get("compile_epochs", 2)),
        batch_size=32,
        learning_rate=2e-3,
        train_dtype=dtype,
        seed=seed,
    )
    compiled = hfp.compile(model, data.train, task_type="classification")
    baseline = hfp.ideal_reference(compiled, data.test, metric=metric)
    for policy in ("rank", "gradient"):
        if policy in policies:
            sweep = hfp.protection_sweep(
                compiled, data.test, rates=rates, metric=metric, policy=policy
            )
            series[policy] = [float(sweep[r]) for r in rates]

    return {
        "task": task,
        "metric": metric,
        "baseline": float(baseline),
        "rates": list(rates),
        "series": series,
    }
