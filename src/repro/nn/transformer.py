"""Transformer model family used throughout the reproduction.

Three variants mirror the paper's benchmark suite (Section 5.1):

- :class:`EncoderClassifier` — BERT-like encoder for GLUE-style sequence
  classification / regression,
- :class:`DecoderLM` — GPT-like causal language model (WikiText-2 / PTB),
- :class:`VisionTransformer` — ViT-like patch classifier (CIFAR-10).

All share :class:`TransformerBlock` (MHA + FFN with pre-activation residual
connections) so the SVD gradient-redistribution pipeline can treat every
static linear layer uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.modules import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    ReLU,
)
from repro.nn.tensor import Tensor, concatenate

__all__ = [
    "TransformerConfig",
    "TransformerBlock",
    "EncoderClassifier",
    "DecoderLM",
    "VisionTransformer",
]


@dataclass
class TransformerConfig:
    """Structural hyper-parameters shared by all model variants."""

    vocab_size: int = 100
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    d_ff: int = 256
    max_seq_len: int = 64
    dropout: float = 0.0
    activation: str = "gelu"
    num_classes: int = 2
    # Vision-specific fields (ignored by text models).
    image_size: int = 32
    patch_size: int = 8
    in_channels: int = 3
    seed: int = 0
    name: str = "transformer"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.activation not in ("gelu", "relu"):
            raise ValueError(f"unsupported activation {self.activation!r}")
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        return self.in_channels * self.patch_size * self.patch_size


def _activation(config: TransformerConfig) -> Module:
    return GELU() if config.activation == "gelu" else ReLU()


class FeedForward(Module):
    """Two-layer FFN (FFN1: D_h -> D_ff, FFN2: D_ff -> D_h) from Fig. 1."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.ffn1 = Linear(config.d_model, config.d_ff, rng=rng)
        self.act = _activation(config)
        self.ffn2 = Linear(config.d_ff, config.d_model, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.ffn2(self.act(self.ffn1(x))))


class TransformerBlock(Module):
    """Pre-norm Transformer block: MHA + FFN with residual connections."""

    def __init__(
        self, config: TransformerConfig, rng: np.random.Generator, causal: bool = False
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(config.d_model)
        self.attn = MultiHeadAttention(
            config.d_model, config.num_heads, dropout=config.dropout, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(config.d_model)
        self.ffn = FeedForward(config, rng)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.dropout(self.attn(self.ln1(x), attention_mask=attention_mask))
        x = x + self.ffn(self.ln2(x))
        return x

    def static_linears(self) -> dict[str, Linear]:
        """All six static-weight linear layers of this block (Fig. 9)."""
        linears = dict(self.attn.static_linears())
        linears["ffn1"] = self.ffn.ffn1
        linears["ffn2"] = self.ffn.ffn2
        return linears


class _TransformerBase(Module):
    """Shared plumbing: block stack plus static-linear enumeration."""

    config: TransformerConfig
    blocks: ModuleList

    def iter_static_linears(self):
        """Yield (dotted_name, Linear) for every static weight matrix.

        These are exactly the matrices the paper sends through SVD + gradient
        redistribution and stores in analog RRAM (Section 3.3).
        """
        for i, block in enumerate(self.blocks):
            for name, linear in block.static_linears().items():
                yield f"blocks.{i}.{name}", linear

    def replace_static_linear(self, dotted_name: str, replacement: Module) -> None:
        """Swap a static linear (by dotted name) for a factored/PIM variant."""
        parts = dotted_name.split(".")
        if parts[0] != "blocks":
            raise KeyError(f"not a block-level linear: {dotted_name}")
        block = self.blocks[int(parts[1])]
        leaf = parts[2]
        if leaf in ("w_q", "w_k", "w_v", "w_proj"):
            setattr(block.attn, leaf, replacement)
        elif leaf in ("ffn1", "ffn2"):
            setattr(block.ffn, leaf, replacement)
        else:
            raise KeyError(f"unknown static linear {dotted_name}")


class EncoderClassifier(_TransformerBase):
    """BERT-like encoder with a [CLS]-pooled classification/regression head."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=False) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.head = Linear(config.d_model, config.num_classes, rng=rng)

    def forward(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Return logits of shape (batch, num_classes).

        ``token_ids`` is an integer array (batch, seq).  Position 0 acts as
        the [CLS] pooling position, as in BERT.
        """
        token_ids = np.asarray(token_ids)
        batch, seq = token_ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max {self.config.max_seq_len}")
        positions = np.arange(seq)
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x, attention_mask=attention_mask)
        x = self.final_norm(x)
        cls = x[:, 0, :]
        return self.head(cls)


class DecoderLM(_TransformerBase):
    """GPT-like causal language model with tied-free LM head."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=True) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Return next-token logits of shape (batch, seq, vocab)."""
        token_ids = np.asarray(token_ids)
        _, seq = token_ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max {self.config.max_seq_len}")
        positions = np.arange(seq)
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    def generate(
        self, prompt: np.ndarray, max_new_tokens: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Greedy (or sampled) autoregressive generation for demos/tests."""
        tokens = np.asarray(prompt).reshape(1, -1)
        for _ in range(max_new_tokens):
            window = tokens[:, -self.config.max_seq_len :]
            logits = self.forward(window).data[0, -1]
            if rng is None:
                next_token = int(np.argmax(logits))
            else:
                probs = np.exp(logits - logits.max())
                probs /= probs.sum()
                next_token = int(rng.choice(len(probs), p=probs))
            tokens = np.concatenate([tokens, [[next_token]]], axis=1)
        return tokens[0]


class VisionTransformer(_TransformerBase):
    """ViT-like classifier over non-overlapping image patches."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.patch_projection = Linear(config.patch_dim, config.d_model, rng=rng)
        self.cls_token = Embedding(1, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.num_patches + 1, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=False) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.head = Linear(config.d_model, config.num_classes, rng=rng)

    @staticmethod
    def patchify(images: np.ndarray, patch_size: int) -> np.ndarray:
        """Convert (B, C, H, W) images into (B, num_patches, patch_dim)."""
        batch, channels, height, width = images.shape
        if height % patch_size or width % patch_size:
            raise ValueError("image dimensions must be divisible by patch_size")
        ph, pw = height // patch_size, width // patch_size
        patches = images.reshape(batch, channels, ph, patch_size, pw, patch_size)
        patches = patches.transpose(0, 2, 4, 1, 3, 5)
        return patches.reshape(batch, ph * pw, channels * patch_size * patch_size)

    def forward(self, images: np.ndarray) -> Tensor:
        """Return logits (batch, num_classes) for images (B, C, H, W)."""
        patches = self.patchify(np.asarray(images), self.config.patch_size)
        batch = patches.shape[0]
        x = self.patch_projection(Tensor(patches))
        cls = self.cls_token(np.zeros((batch, 1), dtype=int))
        x = concatenate([cls, x], axis=1)
        positions = np.arange(self.config.num_patches + 1)
        x = x + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.head(x[:, 0, :])
