"""Heterogeneous meshes, batched pipeline handoffs, sharded fused traces.

Three ISSUE-7 contracts live here:

- :class:`~repro.dist.mesh.DeviceMesh` accepts per-chip PU budgets
  (``chip_pus``) and :meth:`~repro.dist.plan.ShardPlan.build` honours them:
  global PU ids stay disjoint across unequal chips and a chip whose budget
  cannot host ``tensor_parallel`` groups raises a :class:`ValueError`
  naming that chip.
- :meth:`~repro.dist.mesh.DeviceMesh.record_batched_pipeline_handoff`
  ships a whole decode step's rows in **one** launch per boundary — same
  bytes as per-token accounting, ``transfers == boundaries``.
- The batched≡per-row serving contract survives sharding: a calibrated
  crossbar :class:`~repro.pim.hybrid.HybridLinear` forwarded once under
  ``KernelPolicy(mode="gemm")`` (the fused plane-GEMM) equals the same
  deployment forwarded row by row under the per-row fast kernel — bitwise
  noiseless (sha256-pinned, invariant across 1/2/4-way tensor
  parallelism) and allclose under calibrated programming noise.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.dist import DeviceMesh, ShardPlan
from repro.pim.hybrid import HybridLinear
from repro.rram import KernelPolicy, PlaneCache, kernel_policy, plane_cache_scope
from repro.rram.cell import CELL_TYPES
from repro.rram.crossbar import CrossbarConfig
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.svd.pipeline import LayerPlan

from tests.dist.test_plan import make_plans

CELLS = ["SLC", "MLC2", "MLC3", "MLC4"]
#: 1/2/4-way tensor parallelism (the golden-trace grid of the issue).
WAYS = (1, 2, 4)
#: Per-cell geometry mirroring tests/dist/test_sharded.py: SLC/MLC2 run the
#: paper arrays (noiseless => saturation-free), MLC3/MLC4 use 4-row arrays
#: so every shard width in WAYS lands on whole row tiles.
CELL_CONFIGS = {
    "SLC": CrossbarConfig(),
    "MLC2": CrossbarConfig(),
    "MLC3": CrossbarConfig(rows=4, cols=32),
    "MLC4": CrossbarConfig(rows=4, cols=32),
}
CELL_RANKS = {"SLC": 24, "MLC2": 24, "MLC3": 32, "MLC4": 32}
CELL_PROTECTED = {"SLC": 6, "MLC2": 6, "MLC3": 8, "MLC4": 8}


# ----------------------------------------------------------------------
# Heterogeneous DeviceMesh
# ----------------------------------------------------------------------
class TestHeterogeneousMesh:
    def test_defaults_are_homogeneous(self):
        mesh = DeviceMesh(num_chips=3)
        assert not mesh.is_heterogeneous
        assert mesh.chip_pus == (24, 24, 24)
        assert mesh.pus_per_chip == 24
        assert mesh.total_pus == 72
        assert "pus_per_chip=24" in repr(mesh)

    def test_explicit_uniform_budgets_stay_homogeneous(self):
        mesh = DeviceMesh(num_chips=2, chip_pus=[8, 8])
        assert not mesh.is_heterogeneous
        assert mesh.pus_per_chip == 8

    def test_per_chip_budgets(self):
        mesh = DeviceMesh(num_chips=3, chip_pus=[24, 8, 4])
        assert mesh.is_heterogeneous
        assert mesh.total_pus == 36
        assert [mesh.pu_budget(c) for c in range(3)] == [24, 8, 4]
        assert "chip_pus=[24, 8, 4]" in repr(mesh)

    def test_pus_per_chip_refuses_heterogeneous(self):
        mesh = DeviceMesh(num_chips=2, chip_pus=[24, 4])
        with pytest.raises(ValueError, match="pu_budget"):
            mesh.pus_per_chip

    def test_budget_list_length_must_match(self):
        with pytest.raises(ValueError, match="one PU budget per chip"):
            DeviceMesh(num_chips=3, chip_pus=[24, 24])

    def test_budgets_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            DeviceMesh(num_chips=2, chip_pus=[24, 0])

    def test_pu_budget_range_checked(self):
        mesh = DeviceMesh(num_chips=2)
        with pytest.raises(ValueError, match="out of range"):
            mesh.pu_budget(2)
        with pytest.raises(ValueError, match="out of range"):
            mesh.pu_budget(-1)


class TestBatchedPipelineHandoff:
    def test_same_bytes_fewer_launches_than_per_token(self):
        per_token, batched = DeviceMesh(num_chips=3), DeviceMesh(num_chips=3)
        rows, hidden = 8, 16
        for _ in range(rows):
            per_token.record_pipeline_handoff(hidden, tokens=1)
        batched.record_batched_pipeline_handoff(hidden, rows=rows)
        a, b = per_token.traffic["pcie6"], batched.traffic["pcie6"]
        assert b.num_bytes == a.num_bytes == rows * 2 * hidden
        assert b.transfers == 2  # one launch per boundary for the whole step
        assert a.transfers == rows * 2
        # Fewer launch overheads => strictly cheaper in cycles.
        assert b.cycles < a.cycles

    def test_explicit_boundaries_override(self):
        mesh = DeviceMesh(num_chips=4)
        mesh.record_batched_pipeline_handoff(8, rows=3, boundaries=1)
        ledger = mesh.traffic["pcie6"]
        assert ledger.num_bytes == 3 * 8
        assert ledger.transfers == 1

    def test_degenerate_steps_record_nothing(self):
        mesh = DeviceMesh(num_chips=2)
        assert mesh.record_batched_pipeline_handoff(8, rows=0) == 0.0
        assert mesh.record_batched_pipeline_handoff(8, rows=4, boundaries=0) == 0.0
        assert DeviceMesh(num_chips=1).record_batched_pipeline_handoff(8, rows=4) == 0.0
        assert mesh.traffic["pcie6"].num_bytes == 0.0


# ----------------------------------------------------------------------
# ShardPlan over heterogeneous meshes
# ----------------------------------------------------------------------
class TestHeterogeneousShardPlan:
    def test_chip_local_pu_ids_respect_budgets(self, rng):
        plans = make_plans(rng, num_blocks=4)
        mesh = DeviceMesh(num_chips=2, chip_pus=[24, 4])
        plan = ShardPlan.build(plans, mesh, tensor_parallel=2)
        assert plan.chips_used == 2
        chip0_ids, chip1_ids = set(), set()
        for assignment in plan.layers.values():
            ids = assignment.pus_assigned()
            (chip0_ids if assignment.chip == 0 else chip1_ids).update(ids)
        # Chip 0 owns global ids [0, 24); chip 1 the trailing [24, 28).
        assert chip0_ids and chip0_ids <= set(range(24))
        assert chip1_ids and chip1_ids <= set(range(24, 28))

    def test_shard_groups_partition_each_chips_budget(self, rng):
        plans = make_plans(rng, num_blocks=2)
        mesh = DeviceMesh(num_chips=2, chip_pus=[8, 4])
        plan = ShardPlan.build(plans, mesh, tensor_parallel=2)
        for assignment in plan.layers.values():
            base = 0 if assignment.chip == 0 else 8
            group_width = mesh.pu_budget(assignment.chip) // 2
            for shard, ids in enumerate(assignment.pu_ids):
                lo = base + shard * group_width
                assert set(ids) <= set(range(lo, lo + group_width))

    def test_exhausted_chip_named_in_error(self, rng):
        plans = make_plans(rng, num_blocks=4)
        mesh = DeviceMesh(num_chips=2, chip_pus=[24, 1])
        with pytest.raises(ValueError, match=r"chip 1's budget of 1"):
            ShardPlan.build(plans, mesh, tensor_parallel=2)

    def test_homogeneous_build_unchanged_by_budget_plumbing(self, rng):
        plans = make_plans(rng, num_blocks=2)
        explicit = ShardPlan.build(
            plans, DeviceMesh(num_chips=2, chip_pus=[24, 24]), tensor_parallel=2
        )
        implicit = ShardPlan.build(
            plans, DeviceMesh(num_chips=2), tensor_parallel=2
        )
        for name in plans:
            assert explicit.layers[name].pu_ids == implicit.layers[name].pu_ids
            assert explicit.layers[name].chip == implicit.layers[name].chip


# ----------------------------------------------------------------------
# Sharded batched ≡ per-row golden traces (cells × noise × ways)
# ----------------------------------------------------------------------
def _make_layer_plan(cell_name: str) -> LayerPlan:
    rank = CELL_RANKS[cell_name]
    rng = np.random.default_rng(0xD157 + rank)
    mask = np.zeros(rank, dtype=bool)
    mask[: CELL_PROTECTED[cell_name]] = True
    return LayerPlan(
        name="blocks.0.test",
        a_matrix=rng.normal(size=(rank, 40)) / np.sqrt(40),
        b_matrix=rng.normal(size=(48, rank)) / np.sqrt(rank),
        bias=rng.normal(size=48),
        protected_ranks=mask,
        sigma_gradients=rng.random(rank),
    )


def _deployed_layer(cell_name: str, noisy: bool, ways: int) -> HybridLinear:
    layer = HybridLinear(
        _make_layer_plan(cell_name),
        noise=DEFAULT_NOISE if noisy else NoiseSpec.noiseless(),
        mode="crossbar",
        mlc_cell=CELL_TYPES[cell_name],
        config=CELL_CONFIGS[cell_name],
        seed=3,
    )
    layer.deploy(DeviceMesh(), tensor_parallel=ways)
    # Freeze activation scales on the probe batch: per-row replay must
    # quantize each row exactly like the fused batch does.
    layer.begin_calibration()
    layer.forward(_probe(cell_name))
    layer.finish_calibration()
    return layer


def _probe(cell_name: str) -> np.ndarray:
    rng = np.random.default_rng(0xBA7C4 + CELL_TYPES[cell_name].bits)
    return rng.normal(size=(6, 40))


def _fused_forward(layer: HybridLinear, x: np.ndarray) -> np.ndarray:
    with kernel_policy(KernelPolicy(mode="gemm")), plane_cache_scope(PlaneCache()):
        return layer.forward(x).data.copy()


def _per_row_forward(layer: HybridLinear, x: np.ndarray) -> np.ndarray:
    with kernel_policy(KernelPolicy(mode="fast")):
        return np.vstack([layer.forward(x[i : i + 1]).data for i in range(len(x))])


class TestShardedBatchedGoldenTraces:
    #: sha256 of the fused noiseless float64 output bytes per cell.  One
    #: hash covers all of WAYS: with tile-aligned shard boundaries the
    #: noiseless sharded forward is bitwise ways-invariant, so any drift in
    #: either the fused kernel or the shard recombination trips this.
    GOLDEN_FUSED_SHA256 = {
        "SLC": "4e896244a0e139040ae3325621951ea988d99c96e5c50d88f7e7091463c34158",
        "MLC2": "c73fb92ea38b0d5b2daa8c22a1655839a1e0835555a9d0f99ffede9c50727447",
        "MLC3": "094f7b036624ee60dad95c3fa914ddc5e8b12518f846b3c8783c8678104390d0",
        "MLC4": "3f79b68eef6a3bad673cef7fb06018cbda7373a71b7a0d4331ce8acd000a3687",
    }

    @pytest.mark.parametrize("ways", WAYS)
    @pytest.mark.parametrize("cell_name", CELLS)
    def test_noiseless_fused_equals_per_row_bitwise(self, cell_name, ways):
        x = _probe(cell_name)
        layer = _deployed_layer(cell_name, noisy=False, ways=ways)
        fused = _fused_forward(layer, x)
        per_row = _per_row_forward(layer, x)
        np.testing.assert_array_equal(fused, per_row)
        digest = hashlib.sha256(np.ascontiguousarray(fused).tobytes()).hexdigest()
        assert digest == self.GOLDEN_FUSED_SHA256[cell_name]

    @pytest.mark.parametrize("ways", WAYS)
    @pytest.mark.parametrize("cell_name", CELLS)
    def test_noisy_fused_close_to_per_row(self, cell_name, ways):
        """Calibrated noise draws are seed-deterministic, shared by both
        dispatches; only BLAS summation order inside the fused matmul
        differs, so the traces stay allclose."""
        x = _probe(cell_name)
        layer = _deployed_layer(cell_name, noisy=True, ways=ways)
        fused = _fused_forward(layer, x)
        per_row = _per_row_forward(layer, x)
        np.testing.assert_allclose(fused, per_row, rtol=1e-9, atol=1e-9)

    def test_fused_forward_is_deterministic(self):
        layer = _deployed_layer("MLC2", noisy=True, ways=2)
        x = _probe("MLC2")
        np.testing.assert_array_equal(
            _fused_forward(layer, x), _fused_forward(layer, x)
        )
