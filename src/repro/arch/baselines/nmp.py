"""NMP baseline: TransPIM-style near-memory processing on HBM (HPCA'22).

Function-in-memory DRAM places ALUs next to HBM banks: data movement is
bank-local (cheap relative to off-chip DRAM) but computation still happens
in digital logic *next to* — not inside — the arrays, with bank-level MACs
that are less energy-efficient than a dedicated datapath.  It lands between
the non-PIM baseline and true PIM in Figs. 14-15.
"""

from __future__ import annotations

from repro.arch.baselines.base import BaselineModel
from repro.arch.energy import EnergyBreakdown
from repro.models.configs import ModelSpec

__all__ = ["NmpBaseline"]


class NmpBaseline(BaselineModel):
    name = "nmp"

    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        macs = self._linear_macs(spec, seq_len)
        weight_bytes = self._weight_bytes(spec)
        breakdown = EnergyBreakdown()
        # Weights activate HBM rows once, then move bank-locally per use.
        breakdown.add("dram_access", weight_bytes * c.hbm_pj_per_byte)
        breakdown.add("sram_access", macs * c.nmp_local_pj_per_byte)
        breakdown.add("mac_digital", macs * c.nmp_mac_int8_pj)
        return breakdown

    def end_to_end_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        breakdown = self.linear_layers_energy(spec, seq_len)
        attn_macs = self._attention_macs(spec, seq_len)
        breakdown.add("mac_digital", attn_macs * c.nmp_mac_int8_pj)
        breakdown.add("sram_access", attn_macs * c.nmp_local_pj_per_byte)
        softmax_elems = float(spec.num_heads * seq_len**2 * spec.num_layers)
        breakdown.add("mac_digital", 5 * softmax_elems * c.nmp_mac_int8_pj)
        return breakdown

    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        # Bank-level parallelism gives NMP datapath-class compute throughput;
        # HBM bandwidth governs weight streaming (bank-local, so cheaper per
        # byte but the same per-token streaming pattern in decode).
        return self._streaming_time_s(spec, seq_len, mode, self.costs.hbm_bandwidth_gbps)
