"""Architecture-level comparison against the Section 5.3 baselines.

Regenerates, at paper scale (BERT-Large / GPT-2 / Llama3 dimensions), the
analytic results behind Figs. 14-17: linear-layer energy, end-to-end energy
improvement, throughput speedups and multi-chip scalability — all from
Table 2-derived component energies.  Each figure is one registered
``repro.exp`` experiment, so results land in the shared ``.repro_cache/``
and re-runs are instant.

Run:  python examples/accelerator_comparison.py
"""

from __future__ import annotations

from repro.arch import area_report
from repro.exp import ExperimentSpec, Runner


def main() -> None:
    runner = Runner()

    print("== Hardware roll-up (Table 2) ==")
    report = area_report()
    print(f"analog module {report.analog_module_mm2:.2f} mm^2 / {report.analog_module_mw:.0f} mW")
    print(f"digital module {report.digital_module_mm2:.2f} mm^2 / {report.digital_module_mw:.0f} mW")
    print(f"processing unit {report.pu_mm2:.1f} mm^2; chip {report.chip_mm2:.0f} mm^2 (65 nm)")

    print("\n== Linear-layer energy, normalized to non-PIM=100 (Fig. 14) ==")
    fig14 = runner.run(
        ExperimentSpec(
            "fig14",
            params={"model": "bert-large", "seq_lens": (128, 1024, 8192), "slc_rates": (0.05, 0.5)},
        )
    )
    columns = fig14["columns"]
    print(f"{'N':>6} " + " ".join(f"{c:>14}" for c in columns))
    for n, row in zip(fig14["seq_lens"], fig14["rows"]):
        print(f"{n:>6} " + " ".join(f"{v:>14.1f}" for v in row))

    print("\n== End-to-end energy improvement over baselines (Fig. 15) ==")
    fig15 = runner.run(
        ExperimentSpec(
            "fig15",
            params={"seq_lens": (128, 512, 1024), "cases": (("bert-large", 0.05), ("gpt2", 0.30))},
        )
    )
    for name, payload in fig15["improvements"].items():
        rate = payload["slc_rate"]
        for n, row in zip(fig15["seq_lens"], payload["rows"]):
            cells = ", ".join(f"{b} {v:.2f}x" for b, v in zip(fig15["baselines"], row))
            print(f"{name} N={n} @{int(rate * 100)}% SLC: {cells}")

    print("\n== Energy breakdown at N=1024 (Fig. 15b) ==")
    bert_rows = fig15["breakdowns"]["bert-large"]["rows"]
    shares = dict(zip(fig15["categories"], bert_rows[fig15["seq_lens"].index(1024)]))
    for category, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"  {category:>20}: {share * 100:5.1f}%")

    print("\n== Speedups (Fig. 16) ==")
    prefill = runner.run(
        ExperimentSpec(
            "fig16",
            params={"model": "bert-large", "mode": "prefill",
                    "seq_lens": (128, 1024), "rates": (0.05, 0.2, 0.5)},
        )
    )
    for name, rows in prefill["tables"].items():
        for n, row in zip(prefill["seq_lens"], rows):
            cells = ", ".join(
                f"{int(r * 100)}%:{v:.2f}x" for r, v in zip(prefill["rates"], row)
            )
            print(f"  vs {name} (BERT-Large prefill, N={n}): {cells}")
    decode = runner.run(
        ExperimentSpec(
            "fig16",
            params={"model": "gpt2", "mode": "decode", "seq_lens": (1024,), "rates": (0.2,)},
        )
    )
    print(f"  vs sprint (GPT-2 decode, N=1024, 20% SLC): {decode['tables']['sprint'][0][0]:.1f}x")

    print("\n== Scalability (Fig. 17) ==")
    fig17 = runner.run(
        ExperimentSpec("fig17", params={"seq_len": 8192, "slc_rate": 0.2, "chips": (2, 4, 8)})
    )
    ratio = fig17["tensor_parallel_ratio"]
    print(f"GPT-2: 2 PUs/layer gives {ratio:.2f}x (paper: 1.99x)")
    print(f"Llama3 minimum chips: {fig17['min_chips']} (paper: 2)")
    for report in fig17["scaling_curve"]:
        print(
            f"  Llama3 x{report['num_chips']} chips: "
            f"{report['normalized_throughput']:.2f}x vs dual, "
            f"weights {report['analog_demand_gb']:.2f} GB, "
            f"KV {report['digital_demand_gb']:.2f} GB, fits={report['fits']}"
        )


if __name__ == "__main__":
    main()
