"""Registry of named experiment functions.

An experiment is a plain function ``fn(params: dict, seed: int) -> dict``
returning a JSON-serializable payload.  Registering it by name makes it
addressable from :class:`~repro.exp.spec.ExperimentSpec` instances, the
multiprocessing workers (which re-resolve by name in the child process)
and the ``python -m repro.exp`` CLI.

The decorator also carries per-experiment metadata used by the CLI:

``grid``
    default sweep grid (``sweep NAME`` with no ``-g`` flags uses it);
``smoke``
    parameter overrides for the reduced-size CI smoke configuration
    (merged in by ``--smoke``);
``eval_params``
    parameters that only select what gets *evaluated* (not what gets
    trained/built) — excluded from per-point seed derivation so changing
    them never changes the underlying model.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "ExperimentDef",
    "available_experiments",
    "code_version",
    "experiment",
    "get_experiment",
]

ExperimentFn = Callable[[dict[str, Any], int], dict[str, Any]]

_REGISTRY: dict[str, "ExperimentDef"] = {}


@dataclass(frozen=True)
class ExperimentDef:
    """A registered experiment plus its CLI-facing metadata."""

    name: str
    fn: ExperimentFn
    description: str = ""
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    smoke: Mapping[str, Any] = field(default_factory=dict)
    eval_params: tuple[str, ...] = ()

    def __call__(self, params: dict[str, Any], seed: int) -> dict[str, Any]:
        return self.fn(params, seed)


def experiment(
    name: str,
    *,
    grid: Mapping[str, Sequence[Any]] | None = None,
    smoke: Mapping[str, Any] | None = None,
    eval_params: Sequence[str] = (),
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register ``fn`` under ``name``; re-registration overwrites (tests)."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[name] = ExperimentDef(
            name=name,
            fn=fn,
            description=inspect.getdoc(fn) or "",
            grid=dict(grid or {}),
            smoke=dict(smoke or {}),
            eval_params=tuple(eval_params),
        )
        return fn

    return register


def _ensure_builtin_studies() -> None:
    """Import the bundled figure studies so their registrations exist."""
    # Imported lazily to avoid a hard cycle (studies import repro.exp.*),
    # and re-run in worker processes that start with an empty registry.
    import repro.exp.studies_api  # noqa: F401
    import repro.exp.studies_arch  # noqa: F401
    import repro.exp.studies_bench  # noqa: F401
    import repro.exp.studies_dist  # noqa: F401
    import repro.exp.studies_model  # noqa: F401


def get_experiment(name: str) -> ExperimentDef:
    """Resolve a registered experiment, loading the bundled studies first."""
    _ensure_builtin_studies()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown experiment {name!r}; registered: {known}") from None


def available_experiments() -> dict[str, ExperimentDef]:
    """All registered experiments, name -> definition."""
    _ensure_builtin_studies()
    return dict(sorted(_REGISTRY.items()))


@functools.lru_cache(maxsize=1)
def _package_fingerprint() -> str:
    """sha256 over every ``repro`` source file (computed once per process).

    The studies delegate almost all behaviour to the library (builders,
    ``repro.core``, ``repro.svd``, ...), so a per-study-module hash would
    happily replay stale cached results after a library edit.  Hashing the
    whole package is conservative — any source change invalidates every
    cached result — which is the correct trade for an experiment log.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    found = False
    try:
        for path in sorted(root.rglob("*.py")):
            found = True
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    except OSError:
        found = False
    if not found:
        # Source unavailable (e.g. frozen install): the release version is
        # the best remaining proxy.
        return f"repro-{repro.__version__}"
    return digest.hexdigest()[:16]


def code_version(defn: ExperimentDef) -> str:
    """Cache-invalidating fingerprint of the code behind an experiment."""
    return _package_fingerprint()
