"""Tests for the NOR-gate digital PIM primitive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim import (
    COLUMNS_PER_NOR,
    CYCLES_PER_ROW,
    NOR_OPS_PER_INT8_MULT,
    NorCounter,
    full_adder,
    multiply_int8,
    nor,
    nor_and,
    nor_not,
    nor_or,
    nor_xor,
    ripple_add,
)


def bits_of(value: int, width: int) -> np.ndarray:
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.int8)


class TestGates:
    def test_nor_truth_table(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        np.testing.assert_array_equal(nor(a, b), [1, 0, 0, 0])

    def test_derived_gates(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        np.testing.assert_array_equal(nor_not(a), 1 - a)
        np.testing.assert_array_equal(nor_or(a, b), a | b)
        np.testing.assert_array_equal(nor_and(a, b), a & b)
        np.testing.assert_array_equal(nor_xor(a, b), a ^ b)

    def test_gate_counting(self):
        counter = NorCounter()
        nor_xor(np.array([1]), np.array([0]), counter)
        assert counter.count == 5  # minimal NOR-only XOR

    def test_full_adder_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, carry = full_adder(np.array([a]), np.array([b]), np.array([c]))
                    assert s[0] == (a + b + c) % 2
                    assert carry[0] == (a + b + c) // 2


class TestArithmetic:
    def test_ripple_add_known(self):
        out = ripple_add(bits_of(93, 8), bits_of(170, 8))
        value = sum(int(bit) << i for i, bit in enumerate(out))
        assert value == 263

    def test_ripple_add_width_mismatch(self):
        with pytest.raises(ValueError):
            ripple_add(bits_of(1, 4), bits_of(1, 8))

    def test_multiply_known_values(self):
        assert multiply_int8(7, 9) == 63
        assert multiply_int8(255, 255) == 65025
        assert multiply_int8(0, 123) == 0

    def test_multiply_vectorized(self, rng):
        a = rng.integers(0, 256, size=50)
        b = rng.integers(0, 256, size=50)
        np.testing.assert_array_equal(multiply_int8(a, b), a * b)

    def test_multiply_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            multiply_int8(256, 1)
        with pytest.raises(ValueError):
            multiply_int8(-1, 1)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_multiply_exhaustive_property(self, a, b):
        assert multiply_int8(a, b) == a * b

    def test_nor_count_order_of_magnitude(self):
        """The paper charges 64 NOR ops per INT8 multiply; our gate-level
        construction is less optimized but must be within ~50x (it is an
        existence proof, not the paper's optimized MAGIC netlist)."""
        counter = NorCounter()
        multiply_int8(173, 91, counter)
        assert counter.count > 0
        # Vectorized evaluation counts gate *types* once per call; the
        # logical gate count per scalar multiply sits in the hundreds.
        assert counter.count < 64 * NOR_OPS_PER_INT8_MULT

    def test_gate_counts_unchanged_by_vectorization(self):
        """The closed-form bit arithmetic must charge exactly the gates the
        sequential netlist evaluated: 8 ANDs (3 each) + 8 ripple adds of 16
        full adders (18 each) per multiply, 18 per full-adder stage of a
        ripple add."""
        counter = NorCounter()
        multiply_int8(173, 91, counter)
        assert counter.count == 8 * 3 + 8 * 16 * 18
        counter = NorCounter()
        ripple_add(bits_of(93, 8), bits_of(170, 8), counter)
        assert counter.count == 8 * 18

    def test_multiply_broadcasts_like_numpy(self, rng):
        a = rng.integers(0, 256, size=(4, 1))
        b = rng.integers(0, 256, size=(1, 5))
        np.testing.assert_array_equal(multiply_int8(a, b), a * b)


class TestPaperConstants:
    def test_values(self):
        assert NOR_OPS_PER_INT8_MULT == 64
        assert COLUMNS_PER_NOR == 3
        assert CYCLES_PER_ROW == 5
