"""Tests for the module system, layers and parameter management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Tensor,
)


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_weight_shape_is_out_by_in(self):
        layer = Linear(7, 3)
        assert layer.weight.shape == (3, 7)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (2, 4)
        assert layer.bias.grad is not None and layer.bias.grad.shape == (2,)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 2)

    def test_init_scale_depends_on_fan_in(self):
        wide = Linear(10000, 4, rng=np.random.default_rng(0))
        narrow = Linear(4, 4, rng=np.random.default_rng(0))
        assert np.abs(wide.weight.data).max() < np.abs(narrow.weight.data).max()


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(5, 3, rng=rng)
        emb(np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestLayerNorm:
    def test_output_is_normalized(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(loc=3.0, scale=5.0, size=(4, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_affine_parameters_apply(self, rng):
        ln = LayerNorm(4)
        ln.weight.data = np.array([2.0, 2.0, 2.0, 2.0])
        ln.bias.data = np.array([1.0, 1.0, 1.0, 1.0])
        out = ln(Tensor(rng.normal(size=(3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=1e-6)

    def test_gradcheck(self, rng):
        ln = LayerNorm(5)
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        ln(x).sum().backward()
        # LayerNorm of x + c is invariant in c, so the row-grad sums to ~0.
        np.testing.assert_allclose(x.grad.sum(axis=-1), np.zeros(2), atol=1e-8)


class TestDropoutModule:
    def test_train_vs_eval(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(3))
        x = Tensor(np.ones((8, 8)))
        train_out = drop(x)
        drop.eval()
        eval_out = drop(x)
        assert (train_out.data == 0).any()
        np.testing.assert_allclose(eval_out.data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestModuleProtocol:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(4, 8), GELU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        model = Linear(10, 5)
        assert model.num_parameters() == 10 * 5 + 5

    def test_zero_grad_clears(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(1, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self, rng):
        src = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        dst = Sequential(Linear(4, 4), ReLU(), Linear(4, 2))
        dst.load_state_dict(src.state_dict())
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(dst(x).data, src(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 3))})  # missing bias

    def test_load_state_dict_rejects_bad_shape(self):
        model = Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_modulelist_indexing_and_replacement(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        replacement = Linear(2, 2)
        ml[1] = replacement
        assert ml[1] is replacement
        assert len(ml) == 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
