"""Process/thread fan-out shared by the experiment runner, core sweeps and
the sharded crossbar executor, plus the stage-pipeline used by the
pipelined block executor."""

from __future__ import annotations

import multiprocessing
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

__all__ = ["StagePipeline", "map_with_pool", "map_with_threads"]

T = TypeVar("T")
R = TypeVar("R")


def map_with_pool(fn: Callable[[T], R], items: Iterable[T], workers: int) -> list[R]:
    """``[fn(item) for item in items]``, fanned out over ``workers`` processes.

    ``workers <= 1`` (or a single item) stays serial in-process.  Prefers the
    fork start method so callables and registry state defined in the parent
    (e.g. test-registered experiments) are visible in the children; falls
    back to the platform default where fork is unavailable.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)


def map_with_threads(fn: Callable[[T], R], items: Iterable[T], workers: int) -> list[R]:
    """``[fn(item) for item in items]``, fanned out over ``workers`` threads.

    The thread variant exists for work that (a) releases the GIL — BLAS
    matmuls inside the fast crossbar kernel — and (b) mutates shared
    per-item state (each shard's :class:`~repro.rram.crossbar.GemvStats`)
    that a process pool could not send back cheaply.  ``workers <= 1`` (or
    a single item) stays serial in-process, preserving call order exactly.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


class StagePipeline:
    """Persistent stage-worker threads connected by FIFO queues.

    ``stages`` is an ordered list of callables ``fn(index, payload) ->
    payload``; :meth:`run` pushes every item through all stages in order,
    with stage *s* of item *i* overlapping stage *s-1* of item *i+1* —
    the classic pipeline-parallel schedule.  Within one stage items are
    processed strictly in submission order by a single dedicated thread,
    so per-stage state (a transformer stage's layers and their stats
    sinks) is never touched concurrently; only *different* stages run at
    the same time.  Threads release the GIL inside BLAS, which is where
    the overlap pays.

    A single-stage pipeline degenerates to a serial in-thread loop (no
    threads are spawned), preserving call order exactly — the sequential
    control the equivalence tests compare against.

    The first exception raised by any stage is re-raised by :meth:`run`
    after the batch drains (failed items skip their remaining stages).
    Workers are daemon threads; :meth:`close` shuts them down promptly,
    and a dropped pipeline is reclaimed at interpreter exit.
    """

    def __init__(self, stages: list[Callable[[int, object], object]]) -> None:
        if not stages:
            raise ValueError("StagePipeline needs at least one stage")
        self.stages = list(stages)
        self._queues: list[queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._closed = False
        if len(self.stages) > 1:
            # queue s feeds stage s; the extra last queue collects results.
            self._queues = [queue.Queue() for _ in range(len(self.stages) + 1)]
            for s in range(len(self.stages)):
                thread = threading.Thread(
                    target=self._worker, args=(s,), daemon=True,
                    name=f"stage-pipeline-{s}",
                )
                thread.start()
                self._threads.append(thread)

    def _worker(self, s: int) -> None:
        fn = self.stages[s]
        inbox, outbox = self._queues[s], self._queues[s + 1]
        while True:
            job = inbox.get()
            if job is None:  # shutdown sentinel: forward and exit
                outbox.put(None)
                return
            index, payload, error = job
            if error is None:
                try:
                    payload = fn(index, payload)
                except BaseException as exc:  # noqa: BLE001 - re-raised in run()
                    payload, error = None, exc
            outbox.put((index, payload, error))

    def run(self, items: list) -> list:
        """Push ``items`` through every stage; per-item results in order."""
        if self._closed:
            raise RuntimeError("StagePipeline is closed")
        if len(self.stages) == 1:
            fn = self.stages[0]
            return [fn(i, item) for i, item in enumerate(items)]
        for i, item in enumerate(items):
            self._queues[0].put((i, item, None))
        results: list = [None] * len(items)
        first_error: BaseException | None = None
        for _ in range(len(items)):
            index, payload, error = self._queues[-1].get()
            if error is not None and first_error is None:
                first_error = error
            results[index] = payload
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        """Stop the worker threads (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._threads:
            self._queues[0].put(None)
            for thread in self._threads:
                thread.join(timeout=5.0)
