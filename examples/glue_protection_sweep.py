"""GLUE-style protection-rate study across tasks and selection policies.

Reproduces the *shape* of Fig. 12(a) (accuracy vs SLC rate per task) and
Fig. 13 (gradient- vs rank-based selection) on synthetic GLUE stand-ins.

The tasks run as one ``repro.exp`` sweep: each task is a grid point of the
registered ``fig13`` experiment, fanned out across worker processes and
cached under ``.repro_cache/`` — re-running this script is instant.

Run:  python examples/glue_protection_sweep.py [task ...]
"""

from __future__ import annotations

import sys

from repro.datasets import GLUE_TASKS
from repro.exp import ExperimentSpec, Runner

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)
POLICIES = ("rank", "gradient")


def main() -> None:
    tasks = sys.argv[1:] or ["sst2", "mrpc", "rte"]
    unknown = [t for t in tasks if t not in GLUE_TASKS]
    if unknown:
        raise SystemExit(f"unknown tasks {unknown}; options: {sorted(GLUE_TASKS)}")
    print("== GLUE protection sweep (mini Fig. 12a / Fig. 13) ==")

    runnable = []
    for task in tasks:
        if GLUE_TASKS[task].kind == "regression":
            print(f"-- {task}: regression tasks are exercised in the Fig. 12 bench --")
        else:
            runnable.append(task)

    sweep = ExperimentSpec(
        "fig13",
        params={"rates": RATES, "policies": POLICIES, "num_layers": 2, "train_epochs": 4},
    ).sweep(task=runnable)
    series = Runner(workers=min(4, len(runnable) or 1)).sweep(sweep)

    for result in series:
        value = result.value
        task = value["task"]
        cached = " (cached)" if result.cached else ""
        print(
            f"-- {task} ({GLUE_TASKS[task].metric}) | "
            f"noise-free INT8 baseline: {value['baseline']:.3f}{cached}"
        )
        for policy in POLICIES:
            series_scores = zip(value["rates"], value["series"][policy])
            row = "  ".join(f"{r * 100:4.0f}%:{v:.3f}" for r, v in series_scores)
            print(f"   {policy:>8}-based  {row}")


if __name__ == "__main__":
    main()
