"""DeviceMesh: N virtual HyFlexPIM chips plus interconnect traffic accounting.

The mesh is the deployment substrate of the paper's Section 3.1 scaling
story: tensor parallelism spreads one layer's arrays over collaborating
PUs inside a chip (partial sums aggregated over the 1000 GB/s OCI), and
pipeline parallelism cascades whole layers across chips (one hidden-vector
handoff per chip boundary over the 128 GB/s PCIe-6.0 link).

The mesh itself is *passive*: it owns the chip inventory and a per-link
traffic ledger (:class:`LinkTraffic`).  The placement decisions live in
:class:`~repro.dist.plan.ShardPlan`; the functional sharded forwards
(:meth:`repro.pim.hybrid.HybridLinear.deploy`) and the serving engine
record the bytes they actually move here, so hardware-projected latency is
driven by the links *exercised*, not by an assumed traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig
from repro.arch.interconnect import Link, OCI_LINK, PCIE6_LINK
from repro.pim.chip import ChipConfig

__all__ = ["LinkTraffic", "DeviceMesh"]


@dataclass
class LinkTraffic:
    """Ledger of everything moved over one link since the last reset."""

    transfers: int = 0
    num_bytes: float = 0.0
    cycles: float = 0.0

    def seconds(self, clock_hz: float) -> float:
        """Transfer time at the given core clock."""
        return self.cycles / clock_hz

    def as_dict(self) -> dict:
        """JSON-friendly ledger snapshot."""
        return {
            "transfers": self.transfers,
            "bytes": round(self.num_bytes, 1),
            "cycles": round(self.cycles, 1),
        }


class DeviceMesh:
    """``num_chips`` virtual HyFlexPIM chips sharing one traffic ledger.

    Parameters
    ----------
    num_chips:
        Pipeline depth of the mesh (paper case 3): consecutive Transformer
        blocks are assigned to consecutive chips by the
        :class:`~repro.dist.plan.ShardPlan` builder.
    chip_config:
        Per-chip composition (24 PUs by default, Fig. 5(a)).
    hardware:
        Component library used for clocking the traffic ledger and for the
        throughput projection.
    chip_pus:
        Optional per-chip PU budgets for a **heterogeneous** mesh — one
        entry per chip, overriding ``chip_config.num_processing_units``
        for that chip (mixed-generation deployments, partially-fused-out
        parts).  ``None`` (default) keeps every chip at the config's
        budget.
    """

    def __init__(
        self,
        num_chips: int = 1,
        chip_config: ChipConfig | None = None,
        hardware: HardwareConfig | None = None,
        chip_pus: "list[int] | tuple[int, ...] | None" = None,
    ) -> None:
        if num_chips < 1:
            raise ValueError(f"num_chips must be >= 1, got {num_chips}")
        self.num_chips = num_chips
        self.chip_config = chip_config or ChipConfig()
        self.hardware = hardware or DEFAULT_HARDWARE
        if chip_pus is None:
            self.chip_pus = tuple(
                self.chip_config.num_processing_units for _ in range(num_chips)
            )
        else:
            if len(chip_pus) != num_chips:
                raise ValueError(
                    f"chip_pus must list one PU budget per chip: got "
                    f"{len(chip_pus)} budgets for {num_chips} chips"
                )
            budgets = tuple(int(b) for b in chip_pus)
            bad = [i for i, b in enumerate(budgets) if b < 1]
            if bad:
                raise ValueError(
                    f"chip_pus budgets must be >= 1; chip(s) {bad} have "
                    f"{[budgets[i] for i in bad]}"
                )
            self.chip_pus = budgets
        self.links: dict[str, Link] = {OCI_LINK.name: OCI_LINK, PCIE6_LINK.name: PCIE6_LINK}
        self.traffic: dict[str, LinkTraffic] = {
            name: LinkTraffic() for name in self.links
        }

    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        """Core clock of every chip in the mesh."""
        return self.hardware.clock_hz

    @property
    def is_heterogeneous(self) -> bool:
        """Whether chips carry different PU budgets."""
        return len(set(self.chip_pus)) > 1

    def pu_budget(self, chip: int) -> int:
        """Processing units on ``chip`` (heterogeneous-aware)."""
        if not 0 <= chip < self.num_chips:
            raise ValueError(f"chip {chip} out of range [0, {self.num_chips})")
        return self.chip_pus[chip]

    @property
    def pus_per_chip(self) -> int:
        """Processing units on each chip (homogeneous meshes only).

        A heterogeneous mesh has no single per-chip budget; callers that
        still assume one must be pointed at :meth:`pu_budget`.
        """
        if self.is_heterogeneous:
            raise ValueError(
                "mesh is heterogeneous (per-chip PU budgets "
                f"{list(self.chip_pus)}); use pu_budget(chip)"
            )
        return self.chip_pus[0]

    @property
    def total_pus(self) -> int:
        """Processing units across the whole mesh."""
        return sum(self.chip_pus)

    def arrays_per_pu(self) -> int:
        """Analog crossbar arrays each processing unit holds."""
        return self.hardware.analog_arrays_per_pu()

    # ------------------------------------------------------------------
    # Traffic ledger
    # ------------------------------------------------------------------
    def record(self, link_name: str, num_bytes: float, transfers: int = 1) -> float:
        """Account ``num_bytes`` moved over ``link_name``; returns the cycles.

        ``transfers`` counts distinct launches (each paying the link's
        launch overhead once).
        """
        link = self.links.get(link_name)
        if link is None:
            raise KeyError(
                f"unknown link {link_name!r}; mesh links: {sorted(self.links)}"
            )
        if transfers < 1:
            raise ValueError(f"transfers must be >= 1, got {transfers}")
        cycles = (
            link.transfer_seconds(num_bytes) * self.clock_hz
            + transfers * link.launch_overhead_cycles
        )
        ledger = self.traffic[link_name]
        ledger.transfers += transfers
        ledger.num_bytes += num_bytes
        ledger.cycles += cycles
        return cycles

    def record_partial_sum_aggregation(
        self, num_shards: int, num_bytes_per_shard: float, intra_chip: bool = True
    ) -> float:
        """Tensor-parallel partial-sum reduction across ``num_shards`` workers.

        ``num_shards - 1`` shards ship their partial result to the
        aggregating worker (paper Section 3.1, cases 1-2); intra-chip
        reductions ride the OCI, cross-chip ones PCIe-6.0.
        """
        if num_shards < 2:
            return 0.0
        link = OCI_LINK.name if intra_chip else PCIE6_LINK.name
        return self.record(
            link, (num_shards - 1) * num_bytes_per_shard, transfers=num_shards - 1
        )

    def record_pipeline_handoff(
        self, hidden_dim: int, tokens: int = 1, boundaries: int | None = None
    ) -> float:
        """One hidden-vector handoff per chip boundary crossed (case 3).

        ``tokens`` INT8 hidden vectors of ``hidden_dim`` elements each cross
        PCIe-6.0 once per boundary; ``boundaries`` defaults to the mesh's
        own chip count but a :class:`~repro.dist.plan.ShardPlan` may use
        fewer chips than the mesh offers.
        """
        if boundaries is None:
            boundaries = self.num_chips - 1
        if boundaries < 1 or tokens < 1:
            return 0.0
        return self.record(
            PCIE6_LINK.name,
            float(tokens) * boundaries * hidden_dim,
            transfers=tokens * boundaries,
        )

    def record_batched_pipeline_handoff(
        self, hidden_dim: int, rows: int, boundaries: int | None = None
    ) -> float:
        """One fused handoff per chip boundary for a whole decode step.

        Batched decode ships every live row's hidden vector across each
        boundary in **one** launch per boundary per step (``transfers ==
        boundaries``), instead of :meth:`record_pipeline_handoff`'s
        per-token launches — same bytes
        (``rows * boundaries * hidden_dim`` INT8), fewer launch overheads.
        ``rows`` is the number of hidden vectors crossing (decoded rows
        plus prefill tokens this step).
        """
        if boundaries is None:
            boundaries = self.num_chips - 1
        if boundaries < 1 or rows < 1:
            return 0.0
        return self.record(
            PCIE6_LINK.name,
            float(rows) * boundaries * hidden_dim,
            transfers=boundaries,
        )

    def reset_traffic(self) -> None:
        """Zero every link ledger (start of a fresh measurement)."""
        for name in self.traffic:
            self.traffic[name] = LinkTraffic()

    def transfer_seconds(self) -> float:
        """Total projected seconds spent on all recorded transfers."""
        return sum(t.seconds(self.clock_hz) for t in self.traffic.values())

    def traffic_report(self) -> dict:
        """Per-link traffic totals, with seconds at the mesh clock."""
        report = {name: ledger.as_dict() for name, ledger in self.traffic.items()}
        for name, ledger in self.traffic.items():
            report[name]["seconds"] = ledger.seconds(self.clock_hz)
        return report

    def __repr__(self) -> str:
        if self.is_heterogeneous:
            return (
                f"DeviceMesh(num_chips={self.num_chips}, "
                f"chip_pus={list(self.chip_pus)})"
            )
        return (
            f"DeviceMesh(num_chips={self.num_chips}, "
            f"pus_per_chip={self.pus_per_chip})"
        )
