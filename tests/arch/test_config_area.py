"""Tests for hardware constants (Table 2) and area/power roll-ups."""

from __future__ import annotations

import pytest

from repro.arch import (
    ANALOG_MODULE,
    DEFAULT_HARDWARE,
    DIGITAL_MODULE,
    area_report,
    table2_rows,
)


class TestTable2Constants:
    def test_analog_module_sum_matches_paper(self):
        # Table 2: analog module sums to 0.47 mm^2 and 930.69 mW.
        assert ANALOG_MODULE.module_area_mm2() == pytest.approx(0.47, abs=0.01)
        assert ANALOG_MODULE.module_power_mw() == pytest.approx(930.69, abs=0.5)

    def test_analog_pu_totals_match_paper(self):
        # 24 modules per PU: 11.24 mm^2, 22,336.59 mW (rounding per paper).
        assert ANALOG_MODULE.pu_area_mm2() == pytest.approx(11.24, abs=0.1)
        assert ANALOG_MODULE.pu_power_mw() == pytest.approx(22_336.59, abs=10)

    def test_digital_module_sum_matches_paper(self):
        assert DIGITAL_MODULE.module_area_mm2() == pytest.approx(8.01, abs=0.01)
        assert DIGITAL_MODULE.module_power_mw() == pytest.approx(6_532.05, abs=1.0)

    def test_digital_pu_totals_match_paper(self):
        assert DIGITAL_MODULE.pu_area_mm2() == pytest.approx(64.05, abs=0.1)
        assert DIGITAL_MODULE.pu_power_mw() == pytest.approx(52_256.41, abs=10)

    def test_adc_dominates_analog_power(self):
        # Paper: ADC is 55 % of analog module power, WL drivers 32 %.
        adc = ANALOG_MODULE.component("adc")
        assert adc.power_mw / ANALOG_MODULE.module_power_mw() == pytest.approx(0.55, abs=0.01)
        wl = ANALOG_MODULE.component("wl_drv")
        assert wl.power_mw / ANALOG_MODULE.module_power_mw() == pytest.approx(0.32, abs=0.01)

    def test_component_lookup(self):
        assert ANALOG_MODULE.component("adc").count == 512
        with pytest.raises(KeyError):
            ANALOG_MODULE.component("gpu")

    def test_digital_throughput_balance(self):
        assert DEFAULT_HARDWARE.digital_ops_per_cycle_per_module() == pytest.approx(
            273.07, abs=0.1
        )

    def test_capacities(self):
        hw = DEFAULT_HARDWARE
        # Analog: 24 modules x 512 arrays x 64x128 cells = 12 MB SLC per PU.
        assert hw.analog_slc_capacity_bytes_per_pu() == 24 * 512 * 64 * 128 // 8
        # Digital: 8 modules x 256 arrays x 128 KB = 256 MB per PU.
        assert hw.digital_capacity_bytes_per_pu() == 8 * 256 * 128 * 1024


class TestAreaReport:
    def test_rollup_consistency(self):
        report = area_report()
        assert report.pu_mm2 == pytest.approx(
            report.analog_module_mm2 * 24 + report.digital_module_mm2 * 8
        )
        assert report.chip_mm2 == pytest.approx(report.pu_mm2 * 24)

    def test_table2_rows_regeneration(self):
        rows = table2_rows(ANALOG_MODULE)
        names = [r["component"] for r in rows]
        assert names[:7] == ["rram_array", "ir", "or", "wl_drv", "adc", "s_and_a", "s_and_h"]
        assert names[-2:] == ["sum", "total_per_pu"]
        shares = [r["power_share"] for r in rows[:7]]
        assert sum(shares) == pytest.approx(1.0)
