"""Content-hash keyed on-disk result cache.

Each completed experiment point is stored as one JSON file under
``.repro_cache/`` (or ``$REPRO_CACHE_DIR``), keyed by the sha256 of the
spec content plus a code-version fingerprint covering every ``repro``
source file.  Editing any library or study code, or changing any spec
field, therefore misses the cache; re-running an identical spec on
identical code is a pure file read.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.exp.spec import ExperimentSpec

__all__ = ["CacheEntry", "ResultCache", "default_cache_root"]

_CACHE_ENV = "REPRO_CACHE_DIR"
_CACHE_DIRNAME = ".repro_cache"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` under the cwd."""
    override = os.environ.get(_CACHE_ENV)
    return Path(override) if override else Path.cwd() / _CACHE_DIRNAME


@dataclass(frozen=True)
class CacheEntry:
    """Metadata for one cached result file (``list-cache`` rows)."""

    key: str
    experiment: str
    params: dict[str, Any]
    seed: int
    created: float
    elapsed_s: float
    path: Path


class ResultCache:
    """JSON file store mapping content keys to experiment payloads."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            # A corrupt or half-written entry is a miss, not an error.
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a mid-byte truncation raises.
            return None

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically write ``payload`` (tmp file + rename) and return it."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        tmp.replace(path)
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def payload(
        spec: ExperimentSpec, code_version: str, value: Any, elapsed_s: float
    ) -> dict[str, Any]:
        """The canonical payload shape written for one result."""
        return {
            "spec": spec.to_dict(),
            "code_version": code_version,
            "created": time.time(),
            "elapsed_s": elapsed_s,
            "value": value,
        }

    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """All readable cache entries, newest first."""
        if not self.root.is_dir():
            return []
        found: list[CacheEntry] = []
        for path in sorted(self.root.glob("*.json")):
            payload = self.get(path.stem)
            if payload is None:
                continue
            spec = payload.get("spec", {})
            found.append(
                CacheEntry(
                    key=path.stem,
                    experiment=spec.get("experiment", "?"),
                    params=dict(spec.get("params", {})),
                    seed=int(spec.get("seed", 0)),
                    created=float(payload.get("created", 0.0)),
                    elapsed_s=float(payload.get("elapsed_s", 0.0)),
                    path=path,
                )
            )
        found.sort(key=lambda e: e.created, reverse=True)
        return found

    def clear(self, experiments: Iterable[str] | None = None) -> int:
        """Delete entries (optionally only for the named experiments)."""
        wanted = set(experiments) if experiments is not None else None
        removed = 0
        for entry in self.entries():
            if wanted is not None and entry.experiment not in wanted:
                continue
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
