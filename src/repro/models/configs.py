"""Paper-scale model specifications and Table 1 fine-tuning hyper-parameters.

:class:`ModelSpec` captures the *architectural* dimensions the performance
model consumes analytically (Figs. 2, 14-17); :func:`downscaled_config`
produces a proportionally shrunken :class:`~repro.nn.TransformerConfig` that
the functional accuracy simulations can actually train on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.transformer import TransformerConfig

__all__ = [
    "ModelSpec",
    "FineTuneParams",
    "PAPER_MODELS",
    "TABLE1_HYPERPARAMS",
    "paper_model",
    "downscaled_config",
]


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of a paper benchmark model."""

    name: str
    kind: str  # "encoder", "decoder" or "vit"
    num_layers: int
    d_model: int
    num_heads: int
    d_ff: int
    vocab_size: int
    max_seq_len: int
    weight_bits: int = 8  # INT8 linear layers throughout the paper

    def __post_init__(self) -> None:
        if self.kind not in ("encoder", "decoder", "vit"):
            raise ValueError(f"unknown model kind {self.kind!r}")
        if self.d_model % self.num_heads:
            raise ValueError("d_model must be divisible by num_heads")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads

    def static_weight_params(self) -> int:
        """Parameter count of the static linear weights (per the whole model).

        Six matrices per layer: W_Q, W_K, W_V, W_proj (d x d) and
        FFN1/FFN2 (d x d_ff each), matching Figs. 1 and 9.
        """
        per_layer = 4 * self.d_model * self.d_model + 2 * self.d_model * self.d_ff
        return self.num_layers * per_layer

    def static_weight_bytes(self) -> int:
        return self.static_weight_params() * self.weight_bits // 8


# Benchmark models of Section 5.1.  Dimensions follow the public model cards:
# BERT-Base/Large (Devlin 2018), GPT-2 small (Radford 2019),
# Llama-3.2-1B (16 layers, hidden 2048, FFN 8192), ViT-Base (Dosovitskiy 2021).
PAPER_MODELS: dict[str, ModelSpec] = {
    "bert-base": ModelSpec("bert-base", "encoder", 12, 768, 12, 3072, 30522, 128),
    "bert-large": ModelSpec("bert-large", "encoder", 24, 1024, 16, 4096, 30522, 128),
    "gpt2": ModelSpec("gpt2", "decoder", 12, 768, 12, 3072, 50257, 1024),
    "llama3-1b": ModelSpec("llama3-1b", "decoder", 16, 2048, 32, 8192, 128256, 100),
    "vit-base": ModelSpec("vit-base", "vit", 12, 768, 12, 3072, 1000, 197),
}


@dataclass(frozen=True)
class FineTuneParams:
    """Row of the paper's Table 1."""

    batch_size: int
    learning_rate: float
    optimizer: str = "AdamW"
    epochs: int = 3  # paper: 1-3 epochs suffice (Section 4.1)


TABLE1_HYPERPARAMS: dict[str, FineTuneParams] = {
    "bert-base": FineTuneParams(batch_size=32, learning_rate=2e-5),
    "bert-large": FineTuneParams(batch_size=32, learning_rate=5e-6),
    "gpt2": FineTuneParams(batch_size=2, learning_rate=2e-5),
    "llama3-1b": FineTuneParams(batch_size=2, learning_rate=2e-5),
    "vit-base": FineTuneParams(batch_size=10, learning_rate=5e-6),
}


def paper_model(name: str) -> ModelSpec:
    """Look up a paper benchmark model by name."""
    if name not in PAPER_MODELS:
        raise KeyError(f"unknown model {name!r}; options: {sorted(PAPER_MODELS)}")
    return PAPER_MODELS[name]


def downscaled_config(
    name: str,
    d_model: int = 32,
    num_layers: int = 2,
    vocab_size: int = 64,
    max_seq_len: int = 32,
    num_classes: int = 2,
    seed: int = 0,
) -> TransformerConfig:
    """Shrink a paper model to CPU-trainable size, keeping its *shape*.

    The FFN expansion ratio (d_ff / d_model) and head width proportions of
    the original are preserved so per-stage op-count ratios stay faithful.
    """
    spec = paper_model(name)
    ratio = spec.d_ff // spec.d_model
    heads = max(2, min(4, d_model // 8))
    return TransformerConfig(
        vocab_size=vocab_size,
        d_model=d_model,
        num_heads=heads,
        num_layers=num_layers,
        d_ff=ratio * d_model,
        max_seq_len=max_seq_len,
        num_classes=num_classes,
        seed=seed,
        name=f"{name}-mini",
    )
