"""Hardware configuration constants (paper Table 2 and Section 5.4).

Component area and power are the paper's reported 65 nm numbers (derived by
the authors from NVSIM, the ARM memory compiler and a synthesized SFU, all
scaled per Stillmaker & Baas).  We consume them as the calibrated component
library of the analytic energy/latency/area models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.interconnect import OCI_LINK, PCIE6_LINK

__all__ = [
    "ComponentSpec",
    "ModuleSpec",
    "ANALOG_MODULE",
    "DIGITAL_MODULE",
    "HardwareConfig",
    "DEFAULT_HARDWARE",
]


@dataclass(frozen=True)
class ComponentSpec:
    """One Table 2 row: a peripheral component inside a PIM module."""

    name: str
    area_mm2: float
    power_mw: float
    count: int  # instances per module
    note: str = ""


@dataclass(frozen=True)
class ModuleSpec:
    """A PIM module: its components plus the per-PU replication factor."""

    name: str
    components: tuple[ComponentSpec, ...]
    modules_per_pu: int

    def module_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    def module_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    def pu_area_mm2(self) -> float:
        return self.module_area_mm2() * self.modules_per_pu

    def pu_power_mw(self) -> float:
        return self.module_power_mw() * self.modules_per_pu

    def component(self, name: str) -> ComponentSpec:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component {name!r} in module {self.name}")


# Table 2, "Analog RRAM Module" block (area mm^2, power mW, count).
ANALOG_MODULE = ModuleSpec(
    name="analog",
    modules_per_pu=24,
    components=(
        ComponentSpec("rram_array", 0.048, 60.78, 512, "64x128 bitcells, 1-b/2-b"),
        ComponentSpec("ir", 0.00065, 0.13, 512, "input register, 64 B each"),
        ComponentSpec("or", 0.00129, 0.53, 512, "output register, 128 B each"),
        ComponentSpec("wl_drv", 0.02, 297.71, 64 * 512, "1-b wordline drivers"),
        ComponentSpec("adc", 0.30, 512.00, 512, "6-b/7-b reconfigurable SAR"),
        ComponentSpec("s_and_a", 0.10, 59.54, 512, "shift & adder"),
        ComponentSpec("s_and_h", 6e-5, 12e-6, 512, "sample & hold"),
    ),
)

# Table 2, "Digital RRAM Module" block.
DIGITAL_MODULE = ModuleSpec(
    name="digital",
    modules_per_pu=8,
    components=(
        ComponentSpec("rram_array", 2.86, 3890.02, 256, "1024x1024 bitcells, 1-b"),
        ComponentSpec("ir", 0.0031, 0.76, 256, "input register, 1 KB each"),
        ComponentSpec("or", 0.0032, 1.65, 256, "output register, 1 KB each"),
        ComponentSpec("wl_drv", 0.14, 2381.64, 1024 * 256, "1-b wordline drivers"),
        ComponentSpec("s_and_a", 0.21, 119.08, 1024, "shift & adder"),
        ComponentSpec("s_and_h", 13e-5, 23e-6, 1024, "sample & hold"),
        ComponentSpec("sfu", 4.79, 138.89, 1, "special function unit, 256 inputs"),
    ),
)


@dataclass(frozen=True)
class HardwareConfig:
    """Chip-level constants (Fig. 5 and Section 5.4)."""

    num_pus: int = 24
    clock_hz: float = 1e9  # 1 GHz core clock (SFU synthesis frequency)
    adc_sample_rate_hz: float = 1.28e9
    conversion_window_ns: float = 100.0  # 128 bitlines per window
    analog: ModuleSpec = field(default=ANALOG_MODULE)
    digital: ModuleSpec = field(default=DIGITAL_MODULE)
    # Interconnect (Section 3.1 / 5.4) — derived from the canonical
    # :mod:`repro.arch.interconnect` links so the bandwidths have exactly
    # one source of truth.
    oci_gbps: float = OCI_LINK.bandwidth_gbps  # inner/inter-PU on-chip interconnect
    pcie_gbps: float = PCIE6_LINK.bandwidth_gbps  # PCIe-6.0 chip-to-chip
    # Crossbar geometry.
    array_rows: int = 64
    array_cols: int = 128
    arrays_per_analog_module: int = 512
    digital_array_rows: int = 1024
    digital_array_cols: int = 1024
    arrays_per_digital_module: int = 256
    weight_bits: int = 8
    input_bits: int = 8
    # Paper's digital-PIM cost constants (Section 3.1).
    nor_per_int8_mult: int = 64
    columns_per_nor: int = 3
    cycles_per_row: int = 5
    # Digital-PIM MAC energy: 64 NOR ops x ~31 fJ per MAGIC-style NOR
    # (memristive-logic literature; each NOR flips at most one cell).
    # Table 2's module power assumes all arrays active and cannot be
    # divided by the NOR-balanced op rate (~20 % array utilization).
    digital_pim_mac_pj: float = 2.0
    # RRAM write energy per SET pulse: 1.62 V x ~100 uA x ~10 ns ~= 1.6 pJ.
    slc_write_pj_per_bit: float = 1.6
    mlc_write_pulses: int = 4  # iterative program-verify for 2-b MLC

    # -- derived quantities ----------------------------------------------------
    def pu_area_mm2(self) -> float:
        return self.analog.pu_area_mm2() + self.digital.pu_area_mm2()

    def chip_area_mm2(self) -> float:
        return self.num_pus * self.pu_area_mm2()

    def pu_power_mw(self) -> float:
        return self.analog.pu_power_mw() + self.digital.pu_power_mw()

    def analog_arrays_per_pu(self) -> int:
        return self.analog.modules_per_pu * self.arrays_per_analog_module

    def analog_slc_capacity_bytes_per_pu(self) -> int:
        cells = self.analog_arrays_per_pu() * self.array_rows * self.array_cols
        return cells // 8

    def digital_capacity_bytes_per_pu(self) -> int:
        cells = (
            self.digital.modules_per_pu
            * self.arrays_per_digital_module
            * self.digital_array_rows
            * self.digital_array_cols
        )
        return cells // 8

    def chip_analog_slc_capacity_bytes(self) -> int:
        return self.num_pus * self.analog_slc_capacity_bytes_per_pu()

    def chip_digital_capacity_bytes(self) -> int:
        return self.num_pus * self.digital_capacity_bytes_per_pu()

    def digital_ops_per_cycle_per_module(self) -> float:
        """Section 3.1's throughput balance: 256·1024/(64·3)/5 ≈ 273."""
        return (
            self.arrays_per_digital_module
            * self.digital_array_cols
            / (self.nor_per_int8_mult * self.columns_per_nor)
            / self.cycles_per_row
        )


DEFAULT_HARDWARE = HardwareConfig()
