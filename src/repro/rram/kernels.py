"""High-throughput kernels for the analog crossbar GEMV hot path.

Every accuracy and energy figure in the paper funnels through the bit-serial
analog GEMV of Figs. 3/6/7, so this module provides two interchangeable
implementations of that pipeline plus the :class:`KernelPolicy` that selects
between them:

``reference``
    The faithful, readable formulation: one float ``einsum`` per row tile
    producing the full ``(batch, input_bits, out, n_slices)`` analog-sum
    intermediate, an allocating ADC conversion, and per-element statistics
    reductions.  This is the semantic ground truth the fast kernel is tested
    against (bitwise, including :class:`~repro.rram.crossbar.GemvStats`).

``fast``
    The optimized formulation:

    * inputs are pre-packed into plane-major uint8 bit planes
      (:func:`repro.quant.quantizer.int_to_bit_planes`) and each bit plane
      hits the programmed cells as a single 2-D BLAS matmul instead of a
      naive 4-axis ``einsum``;
    * the SAR ADC round/clip is fused in place on the matmul output
      (:meth:`~repro.rram.adc.SarAdc.convert_`) — no intermediate
      allocations;
    * :class:`~repro.rram.crossbar.GemvStats` counts are computed in closed
      form (conversion, cycle and tile counts from the shapes, wordline
      activations from input popcounts) instead of per-element reductions
      inside the tile loop;
    * when the matrix is **noiseless** and no bitline can reach the ADC
      full-scale code (checked once per programmed matrix from the cell
      levels), the whole pipeline provably reduces to the exact integer
      GEMV ``x @ W.T`` (see the :mod:`repro.rram.crossbar` docstring) and is
      short-circuited to one dense matmul while still reporting identical
      statistics.

Both kernels read the same stored cell planes and accumulate analog bitline
sums in float64, so their ADC codes — and therefore their integer outputs —
agree bitwise; the equivalence grid in ``tests/rram/test_kernels.py``
enforces this for every cell type, noise level and tile-spanning shape.

``gemm``
    The batched-decode formulation: all live rows' GEMVs are fused into
    **one** BLAS matmul per (activation bit-plane × programmed plane) pair
    against the matrix's epoch-cached stacked tile planes
    (:meth:`~repro.rram.crossbar.ProgrammedMatrix.stacked_planes`), with a
    single fused :meth:`~repro.rram.adc.SarAdc.convert_` over the whole
    analog-sum block.  Because every intermediate is an exact integer in
    float64, the fused path is bitwise-equal to ``fast`` in noiseless mode
    and allclose under noise (BLAS summation order inside the fused matmul
    is the only difference).

Batched decode additionally amortizes the activation bit-plane *packing*
across layers: a :class:`PlaneCache` installed via :func:`plane_cache_scope`
memoizes the packed uint8 planes of each distinct activation block, keyed by
content, so the N crossbar matrices of one decode step (SLC + MLC stages of
every ``HybridLinear``, times shards) pack each activation block once.  The
cache is invalidated on batch-composition changes through
:class:`~repro.serve.slots.RowSlotManager` generation counters
(:meth:`PlaneCache.set_generation`).

The active policy is process-wide by default (:func:`set_default_kernel_policy`
or the :func:`kernel_policy` context manager) and can be overridden per
matrix or per call everywhere the GEMV surfaces (``ProgrammedMatrix``,
``MappedMatrix``, ``AnalogPimModule``, ``HybridLinear``, ``HyFlexPim``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.quant.quantizer import int_to_bit_planes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rram.crossbar import GemvStats, ProgrammedMatrix

__all__ = [
    "KernelPolicy",
    "PlaneCache",
    "PlaneCacheStats",
    "get_active_plane_cache",
    "get_default_kernel_policy",
    "set_default_kernel_policy",
    "kernel_policy",
    "plane_cache_scope",
    "resolve_policy",
    "reference_gemv",
    "fast_gemv",
    "fast_gemm",
    "run_gemv",
]

_MODES = ("fast", "reference", "gemm")
_COMPUTE_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class KernelPolicy:
    """Which GEMV kernel to run and how programmed cell planes are stored.

    ``mode`` selects the implementation (``"fast"`` is the default and is
    bitwise-equal to ``"reference"``; ``"gemm"`` fuses batched rows into one
    matmul per bit-plane pair and is bitwise-equal to ``"fast"`` in
    noiseless mode, allclose under noise); ``compute_dtype`` is the storage dtype
    of the noisy programmed planes (``"float32"`` halves programmed-weight
    memory versus the historical float64 with no observable effect beyond
    freezing the programming noise at float32 precision).  Analog bitline
    sums always accumulate in float64 regardless of ``compute_dtype``, which
    is what keeps the two modes bitwise interchangeable.

    The dtype is kept as a string so policies stay JSON/pickle friendly —
    they ride inside :class:`~repro.core.hyflexpim.HyFlexPim` instances that
    cross process boundaries during parallel sweeps.
    """

    mode: str = "fast"
    compute_dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.compute_dtype not in _COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {_COMPUTE_DTYPES}, got {self.compute_dtype!r}"
            )

    @property
    def storage_dtype(self) -> np.dtype:
        """numpy dtype used to store noisy programmed cell planes."""
        return np.dtype(self.compute_dtype)


_default_policy = KernelPolicy()


def get_default_kernel_policy() -> KernelPolicy:
    """The process-wide policy used when none is passed explicitly."""
    return _default_policy


def set_default_kernel_policy(policy: KernelPolicy) -> KernelPolicy:
    """Install ``policy`` process-wide; returns the previous default."""
    global _default_policy
    if not isinstance(policy, KernelPolicy):
        raise TypeError(f"expected KernelPolicy, got {type(policy).__name__}")
    previous = _default_policy
    _default_policy = policy
    return previous


class kernel_policy:
    """Context manager scoping a default-policy override.

    >>> with kernel_policy(KernelPolicy(mode="reference")):
    ...     matrix.gemv(x)  # runs the reference kernel
    """

    def __init__(self, policy: KernelPolicy) -> None:
        self._policy = policy

    def __enter__(self) -> KernelPolicy:
        self._previous = set_default_kernel_policy(self._policy)
        return self._policy

    def __exit__(self, exc_type, exc, tb) -> None:
        set_default_kernel_policy(self._previous)


def resolve_policy(policy: KernelPolicy | None) -> KernelPolicy:
    """``policy`` if given, else the process-wide default."""
    return policy if policy is not None else _default_policy


# ----------------------------------------------------------------------
# Persistent bit-plane packing (batched-decode operand reuse)
# ----------------------------------------------------------------------
@dataclass
class PlaneCacheStats:
    """Reuse accounting for one :class:`PlaneCache`."""

    planes_packed: int = 0  # bit-planes packed fresh (cache misses)
    pack_reuses: int = 0  # bit-planes served from the cache (hits)
    invalidations: int = 0  # generation bumps that dropped live entries

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly counter snapshot."""
        return {
            "planes_packed": self.planes_packed,
            "pack_reuses": self.pack_reuses,
            "invalidations": self.invalidations,
        }


class PlaneCache:
    """Memoized activation bit-plane packing for one decode step.

    One decode step pushes the *same* quantized activation block through
    many programmed matrices (the SLC and MLC stages of every
    ``HybridLinear``, times tensor-parallel shards), and each of them would
    re-run :func:`~repro.quant.quantizer.int_to_bit_planes` on identical
    codes.  The cache keys packed planes by **content**
    (``input_codes.tobytes()`` plus shape and bit width) rather than array
    identity — the GEMV entry points copy/validate their inputs, so
    identity never survives the call boundary — which makes a cache hit
    bitwise-equivalent to packing fresh by construction.

    Entries also memoize the derived fused-GEMM operand
    (:meth:`fused_lhs`): the zero-padded ``(tiles, kept_bits*batch, rows)``
    float64 block :func:`fast_gemm` feeds straight into BLAS, keyed by the
    consuming matrix's tile geometry.

    Invalidation is driven by the continuous scheduler's
    :class:`~repro.serve.slots.RowSlotManager` generation counter: any
    admit/retire changes the batch composition, :meth:`set_generation`
    observes the bump and drops every entry, so stale packed planes can
    never be served across a composition change.  A bounded LRU keeps the
    footprint flat for long-lived schedulers.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = PlaneCacheStats()
        self._generation: int | None = None
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        # The stage-pipelined executor consults one shared cache from
        # several worker threads; entries are content-keyed so hits stay
        # bitwise-exact, but the LRU bookkeeping needs mutual exclusion.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def set_generation(self, generation: int) -> None:
        """Drop every entry when the batch-composition generation changed."""
        with self._lock:
            if generation != self._generation:
                if self._entries:
                    self.stats.invalidations += 1
                    self._entries.clear()
                self._generation = generation

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def _entry(
        self, input_codes: np.ndarray, input_bits: int, stats: "GemvStats | None"
    ) -> dict:
        key = (input_bits, input_codes.shape, input_codes.tobytes())
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.pack_reuses += input_bits
            if stats is not None:
                stats.pack_reuses += input_bits
            return entry
        masked = input_codes & (2**input_bits - 1)
        planes = int_to_bit_planes(masked, input_bits)
        # Bitmask of bit positions set anywhere in the block: plane k is
        # all-zero iff bit k is clear (the zero-plane skip's oracle).
        used = int(np.bitwise_or.reduce(masked, axis=None)) if masked.size else 0
        entry = {"u8": planes, "used": used, "lhs": {}}
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self.stats.planes_packed += input_bits
        if stats is not None:
            stats.planes_packed += input_bits
        return entry

    def packed(
        self, input_codes: np.ndarray, input_bits: int, stats: "GemvStats | None" = None
    ) -> tuple[np.ndarray, int]:
        """``(uint8 planes (bits, batch, in), used-bit mask)`` for the block."""
        with self._lock:
            entry = self._entry(input_codes, input_bits, stats)
            return entry["u8"], entry["used"]

    def fused_lhs(
        self,
        input_codes: np.ndarray,
        input_bits: int,
        rows: int,
        stats: "GemvStats | None" = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Fused-GEMM left operand for a matrix with ``rows``-row tiles.

        Returns ``(lhs, kept)``: the zero-padded float64 block of shape
        ``(num_tiles, len(kept)*batch, rows)`` plus the list of non-zero
        bit-plane indices it contains (all-zero planes are dropped — the
        zero-plane skip).  Memoized per (activation block, tile rows), so
        the SLC and MLC stages consuming the same activations share one
        materialization.
        """
        with self._lock:
            entry = self._entry(input_codes, input_bits, stats)
            kept = [k for k in range(input_bits) if (entry["used"] >> k) & 1]
            lhs = entry["lhs"].get(rows)
            if lhs is None:
                lhs = _build_fused_lhs(entry["u8"], kept, rows)
                entry["lhs"][rows] = lhs
            return lhs, kept


_active_plane_cache: PlaneCache | None = None


def get_active_plane_cache() -> PlaneCache | None:
    """The :class:`PlaneCache` installed by the innermost scope, if any."""
    return _active_plane_cache


class plane_cache_scope:
    """Context manager installing ``cache`` as the process-wide plane cache.

    The fast kernels consult the active cache for packed activation
    bit-planes; ``None`` (the default outside any scope) packs fresh on
    every call.  Scopes nest — the previous cache is restored on exit.

    >>> with plane_cache_scope(PlaneCache()):
    ...     layer(x)  # every crossbar stage packs x's planes once
    """

    def __init__(self, cache: PlaneCache | None) -> None:
        self._cache = cache

    def __enter__(self) -> PlaneCache | None:
        global _active_plane_cache
        self._previous = _active_plane_cache
        _active_plane_cache = self._cache
        return self._cache

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active_plane_cache
        _active_plane_cache = self._previous


def _build_fused_lhs(planes_u8: np.ndarray, kept: list[int], rows: int) -> np.ndarray:
    """Stack ``kept`` bit-planes into the fused operand (tiles, K*batch, rows).

    The trailing partial row tile is zero-padded: padded wordlines carry
    input bit 0 and contribute exactly 0 to every analog sum, so padding
    preserves bitwise equivalence with the per-tile slicing of
    :func:`fast_gemv`.
    """
    bits_kept = planes_u8[kept] if kept else planes_u8[:0]
    num_kept, batch, in_features = bits_kept.shape
    num_tiles = -(-in_features // rows)
    flat = np.zeros((num_kept * batch, num_tiles * rows), dtype=np.float64)
    flat[:, :in_features] = bits_kept.reshape(num_kept * batch, in_features)
    return np.ascontiguousarray(
        flat.reshape(num_kept * batch, num_tiles, rows).transpose(1, 0, 2)
    )


def _packed_planes(
    input_codes: np.ndarray, input_bits: int, stats: "GemvStats | None"
) -> tuple[np.ndarray, int]:
    """Packed uint8 planes + used-bit mask, via the active cache if any."""
    cache = _active_plane_cache
    if cache is not None:
        return cache.packed(input_codes, input_bits, stats)
    masked = input_codes & (2**input_bits - 1)
    planes = int_to_bit_planes(masked, input_bits)
    used = int(np.bitwise_or.reduce(masked, axis=None)) if masked.size else 0
    if stats is not None:
        stats.planes_packed += input_bits
    return planes, used


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _popcount_total(values: np.ndarray, num_bits: int) -> int:
    """Total number of set bits across ``values`` (masked to ``num_bits``)."""
    masked = np.asarray(values, dtype=np.int64) & ((1 << num_bits) - 1)
    total = 0
    for shift in range(0, num_bits, 8):
        total += int(_POPCOUNT_TABLE[(masked >> shift) & 0xFF].sum(dtype=np.int64))
    return total


def _fill_analytic_stats(
    stats: "GemvStats",
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    num_tiles: int,
) -> None:
    """Closed-form operation counts (everything except ADC saturations)."""
    batch = input_codes.shape[0]
    num_slices = matrix.slices.num_slices
    stats.adc_conversions += num_tiles * batch * input_bits * matrix.out_features * num_slices
    stats.wordline_activations += _popcount_total(input_codes, input_bits) * num_slices
    stats.input_cycles += num_tiles * input_bits
    col_tiles = -(-matrix.out_features * num_slices // matrix.config.cols)
    stats.array_tiles += num_tiles * col_tiles
    stats.cells_programmed += matrix.slices.values.size


# ----------------------------------------------------------------------
# Reference kernel — the faithful einsum pipeline
# ----------------------------------------------------------------------
def reference_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
) -> np.ndarray:
    """Bit-serial GEMV, faithful formulation (Figs. 3/6/7, one einsum per tile).

    ``input_codes`` must already be validated 2-D signed codes; this is the
    semantic ground truth the fast kernel is checked against.
    """
    from repro.rram.crossbar import input_bit_weights
    from repro.quant.quantizer import int_to_bits

    planes = matrix.planes
    raw_bits = int_to_bits(input_codes & (2**input_bits - 1), input_bits)
    bit_w = input_bit_weights(input_bits)
    slice_f = matrix.slices.slice_factors

    batch, in_features = input_codes.shape
    accumulator = np.zeros((batch, matrix.out_features), dtype=np.int64)
    num_tiles = -(-in_features // matrix.config.rows)
    for tile_index in range(num_tiles):
        row_start = tile_index * matrix.config.rows
        row_stop = min(row_start + matrix.config.rows, in_features)
        tile_cells = planes[row_start:row_stop]  # (rows_t, out, n_s)
        tile_bits = raw_bits[:, row_start:row_stop, :]  # (batch, rows_t, in_bits)
        # Analog bitline sums for every input bit-plane at once:
        # (batch, input_bits, out, n_s)
        sums = np.einsum("brk,ros->bkos", tile_bits.astype(np.float64), tile_cells)
        codes = matrix.adc.convert(sums)
        if stats is not None:
            stats.adc_conversions += codes.size
            stats.saturated_conversions += int((codes == matrix.adc.full_scale).sum())
            stats.wordline_activations += int(tile_bits.sum()) * matrix.slices.num_slices
            stats.input_cycles += input_bits
        # Digital shift & add over input-bit planes and weight slices.
        accumulator += np.einsum("bkos,k,s->bo", codes, bit_w, slice_f)

    if stats is not None:
        col_tiles = -(-matrix.out_features * matrix.slices.num_slices // matrix.config.cols)
        stats.array_tiles += num_tiles * col_tiles
        stats.cells_programmed += matrix.slices.values.size

    # Remove the weight offset: x @ (W + 128).T = x @ W.T + 128 * sum(x).
    row_sums = input_codes.sum(axis=1, keepdims=True)
    return accumulator - matrix.slices.offset * row_sums


# ----------------------------------------------------------------------
# Fast kernel — packed bit planes, BLAS matmuls, fused ADC, analytic stats
# ----------------------------------------------------------------------
def fast_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
) -> np.ndarray:
    """Optimized bit-serial GEMV, bitwise-equal to :func:`reference_gemv`."""
    from repro.rram.crossbar import input_bit_weights

    batch, in_features = input_codes.shape
    num_tiles = -(-in_features // matrix.config.rows)

    if stats is not None:
        _fill_analytic_stats(stats, matrix, input_codes, input_bits, num_tiles)

    if matrix.is_noiseless and matrix.saturation_free:
        # Exact short-circuit: with noiseless integer cells and no bitline
        # able to reach the ADC full-scale code, every conversion returns
        # its analog sum unchanged and the shift-and-add telescopes to the
        # plain integer GEMV (the crossbar module docstring's exactness
        # argument).  Saturated-conversion count is provably zero.
        dense = matrix.dense_weights_t  # (in, out) float64, exact integers
        product = input_codes.astype(np.float64) @ dense
        return np.rint(product).astype(np.int64)

    planes = matrix.planes
    num_slices = matrix.slices.num_slices
    out_cols = matrix.out_features * num_slices
    bit_planes, used_bits = _packed_planes(input_codes, input_bits, stats)
    bit_w = input_bit_weights(input_bits).astype(np.float64)
    full_scale = matrix.adc.full_scale

    # Accumulate ADC codes x input-bit weights in float64: every intermediate
    # is an exact integer well inside 2^53, so this is exact integer math on
    # BLAS-friendly operands.
    acc = np.zeros((batch, out_cols), dtype=np.float64)
    saturated = 0
    skipped = 0
    for tile_index in range(num_tiles):
        row_start = tile_index * matrix.config.rows
        row_stop = min(row_start + matrix.config.rows, in_features)
        cells = planes[row_start:row_stop].reshape(row_stop - row_start, out_cols)
        cells = np.ascontiguousarray(cells, dtype=np.float64)
        for k in range(input_bits):
            if not (used_bits >> k) & 1:
                # All-zero activation bit-plane: its analog sums are all 0,
                # which the ADC converts to code 0 — zero contribution and
                # provably never saturated.  Skip the pack and the matmul.
                skipped += 1
                continue
            sums = bit_planes[k, :, row_start:row_stop].astype(np.float64) @ cells
            matrix.adc.convert_(sums)  # fused round/clip, in place
            if stats is not None:
                saturated += int(np.count_nonzero(sums == full_scale))
            # acc += bit_w[k] * sums without a temporary:
            np.multiply(sums, bit_w[k], out=sums)
            np.add(acc, sums, out=acc)
    if stats is not None:
        stats.saturated_conversions += saturated
        stats.zero_planes_skipped += skipped

    # Digital recombination over weight slices, then offset removal.
    slice_f = matrix.slices.slice_factors.astype(np.float64)
    combined = acc.reshape(batch, matrix.out_features, num_slices) @ slice_f
    result = np.rint(combined).astype(np.int64)
    row_sums = input_codes.sum(axis=1, keepdims=True)
    return result - matrix.slices.offset * row_sums


# ----------------------------------------------------------------------
# Fused batched kernel — one BLAS matmul per (bit-plane x programmed-plane)
# ----------------------------------------------------------------------
def fast_gemm(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
) -> np.ndarray:
    """Fused batched bit-serial GEMM over all rows of ``input_codes``.

    Where :func:`fast_gemv` issues one matmul per (row tile × input bit),
    this path stacks every kept bit-plane of every batch row into a single
    zero-padded ``(tiles, kept_bits*batch, rows)`` operand and hits the
    matrix's epoch-cached stacked planes
    (:meth:`~repro.rram.crossbar.ProgrammedMatrix.stacked_planes`) with
    **one** ``np.matmul``, converts the whole analog-sum block through one
    fused :meth:`~repro.rram.adc.SarAdc.convert_`, and recombines with a
    single einsum.  All-zero activation bit-planes are dropped from the
    operand (the same zero-plane skip as :func:`fast_gemv`).

    Every intermediate is an exact integer in float64, so the result is
    **bitwise-equal** to :func:`fast_gemv` on the same batch in noiseless
    mode — including every hardware counter in ``stats`` — and allclose
    under noise, where only BLAS summation order differs.
    """
    batch, in_features = input_codes.shape
    rows = matrix.config.rows
    num_tiles = -(-in_features // rows)

    if stats is not None:
        _fill_analytic_stats(stats, matrix, input_codes, input_bits, num_tiles)
        stats.fused_rows += batch

    if matrix.is_noiseless and matrix.saturation_free:
        # Same exact shortcut as fast_gemv (see there): the bit-serial
        # pipeline telescopes to the plain integer GEMV.
        dense = matrix.dense_weights_t
        product = input_codes.astype(np.float64) @ dense
        return np.rint(product).astype(np.int64)

    cache = _active_plane_cache
    if cache is not None:
        lhs, kept = cache.fused_lhs(input_codes, input_bits, rows, stats)
    else:
        planes_u8, used = _packed_planes(input_codes, input_bits, stats)
        kept = [k for k in range(input_bits) if (used >> k) & 1]
        lhs = _build_fused_lhs(planes_u8, kept, rows)

    num_slices = matrix.slices.num_slices
    row_sums = input_codes.sum(axis=1, keepdims=True)
    if stats is not None:
        stats.zero_planes_skipped += (input_bits - len(kept)) * num_tiles
    if not kept:
        # Every activation code is 0: nothing reaches the arrays, only the
        # offset-encoding correction remains (itself 0 when row_sums is 0).
        zeros = np.zeros((batch, matrix.out_features), dtype=np.int64)
        return zeros - matrix.slices.offset * row_sums

    # One fused matmul: (tiles, K*batch, rows) @ (tiles, rows, out*n_s).
    sums = np.matmul(lhs, matrix.stacked_planes())
    matrix.adc.convert_(sums)  # fused round/clip over the whole block
    if stats is not None:
        stats.saturated_conversions += int(
            np.count_nonzero(sums == matrix.adc.full_scale)
        )

    # Digital shift & add over kept input-bit planes and row tiles, then
    # slice recombination and offset removal — all exact integers in float64.
    from repro.rram.crossbar import input_bit_weights

    bit_w = input_bit_weights(input_bits).astype(np.float64)[kept]
    codes = sums.reshape(num_tiles, len(kept), batch, -1)
    acc = np.einsum("tkbc,k->bc", codes, bit_w)
    slice_f = matrix.slices.slice_factors.astype(np.float64)
    combined = acc.reshape(batch, matrix.out_features, num_slices) @ slice_f
    result = np.rint(combined).astype(np.int64)
    return result - matrix.slices.offset * row_sums


def run_gemv(
    matrix: "ProgrammedMatrix",
    input_codes: np.ndarray,
    input_bits: int,
    stats: "GemvStats | None" = None,
    policy: KernelPolicy | None = None,
) -> np.ndarray:
    """Dispatch one validated GEMV according to ``policy`` (or the default)."""
    policy = resolve_policy(policy)
    if policy.mode == "reference":
        return reference_gemv(matrix, input_codes, input_bits, stats)
    if policy.mode == "gemm":
        return fast_gemm(matrix, input_codes, input_bits, stats)
    return fast_gemv(matrix, input_codes, input_bits, stats)
