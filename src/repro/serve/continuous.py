"""Iteration-level (continuous) batching over one shared KV cache.

The static scheduler of :mod:`repro.serve.engine` cuts a batch, decodes it
to completion, and only then looks at the queue again — one long
generation stalls the whole chip while short requests queue behind it.
:class:`ContinuousScheduler` instead re-forms the in-flight batch on
*every decode step*:

- newly-submitted requests are admitted the moment a row is free, paying
  only a prefill (the paper's deploy-once hybrid SLC/MLC mapping means
  joining mid-flight never reprograms a crossbar — static weights stay
  put, only digital-PIM K/V rows are written);
- each live row decodes one token per iteration at its own sequence
  length (the ragged KV-cache path);
- finished rows retire immediately, their cache rows are compacted
  (swap-with-last via :meth:`~repro.nn.kv_cache.KVCache.copy_row`) and
  handed to the next queued request.

All rows live in ONE shared :class:`~repro.nn.kv_cache.KVCache` of
``max_batch_size`` rows, acquired from the engine's
:class:`~repro.serve.slots.CacheSlotPool` while work is in flight and
released back when the scheduler drains.  Live rows always occupy the
contiguous prefix ``[0, n_live)`` (managed by
:class:`~repro.serve.slots.RowSlotManager`), so the decode forward runs
over a zero-copy ``rows_view`` — no per-iteration reallocation.

Admission policy: strict FIFO under two limits — ``max_batch_size`` rows,
and an optional ``max_tokens`` budget bounding the total KV positions
(prompt + full budget) reserved by in-flight requests.  The head of the
queue never jumps; if it does not fit, admission waits for retirements.

Per-request outputs are token-for-token identical to one-shot
``DecoderLM.generate`` for greedy decoding: prefill runs the same
full-prompt forward, token selection goes through the same
``select_tokens``, and the ragged cached forward is the same code path
``generate`` uses (verified bitwise in the golden-trace tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.tensor import no_grad
from repro.nn.transformer import DecoderLM
from repro.rram.kernels import PlaneCache, plane_cache_scope
from repro.serve.requests import GenerationRequest, RequestResult
from repro.serve.slots import CacheSlotPool, RowSlotManager

__all__ = ["ContinuousScheduler"]


@dataclass
class _RowState:
    """Bookkeeping for one in-flight request occupying one cache row."""

    request: GenerationRequest
    row: int
    admitted_at: float
    tokens: list[int] = field(default_factory=list)
    feed: int = 0  # last emitted token; input of the next decode forward
    remaining: int = 0  # budget left
    first_token_at: float | None = None
    finished: bool = False
    preempted: bool = False  # cut short by its deadline, not its budget


class ContinuousScheduler:
    """Iteration-level scheduler: admit / decode-one-token / retire.

    Driven by :meth:`ServingEngine.step`; one :meth:`step` call performs
    one scheduler iteration.  The engine owns the request queue, the
    result retention buffer and the stats; the scheduler owns the shared
    cache, the row slots and the per-row decode state.
    """

    def __init__(
        self,
        model: DecoderLM,
        slot_pool: CacheSlotPool,
        max_batch_size: int,
        clock: Callable[[], float],
        rng: np.random.Generator | None = None,
        eos_id: int | None = None,
        max_tokens: int | None = None,
        plane_cache: bool = True,
        executor=None,
    ) -> None:
        if max_tokens is not None and max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {max_tokens}")
        self.model = model
        self.slot_pool = slot_pool
        self.max_batch_size = max_batch_size
        self.clock = clock
        self.rng = rng
        self.eos_id = eos_id
        self.max_tokens = max_tokens
        # Optional stage-pipelined decode executor (duck-typed — see
        # :class:`repro.dist.PipelinedBlockExecutor`): when set, the batch
        # decode forward runs ``executor.forward(feeds, view)`` instead of
        # ``model.forward``, overlapping pipeline stages across micro-
        # batches of rows.  Prefill (single-request admission) always stays
        # on the model.
        self.executor = executor
        self.slots = RowSlotManager(max_batch_size)
        self._rows: list[_RowState | None] = [None] * max_batch_size
        self._cache: KVCache | None = None
        self._reserved_tokens = 0  # sum of token_need over live rows
        # Packed-activation reuse across the crossbar stages of one decode
        # step (see repro.rram.kernels.PlaneCache): installed around every
        # step() and invalidated whenever the batch composition changes via
        # the RowSlotManager generation counter.  plane_cache=False packs
        # fresh on every layer call (the golden-equivalence control).
        self.plane_cache: PlaneCache | None = PlaneCache() if plane_cache else None
        self.last_decode_rows = 0  # rows advanced by the latest step()
        self.last_prefill_tokens = 0  # prompt tokens prefilled by the latest step()

    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Requests currently decoding (occupying cache rows)."""
        return self.slots.n_live

    @property
    def reserved_tokens(self) -> int:
        """KV positions (prompt + full budget) reserved by live rows."""
        return self._reserved_tokens

    def step(self, queue: list[GenerationRequest]) -> list[RequestResult]:
        """One scheduler iteration: admit, decode one token per row, retire.

        Admitted requests are popped from ``queue`` (FIFO).  Returns the
        requests that completed during this iteration.  Runs in eval mode
        under ``no_grad`` — decoding is inference, and dropout must stay
        frozen so continuous scheduling emits exactly what one-shot
        ``generate`` (which also decodes in eval mode) emits.
        """
        completed: list[RequestResult] = []
        self.last_decode_rows = 0
        self.last_prefill_tokens = 0
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad(), plane_cache_scope(self.plane_cache):
                self._sync_plane_cache()
                self._preempt_overdue(completed)  # frees rows before admission
                self._admit(queue, completed)
                self._sweep_finished(completed)  # budget-1 / instant-EOS rows
                self._decode_once()
                self._sweep_finished(completed)
        finally:
            if was_training:
                self.model.train()
        if self.live == 0 and self._cache is not None:
            # Drained: hand the shared cache back so other engines (or the
            # static path) can reuse the buffers; re-acquired on the next
            # admission (a pool hit).
            self.slot_pool.release(self._cache)
            self._cache = None
        return completed

    # ------------------------------------------------------------------
    def _sync_plane_cache(self) -> None:
        """Invalidate packed planes when the batch composition changed.

        Called before every model forward and after every checkout/retire:
        the cache compares the slot manager's generation counter, so stale
        packed activations can never survive an admit or retirement.
        """
        if self.plane_cache is not None:
            self.plane_cache.set_generation(self.slots.generation)

    # ------------------------------------------------------------------
    # Deadline enforcement (SLO preemption)
    # ------------------------------------------------------------------
    def _preempt_overdue(self, completed: list[RequestResult]) -> None:
        """Preempt live rows whose deadline has passed.

        A preempted request is finalized with the tokens emitted so far
        (``preempted=True``) and retired by the following sweep, freeing
        its cache row for queued work.  The clock is only read when some
        live row actually carries a deadline, so deadline-free serving
        performs exactly the historical clock-call sequence (the
        deterministic fake-clock tests depend on that).
        """
        states = [s for s in self._rows[: self.live] if s is not None]
        if not any(s.request.deadline_at is not None for s in states):
            return
        now = self.clock()
        for state in states:
            deadline = state.request.deadline_at
            if not state.finished and deadline is not None and now > deadline:
                state.finished = True
                state.preempted = True
        self._sweep_finished(completed)

    def _expire_queued(
        self, queue: list[GenerationRequest], completed: list[RequestResult]
    ) -> None:
        """Expire queue-head requests that are already past their deadline.

        Only the head is examined (admission is strict FIFO within the
        engine's priority ordering); deeper over-deadline requests expire
        when they reach the head.  Expired requests complete unserved with
        empty tokens and ``preempted=True``.
        """
        while queue and queue[0].deadline_at is not None:
            if self.clock() <= queue[0].deadline_at:
                break
            request = queue.pop(0)
            result = self._empty_result(request, self.clock())
            result.preempted = True
            completed.append(result)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _fits(self, request: GenerationRequest) -> bool:
        if self.max_tokens is None or self.live == 0:
            # An empty scheduler always admits the head — otherwise a
            # request whose reservation alone exceeds max_tokens could
            # deadlock the queue (submit() rejects those up front; this is
            # defense in depth).
            return True
        return self._reserved_tokens + request.token_need <= self.max_tokens

    def _admit(self, queue: list[GenerationRequest], completed: list[RequestResult]) -> None:
        self._expire_queued(queue, completed)
        while queue and self.slots.free > 0 and self._fits(queue[0]):
            request = queue.pop(0)
            admitted_at = self.clock()
            if request.max_new_tokens == 0:
                completed.append(self._empty_result(request, admitted_at))
                continue
            if self._cache is None:
                self._cache = self.slot_pool.acquire(self.max_batch_size)
                self._cache.reset()
            row = self.slots.checkout()
            self._sync_plane_cache()
            self._reserved_tokens += request.token_need
            state = _RowState(
                request=request,
                row=row,
                admitted_at=admitted_at,
                remaining=request.max_new_tokens,
            )
            self._rows[row] = state
            # Prefill through a zero-copy row view: other rows' K/V and
            # lengths are untouched while this request joins mid-flight.
            view = self._cache.row_view(row)
            view.reset()
            logits = self.model.prefill(request.prompt, view)
            token = self.model.select_tokens(logits, self.rng)
            self.last_prefill_tokens += int(request.prompt.size)
            self._emit(state, int(token[0]))
            self._expire_queued(queue, completed)

    def _empty_result(self, request: GenerationRequest, admitted_at: float) -> RequestResult:
        finished_at = self.clock()
        return RequestResult(
            request_id=request.request_id,
            prompt=request.prompt,
            tokens=np.array([], dtype=np.int64),
            queued_s=admitted_at - request.submitted_at,
            latency_s=finished_at - request.submitted_at,
            batch_size=max(1, self.live),
            ttft_s=finished_at - request.submitted_at,
            tpot_s=0.0,
        )

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _emit(self, state: _RowState, token: int) -> None:
        """Record one generated token for a live row (callbacks included)."""
        now = self.clock()
        state.tokens.append(token)
        state.feed = token
        state.remaining -= 1
        if state.first_token_at is None:
            state.first_token_at = now
        if state.request.on_token is not None:
            state.request.on_token(state.request.request_id, token)
        if state.remaining == 0 or (self.eos_id is not None and token == self.eos_id):
            state.finished = True

    def _decode_once(self) -> None:
        """Advance every live row by one token (single ragged forward)."""
        n = self.live
        if n == 0:
            return
        self._sync_plane_cache()
        self.last_decode_rows = n
        feeds = np.array([[self._rows[i].feed] for i in range(n)], dtype=np.int64)
        view = self._cache.rows_view(0, n)
        if self.executor is not None:
            logits = self.executor.forward(feeds, view)
        else:
            logits = self.model.forward(feeds, cache=view).data[:, -1]
        tokens = self.model.select_tokens(logits, self.rng)
        for i in range(n):
            self._emit(self._rows[i], int(tokens[i]))

    # ------------------------------------------------------------------
    # Retirement / compaction
    # ------------------------------------------------------------------
    def _sweep_finished(self, completed: list[RequestResult]) -> None:
        finished = [s for s in self._rows[: self.live] if s is not None and s.finished]
        if not finished:
            return
        batch_size = self.live  # concurrency during the finishing iteration
        for state in finished:
            completed.append(self._finalize(state, batch_size))
            self._retire_row(state)

    def _finalize(self, state: _RowState, batch_size: int) -> RequestResult:
        finished_at = self.clock()
        request = state.request
        n = len(state.tokens)
        tpot = (
            (finished_at - state.first_token_at) / (n - 1) if n > 1 else 0.0
        )
        return RequestResult(
            request_id=request.request_id,
            prompt=request.prompt,
            tokens=np.array(state.tokens, dtype=np.int64),
            queued_s=state.admitted_at - request.submitted_at,
            latency_s=finished_at - request.submitted_at,
            batch_size=batch_size,
            ttft_s=state.first_token_at - request.submitted_at,
            tpot_s=tpot,
            preempted=state.preempted,
        )

    def _retire_row(self, state: _RowState) -> None:
        row = state.row
        self._reserved_tokens -= state.request.token_need
        moved_src = self.slots.retire(row)
        self._sync_plane_cache()
        if moved_src is None:
            self._rows[row] = None
            self._cache.clear_row(row)
            return
        # Swap-with-last compaction: relocate the old last live row into
        # the freed slot so live rows stay a contiguous prefix.
        self._cache.copy_row(moved_src, row)
        mover = self._rows[moved_src]
        mover.row = row
        self._rows[row] = mover
        self._rows[moved_src] = None
        self._cache.clear_row(moved_src)
