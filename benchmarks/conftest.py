"""Shared fixtures for the per-figure/table benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the series it produces, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment log (captured into EXPERIMENTS.md).

The sweep-shaped figures all execute through :class:`repro.exp.Runner`:
results are cached under ``.repro_cache/`` (delete it — or edit any
``repro`` source, which rolls the code fingerprint — to recompute) and
uncached points fan out across a process pool (``REPRO_BENCH_WORKERS``
overrides the pool size; ``0`` forces serial).  The cheap analytic
figures (2, 14-17) use ``fresh_runner`` so their recorded timings always
measure real computation; the training figures (11-13) replay from cache,
so their timings reflect cache state by design.
"""

from __future__ import annotations

import os

import pytest

from repro.exp import Runner


def _default_workers() -> int:
    override = os.environ.get("REPRO_BENCH_WORKERS")
    if override is not None:
        return int(override)
    return min(4, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def runner() -> Runner:
    """Session-wide experiment runner (shared cache + worker pool)."""
    return Runner(workers=_default_workers())


@pytest.fixture(scope="session")
def fresh_runner() -> Runner:
    """Cache-free runner: honest timings for the cheap analytic figs.

    ``use_cache=False`` rather than ``force=True`` so the timed iterations
    measure only the computation, not repeated cache writes — and serial
    (``workers=0``) so sub-millisecond analytic points aren't swamped by
    process-pool startup.
    """
    return Runner(workers=0, use_cache=False)


@pytest.fixture(scope="session")
def print_header(request):
    def _header(title: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    return _header
