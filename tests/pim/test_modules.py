"""Tests for digital/analog PIM modules, the PU and the chip mapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pim import (
    AnalogModuleConfig,
    AnalogPimModule,
    ChipConfig,
    DigitalModuleConfig,
    DigitalPimModule,
    HyFlexPimChip,
    ProcessingUnit,
    ProcessingUnitConfig,
)
from repro.rram import MLC2, SLC
from repro.svd.pipeline import LayerPlan


def make_plan(name: str, rank: int, in_f: int, out_f: int, protect: int, rng) -> LayerPlan:
    mask = np.zeros(rank, dtype=bool)
    mask[:protect] = True
    return LayerPlan(
        name=name,
        a_matrix=rng.normal(size=(rank, in_f)),
        b_matrix=rng.normal(size=(out_f, rank)),
        bias=np.zeros(out_f),
        protected_ranks=mask,
        sigma_gradients=rng.random(rank),
    )


class TestDigitalModule:
    def test_capacity_math(self):
        cfg = DigitalModuleConfig()
        assert cfg.array_bytes == 128 * 1024  # 1024x1024 SLC = 128 KB
        assert cfg.capacity_bytes == 256 * 128 * 1024  # 32 MB per module

    def test_throughput_balance_matches_paper(self):
        """Section 3.1: 256x1024 / (64x3) / 5 ≈ 273 ops/cycle."""
        assert DigitalModuleConfig().throughput_ops_per_cycle == pytest.approx(273.07, abs=0.1)

    def test_matmul_is_exact(self, rng):
        module = DigitalPimModule()
        a = rng.integers(-128, 128, size=(6, 9))
        b = rng.integers(-128, 128, size=(9, 5))
        np.testing.assert_array_equal(module.matmul_int(a, b), a @ b)

    def test_matmul_counts_nor_ops(self, rng):
        module = DigitalPimModule()
        a = rng.integers(-128, 128, size=(4, 8))
        b = rng.integers(-128, 128, size=(8, 3))
        module.matmul_int(a, b)
        assert module.stats.int8_macs == 4 * 8 * 3
        assert module.stats.nor_ops == 4 * 8 * 3 * 64
        assert module.stats.compute_cycles >= 1
        assert module.stats.bytes_written == a.size + b.size

    def test_matmul_validates_range(self):
        module = DigitalPimModule()
        with pytest.raises(ValueError):
            module.matmul_int(np.array([[200]]), np.array([[1]]))

    def test_attention_helpers(self, rng):
        module = DigitalPimModule()
        q = rng.integers(-128, 128, size=(4, 8))
        k = rng.integers(-128, 128, size=(4, 8))
        v = rng.integers(-128, 128, size=(4, 8))
        scores = module.attention_scores(q, k)
        np.testing.assert_array_equal(scores, q @ k.T)
        probs = rng.integers(0, 127, size=(4, 4))
        np.testing.assert_array_equal(module.attention_context(probs, v), probs @ v)

    def test_storage_overflow(self):
        module = DigitalPimModule(DigitalModuleConfig(num_arrays=1))
        with pytest.raises(MemoryError):
            module.write(module.config.capacity_bytes + 1)

    def test_write_release_cycle(self):
        module = DigitalPimModule()
        module.write(1000)
        assert module.stored_bytes == 1000
        module.release(400)
        assert module.stored_bytes == 600
        with pytest.raises(ValueError):
            module.release(10_000)

    def test_sfu_integration_counts_cycles(self, rng):
        module = DigitalPimModule()
        module.softmax(rng.normal(size=(4, 300)))
        assert module.stats.sfu_cycles > 0


class TestAnalogModule:
    def test_deploy_and_gemv(self, rng):
        module = AnalogPimModule()
        w = rng.integers(-128, 128, size=(16, 64))
        module.deploy("w_q", w, SLC)
        assert module.arrays_used == 1
        x = rng.integers(-128, 128, size=(2, 64))
        out = module.gemv("w_q", x)
        rel = np.abs(out - x @ w.T).mean() / (np.abs(x @ w.T).mean() + 1e-9)
        assert rel < 0.05  # SLC at calibrated noise is near-exact

    def test_duplicate_name_rejected(self, rng):
        module = AnalogPimModule()
        w = rng.integers(-128, 128, size=(4, 16))
        module.deploy("w", w, SLC)
        with pytest.raises(KeyError):
            module.deploy("w", w, SLC)

    def test_capacity_enforced(self, rng):
        small = AnalogPimModule(AnalogModuleConfig(num_arrays=2))
        w = rng.integers(-128, 128, size=(128, 64))  # needs 8 SLC arrays
        with pytest.raises(MemoryError):
            small.deploy("big", w, SLC)

    def test_mlc_fits_where_slc_does_not(self, rng):
        w = rng.integers(-128, 128, size=(128, 64))
        slc_module = AnalogPimModule(AnalogModuleConfig(num_arrays=4))
        with pytest.raises(MemoryError):
            slc_module.deploy("w", w, SLC)  # needs 8
        mlc_module = AnalogPimModule(AnalogModuleConfig(num_arrays=4))
        mlc_module.deploy("w", w, MLC2)  # needs 4
        assert mlc_module.arrays_used == 4

    def test_utilization(self, rng):
        module = AnalogPimModule(AnalogModuleConfig(num_arrays=8))
        module.deploy("w", rng.integers(-128, 128, size=(16, 64)), SLC)
        assert module.utilization() == pytest.approx(1 / 8)

    def test_gemv_latency_model(self):
        module = AnalogPimModule()
        # 8 input bits + 1 pipeline drain at 100 ns per wave.
        assert module.gemv_latency_ns(input_bits=8) == pytest.approx(900.0)

    def test_slc_capacity(self):
        cfg = AnalogModuleConfig()
        assert cfg.slc_capacity_bytes() == 512 * 64 * 128 // 8  # 512 KB


class TestProcessingUnit:
    def test_config_matches_paper(self):
        cfg = ProcessingUnitConfig()
        assert cfg.num_analog_modules == 24
        assert cfg.num_digital_modules == 8
        assert cfg.total_analog_arrays == 24 * 512
        assert cfg.digital_capacity_bytes == 8 * 32 * 1024 * 1024

    def test_place_layer_fragments(self, rng):
        pu = ProcessingUnit()
        plan = make_plan("blocks.0.w_q", rank=16, in_f=64, out_f=64, protect=4, rng=rng)
        pu.place_layer(plan)
        fragments = {p.fragment for p in pu.placements}
        assert fragments == {"A/slc", "A/mlc", "B/slc", "B/mlc"}
        assert pu.arrays_used() > 0

    def test_zero_protection_skips_slc_fragments(self, rng):
        pu = ProcessingUnit()
        plan = make_plan("blocks.0.ffn1", rank=16, in_f=64, out_f=64, protect=0, rng=rng)
        pu.place_layer(plan)
        fragments = {p.fragment for p in pu.placements}
        assert fragments == {"A/mlc", "B/mlc"}

    def test_can_fit_layer(self, rng):
        tiny_cfg = ProcessingUnitConfig(
            num_analog_modules=1,
            analog=AnalogModuleConfig(num_arrays=8),
        )
        pu = ProcessingUnit(tiny_cfg)
        small = make_plan("blocks.0.w_q", rank=8, in_f=32, out_f=16, protect=2, rng=rng)
        big = make_plan("blocks.0.ffn1", rank=256, in_f=1024, out_f=1024, protect=32, rng=rng)
        assert pu.can_fit_layer(small)
        assert not pu.can_fit_layer(big)

    def test_spills_to_next_module(self, rng):
        cfg = ProcessingUnitConfig(
            num_analog_modules=4, analog=AnalogModuleConfig(num_arrays=2)
        )
        pu = ProcessingUnit(cfg)
        plan = make_plan("blocks.0.w_q", rank=16, in_f=64, out_f=64, protect=8, rng=rng)
        pu.place_layer(plan)
        modules_hit = {p.module_index for p in pu.placements}
        assert len(modules_hit) > 1  # fragments spread over modules

    def test_store_dynamic_spreads_over_digital_modules(self):
        cfg = ProcessingUnitConfig(
            num_digital_modules=2,
            digital=DigitalModuleConfig(num_arrays=1),
        )
        pu = ProcessingUnit(cfg)
        per_module = cfg.digital.capacity_bytes
        pu.store_dynamic(per_module + 10)
        assert pu.digital_modules[0].stored_bytes == per_module
        assert pu.digital_modules[1].stored_bytes == 10
        with pytest.raises(MemoryError):
            pu.store_dynamic(per_module)


class TestChip:
    def test_config_matches_paper(self):
        cfg = ChipConfig()
        assert cfg.num_processing_units == 24
        assert cfg.global_bus_gbps == 128.0
        assert cfg.inner_bus_gbps == 1000.0

    def test_deploys_one_block_per_pu(self, rng):
        from repro.svd.pipeline import RedistributionPlan
        from repro.svd.finetune import FinetuneResult

        layers = {}
        for block in range(3):
            for leaf in ("w_q", "ffn1"):
                name = f"blocks.{block}.{leaf}"
                layers[name] = make_plan(name, rank=16, in_f=64, out_f=64, protect=4, rng=rng)
        plan = RedistributionPlan(
            layers=layers,
            finetune_result=FinetuneResult([0.0], {}, 0),
            protect_fraction=0.25,
            policy="gradient",
        )
        chip = HyFlexPimChip()
        assignments = chip.deploy(plan)
        assert len(assignments) == 3
        # Pipelined blocks occupy consecutive distinct PUs.
        all_pus = [i for a in assignments for i in a.pu_indices]
        assert len(set(all_pus)) == len(all_pus)
        assert chip.pus_used() == 3
        assert 0 < chip.analog_utilization() < 1

    def test_transfer_latency_tiny_for_hidden_vectors(self):
        """Section 3.1: a 0.75-2 KB hidden output moves in a handful of cycles."""
        chip = HyFlexPimChip()
        cycles = chip.transfer_latency_cycles(2 * 1024)
        assert cycles < 25

    def test_rejects_unexpected_layer_names(self, rng):
        from repro.svd.pipeline import RedistributionPlan
        from repro.svd.finetune import FinetuneResult

        plan = RedistributionPlan(
            layers={"head": make_plan("head", 4, 8, 8, 1, rng)},
            finetune_result=FinetuneResult([0.0], {}, 0),
            protect_fraction=0.25,
            policy="gradient",
        )
        with pytest.raises(ValueError):
            HyFlexPimChip().deploy(plan)
