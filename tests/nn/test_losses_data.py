"""Tests for losses and the data pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    ArrayDataset,
    BatchIterator,
    Tensor,
    cross_entropy,
    lm_cross_entropy,
    mse_loss,
    train_test_split,
)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        loss = cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(Tensor(logits), np.array([0, 1]))
        assert float(loss.data) < 1e-6

    def test_uniform_logits_give_log_classes(self):
        logits = np.zeros((5, 4))
        loss = cross_entropy(Tensor(logits), np.zeros(5, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(4))

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        targets = np.array([1, 0])
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.eye(3)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 2, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))


class TestLmCrossEntropy:
    def test_equals_flat_cross_entropy(self, rng):
        logits = rng.normal(size=(2, 5, 7))
        targets = rng.integers(0, 7, size=(2, 5))
        a = float(lm_cross_entropy(Tensor(logits), targets).data)
        b = float(cross_entropy(Tensor(logits.reshape(10, 7)), targets.reshape(-1)).data)
        assert a == pytest.approx(b)

    def test_perplexity_of_uniform_model_is_vocab(self):
        logits = np.zeros((1, 4, 11))
        loss = lm_cross_entropy(Tensor(logits), np.zeros((1, 4), dtype=int))
        assert np.exp(float(loss.data)) == pytest.approx(11.0)


class TestMSE:
    def test_matches_numpy(self, rng):
        preds = rng.normal(size=(6,))
        targets = rng.normal(size=(6,))
        loss = mse_loss(Tensor(preds), targets)
        assert float(loss.data) == pytest.approx(((preds - targets) ** 2).mean())

    def test_gradient(self, rng):
        preds = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        mse_loss(preds, np.array([0.0, 0.0])).backward()
        np.testing.assert_allclose(preds.grad, [1.0, 2.0])


class TestData:
    def test_dataset_length_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_batch_iterator_covers_everything(self, rng):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        batches = list(BatchIterator(ds, batch_size=3, shuffle=False, rng=rng))
        assert len(batches) == 4
        seen = np.concatenate([t for _, t in batches])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_drop_last(self, rng):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        it = BatchIterator(ds, batch_size=3, shuffle=False, rng=rng, drop_last=True)
        assert len(it) == 3
        assert sum(1 for _ in it) == 3

    def test_shuffle_is_deterministic_given_rng(self):
        ds = ArrayDataset(np.arange(8).reshape(8, 1), np.arange(8))
        a = [t.tolist() for _, t in BatchIterator(ds, 4, rng=np.random.default_rng(5))]
        b = [t.tolist() for _, t in BatchIterator(ds, 4, rng=np.random.default_rng(5))]
        assert a == b

    def test_alignment_preserved_under_shuffle(self, rng):
        inputs = np.arange(20).reshape(20, 1)
        targets = np.arange(20) * 10
        it = BatchIterator(ArrayDataset(inputs, targets), 5, shuffle=True, rng=rng)
        for x, y in it:
            np.testing.assert_array_equal(x[:, 0] * 10, y)

    def test_train_test_split_partition(self, rng):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        train, test = train_test_split(ds, 0.3, rng)
        assert len(train) == 7 and len(test) == 3
        combined = np.sort(np.concatenate([train.targets, test.targets]))
        np.testing.assert_array_equal(combined, np.arange(10))

    def test_split_rejects_bad_fraction(self, rng):
        ds = ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            train_test_split(ds, 1.5, rng)

    def test_batch_size_validation(self, rng):
        ds = ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            BatchIterator(ds, 0, rng=rng)
