"""RRAM device, noise, ADC and crossbar models (paper Sections 3.2, 5.2)."""

from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.cell import (
    CELL_TYPES,
    CellType,
    MLC2,
    MLC3,
    MLC4,
    RramDeviceParams,
    SLC,
)
from repro.rram.crossbar import (
    CrossbarConfig,
    GemvStats,
    ProgrammedMatrix,
    WeightSlices,
    bit_serial_gemv,
    input_bit_weights,
    slice_weights,
)
from repro.rram.endurance import EnduranceModel, WearReport
from repro.rram.kernels import (
    KernelPolicy,
    fast_gemv,
    get_default_kernel_policy,
    kernel_policy,
    reference_gemv,
    set_default_kernel_policy,
)
from repro.rram.mapping import (
    HybridSplit,
    MappedMatrix,
    ShardSpec,
    array_footprint,
    partition_rank,
    split_by_rank,
)
from repro.rram.noise import (
    DEFAULT_NOISE,
    MEASURED_MLC2_BER,
    NoiseSpec,
    SLC_PRECISION_RATIO,
    apply_multiplicative_noise,
    ber_to_sigma,
    level_error_rate,
    sigma_to_ber,
)

__all__ = [
    "CELL_TYPES",
    "CellType",
    "CrossbarConfig",
    "DEFAULT_NOISE",
    "EnduranceModel",
    "GemvStats",
    "HybridSplit",
    "MEASURED_MLC2_BER",
    "MLC2",
    "MLC3",
    "MLC4",
    "MappedMatrix",
    "NoiseSpec",
    "ProgrammedMatrix",
    "RramDeviceParams",
    "SLC",
    "SLC_PRECISION_RATIO",
    "SarAdc",
    "ShardSpec",
    "WearReport",
    "WeightSlices",
    "KernelPolicy",
    "apply_multiplicative_noise",
    "array_footprint",
    "ber_to_sigma",
    "bit_serial_gemv",
    "fast_gemv",
    "get_default_kernel_policy",
    "input_bit_weights",
    "kernel_policy",
    "level_error_rate",
    "partition_rank",
    "reference_gemv",
    "required_adc_bits",
    "set_default_kernel_policy",
    "sigma_to_ber",
    "slice_weights",
    "split_by_rank",
]
