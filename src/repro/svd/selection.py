"""SLC-protection selection policies (Section 6.2, Fig. 13).

Three policies decide which portion of the factored weights is written to
SLC RRAM (protected, high noise margin) versus MLC (efficient, noisy):

- **gradient-based** (the paper's proposal): protect the ranks whose singular
  values accumulated the largest ``|dL/dσ|`` during fine-tuning;
- **rank-based** (ablation): protect the top-``k%`` largest singular values,
  i.e. the leading ranks, ignoring the loss signal;
- **magnitude-based** (ablation, no SVD): protect individual weight elements
  with the largest ``|w|`` (L1) or ``w²`` (L2) scores.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "protected_count",
    "select_ranks_by_gradient",
    "select_ranks_by_rank",
    "select_elements_by_magnitude",
]


def protected_count(total: int, protect_fraction: float) -> int:
    """Number of protected items for a ``k%`` protection rate.

    0 % protects nothing, 100 % protects everything; intermediate rates round
    to the nearest item count but protect at least one item when nonzero.
    """
    if not 0.0 <= protect_fraction <= 1.0:
        raise ValueError(f"protect_fraction must be in [0, 1], got {protect_fraction}")
    if protect_fraction == 0.0:
        return 0
    if protect_fraction == 1.0:
        return total
    return min(total, max(1, int(round(total * protect_fraction))))


def select_ranks_by_gradient(
    sigma_gradients: np.ndarray, protect_fraction: float
) -> np.ndarray:
    """Boolean mask over ranks: True = protect in SLC (paper's policy).

    ``sigma_gradients`` are accumulated ``|dL/dσ_i|`` magnitudes from
    fine-tuning (Algorithm 1 step 4).
    """
    sigma_gradients = np.asarray(sigma_gradients, dtype=float)
    n = protected_count(len(sigma_gradients), protect_fraction)
    mask = np.zeros(len(sigma_gradients), dtype=bool)
    if n:
        top = np.argsort(sigma_gradients)[::-1][:n]
        mask[top] = True
    return mask


def select_ranks_by_rank(sigma: np.ndarray, protect_fraction: float) -> np.ndarray:
    """Protect the ranks with the largest singular values (brute-force)."""
    sigma = np.asarray(sigma, dtype=float)
    n = protected_count(len(sigma), protect_fraction)
    mask = np.zeros(len(sigma), dtype=bool)
    if n:
        top = np.argsort(sigma)[::-1][:n]
        mask[top] = True
    return mask


def select_elements_by_magnitude(
    weight: np.ndarray, protect_fraction: float, norm: str = "l1"
) -> np.ndarray:
    """Elementwise protection mask over a dense weight matrix (no SVD).

    ``norm`` chooses the importance score: ``"l1"`` uses ``|w|``, ``"l2"``
    uses ``w²`` (identical ordering for single elements; both are kept to
    mirror the figure's two rows, and they differ for grouped variants).
    """
    if norm not in ("l1", "l2"):
        raise ValueError(f"norm must be 'l1' or 'l2', got {norm!r}")
    weight = np.asarray(weight, dtype=float)
    score = np.abs(weight) if norm == "l1" else weight**2
    n = protected_count(weight.size, protect_fraction)
    mask = np.zeros(weight.size, dtype=bool)
    if n:
        top = np.argsort(score.reshape(-1))[::-1][:n]
        mask[top] = True
    return mask.reshape(weight.shape)
