"""Tests for optimizers, schedules and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import AdamW, LinearWarmupSchedule, Parameter, SGD, Tensor, clip_grad_norm


def quadratic_loss(param: Parameter) -> Tensor:
    """Convex bowl with minimum at 3."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0 * np.ones(4), atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = float(quadratic_loss(p).data)
        assert losses[0.9] < losses[0.0]

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated: should be a no-op
        np.testing.assert_allclose(p.data, np.ones(2))


class TestAdamW:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = AdamW([p], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0 * np.ones(4), atol=1e-2)

    def test_weight_decay_is_decoupled(self):
        # With zero gradient, AdamW weight decay still shrinks parameters.
        p = Parameter(np.ones(3))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, np.ones(3) * (1 - 0.1 * 0.5))

    def test_first_step_magnitude_close_to_lr(self):
        # Adam's bias correction makes the first update ~= lr * sign(grad).
        p = Parameter(np.zeros(1))
        opt = AdamW([p], lr=0.01, weight_decay=0.0)
        p.grad = np.array([5.0])
        opt.step()
        np.testing.assert_allclose(np.abs(p.data), [0.01], rtol=1e-6)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            AdamW([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            AdamW([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            AdamW([], lr=0.1)


class TestSchedule:
    def test_warmup_then_decay(self):
        p = Parameter(np.zeros(1))
        opt = AdamW([p], lr=1.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=10, total_steps=110)
        lrs = [sched.step() for _ in range(110)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[9] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert max(lrs) == pytest.approx(1.0)

    def test_zero_warmup(self):
        opt = SGD([Parameter(np.zeros(1))], lr=2.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=0, total_steps=4)
        first = sched.step()
        assert first == pytest.approx(1.5)

    def test_rejects_bad_steps(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, warmup_steps=10, total_steps=5)


class TestClipGradNorm:
    def test_scales_large_gradients(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
