"""HybridLinear: factored inference layer on hybrid SLC/MLC analog PIM.

This is the deployment form of one static weight matrix after gradient
redistribution (Fig. 9): the layer computes

    y = ((x @ Aᵀ) @ Bᵀ) + b,   A = Σ·Vᵀ (rank x in),  B = U (out x rank)

with both GEMVs running through INT8 quantization and noisy analog RRAM.
Each rank is assigned to SLC (protected) or MLC (efficient); the two
partial GEMVs recombine digitally.

Two execution modes trade fidelity for speed:

- ``"crossbar"`` — full bit-serial simulation (bit-sliced cells, frozen
  programming noise, 6/7-b ADC, shift-and-add).  Exact to the hardware
  model; used for layer-level studies and verification.
- ``"fast"`` — weight-level noise injection ``W̃ = W ⊙ (1 + η)`` on the
  INT8-quantized factors, the paper's own Eq. (5) accuracy methodology.
  Orders of magnitude faster; used for whole-model accuracy sweeps
  (Fig. 12/13).  Consistency between the two modes is unit-tested.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor, get_default_dtype
from repro.quant.quantizer import QuantParams, dequantize, quantize
from repro.rram.backend import CrossbarBackend
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import CrossbarConfig, GemvStats
from repro.rram.kernels import KernelPolicy
from repro.rram.mapping import HybridSplit, array_footprint, partition_rank, split_by_rank
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec, apply_multiplicative_noise
from repro.svd.pipeline import LayerPlan
from repro.utils.parallel import map_with_threads

__all__ = [
    "HybridLinear",
    "MagnitudeProtectedLinear",
    "attach_hybrid_layers",
    "calibrate_activations",
]

_MODES = ("fast", "crossbar")

#: Bit width of the INT8 activation quantizers in the crossbar path.
_ACTIVATION_BITS = 8


class MagnitudeProtectedLinear(Module):
    """Dense (non-SVD) layer with elementwise magnitude-based SLC protection.

    The Fig. 13 ablation baseline: without SVD there is no rank structure,
    so the top-``k%`` |w| elements are protected in SLC and the rest sit in
    MLC.  Executed with the fast Eq. (5) noise path (element-granular
    SLC/MLC mixing inside one column is not physically realizable on the
    crossbar, which is itself part of the paper's argument for rank-level
    protection).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        protected_mask: np.ndarray,
        noise: NoiseSpec | None = None,
        mlc_cell: CellType = MLC2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=float)
        protected_mask = np.asarray(protected_mask, dtype=bool)
        if protected_mask.shape != weight.shape:
            raise ValueError(
                f"mask shape {protected_mask.shape} != weight shape {weight.shape}"
            )
        self.noise = noise or DEFAULT_NOISE
        self.out_features, self.in_features = weight.shape
        codes, params = quantize(weight, num_bits=8)
        dequant = dequantize(codes, params)
        rng = np.random.default_rng(seed)
        noisy = np.empty_like(dequant)
        noisy[protected_mask] = apply_multiplicative_noise(
            dequant[protected_mask], self.noise.sigma(SLC), rng
        )
        noisy[~protected_mask] = apply_multiplicative_noise(
            dequant[~protected_mask], self.noise.sigma(mlc_cell), rng
        )
        self._noisy_weight = noisy
        self._bias = None if bias is None else np.asarray(bias, dtype=float)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
        out = data @ self._noisy_weight.T
        if self._bias is not None:
            out = out + self._bias
        return Tensor(out)


class HybridLinear(Module):
    """Inference-only linear layer executed on hybrid SLC/MLC analog PIM."""

    def __init__(
        self,
        plan: LayerPlan,
        noise: NoiseSpec | None = None,
        mode: str = "fast",
        mlc_cell: CellType = MLC2,
        config: CrossbarConfig | None = None,
        seed: int = 0,
        policy: KernelPolicy | None = None,
        backend: CrossbarBackend | None = None,
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.plan = plan
        self.noise = noise or DEFAULT_NOISE
        self.mode = mode
        self.mlc_cell = mlc_cell
        self.config = config or CrossbarConfig()
        self.seed = seed
        self.policy = policy
        self.backend = backend
        self.in_features = plan.a_matrix.shape[1]
        self.out_features = plan.b_matrix.shape[0]
        self.rank = plan.rank
        self._arrays_used: int | None = None
        # Calibrated activation quantization (deploy-time serving path): when
        # set, crossbar GEMVs reuse these frozen scales instead of rescaling
        # from each call's min/max — one calibration pass, then stable
        # per-call behaviour (and no data-dependent scale drift) under load.
        self._x_params: QuantParams | None = None
        self._h_params: QuantParams | None = None
        self._calibrating = False
        self._x_absmax = 0.0
        self._h_absmax = 0.0
        # Sharded (tensor-parallel) deployment state — see :meth:`deploy`.
        self._mesh = None
        self._chip = 0
        self._rank_slices: list[tuple[int, int]] | None = None
        self._shard_splits: list[HybridSplit] | None = None
        self._shard_parallel = False

        # INT8 weight quantization (per-tensor, symmetric) for both factors.
        self._a_codes, self._a_params = quantize(plan.a_matrix, num_bits=8)
        self._b_codes, self._b_params = quantize(plan.b_matrix, num_bits=8)

        rng = np.random.default_rng(seed)
        if mode == "crossbar":
            self._split: HybridSplit | None = split_by_rank(
                self._a_codes,
                self._b_codes,
                plan.protected_ranks,
                noise=self.noise,
                config=self.config,
                mlc_cell=mlc_cell,
                seed=seed,
                policy=policy,
                backend=backend,
            )
            self._noisy_a = None
            self._noisy_b = None
        else:
            self._split = None
            # Weight-level Eq. (5) noise, applied once (static weights are
            # programmed once); protected ranks get SLC sigma, rest MLC sigma.
            sigma_slc = self.noise.sigma(SLC)
            sigma_mlc = self.noise.sigma(mlc_cell)
            protected = plan.protected_ranks
            a_noisy = np.empty_like(plan.a_matrix)
            b_noisy = np.empty_like(plan.b_matrix)
            a_deq = dequantize(self._a_codes, self._a_params)
            b_deq = dequantize(self._b_codes, self._b_params)
            a_noisy[protected] = apply_multiplicative_noise(a_deq[protected], sigma_slc, rng)
            a_noisy[~protected] = apply_multiplicative_noise(a_deq[~protected], sigma_mlc, rng)
            b_noisy[:, protected] = apply_multiplicative_noise(
                b_deq[:, protected], sigma_slc, rng
            )
            b_noisy[:, ~protected] = apply_multiplicative_noise(
                b_deq[:, ~protected], sigma_mlc, rng
            )
            self._noisy_a = a_noisy
            self._noisy_b = b_noisy

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Inference pass; gradients do not flow through PIM hardware."""
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=get_default_dtype())
        original_shape = data.shape
        flat = data.reshape(-1, original_shape[-1])
        if self._rank_slices is not None:
            out = (
                self._forward_fast_sharded(flat)
                if self.mode == "fast"
                else self._forward_crossbar_sharded(flat)
            )
        elif self.mode == "fast":
            out = self._forward_fast(flat)
        else:
            out = self._forward_crossbar(flat)
        if self.plan.bias is not None:
            out = out + self.plan.bias
        return Tensor(out.reshape(original_shape[:-1] + (self.out_features,)))

    def _forward_fast(self, flat: np.ndarray) -> np.ndarray:
        hidden = flat @ self._noisy_a.T
        return hidden @ self._noisy_b.T

    def _forward_crossbar(self, flat: np.ndarray) -> np.ndarray:
        split = self._split
        # Intermediate buffers follow the process-wide tensor dtype policy
        # (float32 under set_default_dtype("float32")) rather than a
        # hardcoded float64 — forward() wraps the result in a Tensor, which
        # would down-cast anyway, so wider buffers were pure waste.
        dtype = get_default_dtype()
        # Stage 1: x (INT8) @ A^T on SLC/MLC arrays.  Frozen calibration
        # scales (if present) replace the per-call rescaling.
        x_codes, x_params = quantize(
            flat, num_bits=_ACTIVATION_BITS, params=self._active_params("x")
        )
        hidden = np.zeros((flat.shape[0], self.rank), dtype=dtype)
        protected = self.plan.protected_ranks
        scale_in = np.asarray(x_params.scale) * np.asarray(self._a_params.scale)
        if split.slc_a is not None:
            hidden[:, protected] = split.slc_a.gemv(x_codes) * scale_in
        if split.mlc_a is not None:
            hidden[:, ~protected] = split.mlc_a.gemv(x_codes) * scale_in

        # Stage 2: h (requantized INT8) @ B^T.
        h_codes, h_params = quantize(
            hidden, num_bits=_ACTIVATION_BITS, params=self._active_params("h")
        )
        scale_out = np.asarray(h_params.scale) * np.asarray(self._b_params.scale)
        out = np.zeros((flat.shape[0], self.out_features), dtype=dtype)
        if split.slc_b is not None:
            out += split.slc_b.gemv(h_codes[:, protected]) * scale_out
        if split.mlc_b is not None:
            out += split.mlc_b.gemv(h_codes[:, ~protected]) * scale_out
        if self._calibrating:
            self._x_absmax = max(self._x_absmax, float(np.abs(flat).max(initial=0.0)))
            self._h_absmax = max(self._h_absmax, float(np.abs(hidden).max(initial=0.0)))
        return out

    def _active_params(self, which: str) -> QuantParams | None:
        """Frozen calibrated activation params, unless observing/uncalibrated."""
        if self._calibrating:
            return None
        return self._x_params if which == "x" else self._h_params

    # ------------------------------------------------------------------
    # Sharded (tensor-parallel) deployment — paper Section 3.1, cases 1-2
    # ------------------------------------------------------------------
    def deploy(
        self,
        mesh,
        rank_slices: list[tuple[int, int]] | None = None,
        *,
        tensor_parallel: int | None = None,
        chip: int = 0,
        parallel: bool = False,
    ) -> list[tuple[int, int]]:
        """Partition this layer's mapped arrays into tensor-parallel shards.

        ``mesh`` is a :class:`~repro.dist.DeviceMesh` (its traffic ledger
        receives the OCI partial-sum aggregation every sharded forward
        performs).  ``rank_slices`` gives explicit contiguous shard ranges
        (from a :class:`~repro.dist.ShardPlan`); alternatively
        ``tensor_parallel`` derives a balanced partition.  ``parallel``
        fans the per-shard GEMVs out over threads
        (:func:`repro.utils.parallel.map_with_threads`) — the fast kernel's
        BLAS matmuls release the GIL.

        Crossbar mode programs one :class:`~repro.rram.mapping.HybridSplit`
        per shard (per-shard seeded noise draws; a 1-way deployment
        reproduces the unsharded programming bit-for-bit).  Fast mode
        slices the already-noised Eq. (5) factors.  Returns the shard
        ranges deployed.
        """
        if rank_slices is None:
            rank_slices = partition_rank(
                self.rank, tensor_parallel or 1, tile=self.config.rows
            )
        else:
            rank_slices = [(int(a), int(b)) for a, b in rank_slices]
        if not rank_slices:
            raise ValueError("rank_slices must contain at least one shard")
        cursor = 0
        for start, stop in rank_slices:
            if start != cursor or stop <= start:
                raise ValueError(
                    f"rank_slices must be contiguous, non-empty and ordered; "
                    f"got {rank_slices}"
                )
            cursor = stop
        if cursor != self.rank:
            raise ValueError(
                f"rank_slices cover [0, {cursor}) but the layer rank is {self.rank}"
            )

        if self.mode == "crossbar":
            num_shards = len(rank_slices)
            splits = []
            for index, (start, stop) in enumerate(rank_slices):
                # A 1-way deployment reuses the layer seed, so its noise
                # draws — and therefore its outputs — match the unsharded
                # split exactly.  Multi-way shards get decorrelated seeds.
                seed = self.seed if num_shards == 1 else self.seed + 104729 * (index + 1)
                splits.append(
                    split_by_rank(
                        self._a_codes,
                        self._b_codes,
                        self.plan.protected_ranks,
                        noise=self.noise,
                        config=self.config,
                        mlc_cell=self.mlc_cell,
                        seed=seed,
                        policy=self.policy,
                        rank_range=(start, stop),
                        shard_index=index,
                        num_shards=num_shards,
                        backend=self.backend,
                    )
                )
            self._shard_splits = splits
        else:
            self._shard_splits = None
        self._mesh = mesh
        self._chip = chip
        self._rank_slices = rank_slices
        self._shard_parallel = parallel
        self._arrays_used = None  # footprint now counts per-shard tiling
        return rank_slices

    def undeploy(self) -> None:
        """Drop the sharded deployment (back to the single-device forward)."""
        self._mesh = None
        self._chip = 0
        self._rank_slices = None
        self._shard_splits = None
        self._shard_parallel = False
        self._arrays_used = None

    @property
    def is_sharded(self) -> bool:
        return self._rank_slices is not None

    @property
    def num_shards(self) -> int:
        return len(self._rank_slices) if self._rank_slices is not None else 1

    def _shard_map(self, fn, items):
        workers = len(items) if self._shard_parallel else 1
        return map_with_threads(fn, items, workers)

    def _record_shard_traffic(self, batch: int, calibrated: bool) -> None:
        """OCI cost of one sharded forward: stage-2 partial-sum aggregation
        (4 B INT32 partial sums per output element from every non-aggregating
        shard) plus, when activation scales are derived per call, the
        scalar absmax sync that keeps shard quantization coherent."""
        shards = self.num_shards
        if self._mesh is None or shards < 2:
            return
        self._mesh.record_partial_sum_aggregation(
            shards, float(batch) * self.out_features * 4
        )
        if not calibrated:
            self._mesh.record("oci", (shards - 1) * 8.0, transfers=shards - 1)

    def _forward_crossbar_sharded(self, flat: np.ndarray) -> np.ndarray:
        """Tensor-parallel crossbar forward over the deployed shards.

        Noiseless, this is bitwise-equal to :meth:`_forward_crossbar` under
        the fast kernel: stage-1 shards compute disjoint column slices of
        the same integer hidden vector; stage-2 partial sums accumulate in
        int64 before the one float scaling the unsharded path also applies.
        Activation quantization uses the same global scales (derived from
        the full hidden vector — hardware syncs a scalar absmax over the
        OCI, accounted in the traffic ledger).
        """
        dtype = get_default_dtype()
        splits = self._shard_splits
        slices = self._rank_slices
        protected = self.plan.protected_ranks

        x_codes, x_params = quantize(
            flat, num_bits=_ACTIVATION_BITS, params=self._active_params("x")
        )
        scale_in = np.asarray(x_params.scale) * np.asarray(self._a_params.scale)

        # Stage 1: every shard computes its own column slice of the hidden
        # vector from the broadcast input codes (no partial sums yet).
        def stage1(item):
            split = item
            parts = {}
            if split.slc_a is not None:
                parts["slc"] = split.slc_a.gemv(x_codes)
            if split.mlc_a is not None:
                parts["mlc"] = split.mlc_a.gemv(x_codes)
            return parts

        stage1_parts = self._shard_map(stage1, list(splits))
        hidden = np.zeros((flat.shape[0], self.rank), dtype=dtype)
        for (start, stop), parts in zip(slices, stage1_parts):
            local_protected = protected[start:stop]
            view = hidden[:, start:stop]
            if "slc" in parts:
                view[:, local_protected] = parts["slc"] * scale_in
            if "mlc" in parts:
                view[:, ~local_protected] = parts["mlc"] * scale_in

        # Stage 2: shard s consumes its own hidden slice (requantized with
        # the *global* scale) and produces an additive partial sum of the
        # full output; partials reduce in int64 over the OCI.
        h_codes, h_params = quantize(
            hidden, num_bits=_ACTIVATION_BITS, params=self._active_params("h")
        )
        scale_out = np.asarray(h_params.scale) * np.asarray(self._b_params.scale)

        def stage2(item):
            (start, stop), split = item
            local_protected = protected[start:stop]
            h_local = h_codes[:, start:stop]
            slc = mlc = None
            if split.slc_b is not None:
                slc = split.slc_b.gemv(h_local[:, local_protected])
            if split.mlc_b is not None:
                mlc = split.mlc_b.gemv(h_local[:, ~local_protected])
            return slc, mlc

        stage2_parts = self._shard_map(stage2, list(zip(slices, splits)))
        slc_acc = np.zeros((flat.shape[0], self.out_features), dtype=np.int64)
        mlc_acc = np.zeros_like(slc_acc)
        have_slc = have_mlc = False
        for slc, mlc in stage2_parts:
            if slc is not None:
                slc_acc += slc
                have_slc = True
            if mlc is not None:
                mlc_acc += mlc
                have_mlc = True

        out = np.zeros((flat.shape[0], self.out_features), dtype=dtype)
        if have_slc:
            out += slc_acc * scale_out
        if have_mlc:
            out += mlc_acc * scale_out
        if self._calibrating:
            self._x_absmax = max(self._x_absmax, float(np.abs(flat).max(initial=0.0)))
            self._h_absmax = max(self._h_absmax, float(np.abs(hidden).max(initial=0.0)))
        self._record_shard_traffic(flat.shape[0], self._active_params("h") is not None)
        return out

    def _forward_fast_sharded(self, flat: np.ndarray) -> np.ndarray:
        """Sharded Eq. (5) fast path over slices of the noised factors.

        Stage-1 hidden slices are exact column slices of the unsharded
        product; stage-2 partial sums recombine additively (float — equal
        to the unsharded matmul up to summation order)."""
        slices = self._rank_slices

        def shard_out(item):
            start, stop = item
            hidden = flat @ self._noisy_a[start:stop].T
            return hidden @ self._noisy_b[:, start:stop].T

        parts = self._shard_map(shard_out, list(slices))
        out = parts[0]
        for part in parts[1:]:
            out = out + part
        self._record_shard_traffic(flat.shape[0], calibrated=True)
        return out

    # ------------------------------------------------------------------
    # Activation-scale calibration (serving deployment path)
    # ------------------------------------------------------------------
    def begin_calibration(self) -> None:
        """Start observing activation ranges (crossbar mode).

        While calibrating, forwards fall back to per-call scales and record
        the absolute max of layer inputs and stage-1 hidden activations.
        """
        self._calibrating = True
        self._x_absmax = 0.0
        self._h_absmax = 0.0

    def finish_calibration(self) -> None:
        """Freeze the observed ranges into reusable :class:`QuantParams`."""
        self._calibrating = False
        if self._x_absmax > 0.0:
            self._x_params = self._params_from_absmax(self._x_absmax)
            self._h_params = self._params_from_absmax(self._h_absmax)

    @staticmethod
    def _params_from_absmax(absmax: float) -> QuantParams:
        """Symmetric params covering [-absmax, absmax] at the shared
        ``_ACTIVATION_BITS`` width used by the crossbar quantize calls."""
        qmax = 2 ** (_ACTIVATION_BITS - 1) - 1
        return QuantParams(scale=max(absmax, 1e-12) / qmax, num_bits=_ACTIVATION_BITS)

    def clear_calibration(self) -> None:
        """Drop frozen activation scales (back to per-call rescaling)."""
        self._calibrating = False
        self._x_params = None
        self._h_params = None

    @property
    def is_calibrated(self) -> bool:
        return self._x_params is not None

    # ------------------------------------------------------------------
    def arrays_used(self) -> int:
        """Physical array footprint of the SLC/MLC placement.

        The footprint is a pure function of the layer geometry and the
        protection mask, so it is computed once and cached.  Fast mode used
        to re-run the full :func:`split_by_rank` crossbar programming (noise
        draws included) on *every* call just to read the placement counts;
        now it sums the same :func:`array_footprint` terms analytically.
        """
        if self._arrays_used is None:
            if self._shard_splits is not None:
                self._arrays_used = sum(s.arrays_used for s in self._shard_splits)
            elif self._rank_slices is not None:
                # Sharded fast mode: per-shard tiling, computed analytically.
                total = 0
                for start, stop in self._rank_slices:
                    local = self.plan.protected_ranks[start:stop]
                    total += self._analytic_footprint(int(local.sum()), stop - start)
                self._arrays_used = total
            elif self._split is not None:
                self._arrays_used = self._split.arrays_used
            else:
                n_protected = int(self.plan.protected_ranks.sum())
                self._arrays_used = self._analytic_footprint(n_protected, self.rank)
        return self._arrays_used

    def _analytic_footprint(self, n_protected: int, rank: int) -> int:
        """Array footprint of ``rank`` ranks with ``n_protected`` on SLC."""
        n_mlc = rank - n_protected
        total = 0
        if n_protected:
            total += array_footprint(n_protected, self.in_features, SLC, self.config)
            total += array_footprint(self.out_features, n_protected, SLC, self.config)
        if n_mlc:
            total += array_footprint(n_mlc, self.in_features, self.mlc_cell, self.config)
            total += array_footprint(self.out_features, n_mlc, self.mlc_cell, self.config)
        return total

    def merged_stats(self) -> GemvStats:
        total = GemvStats()
        for split in self._active_splits():
            total.merge(split.merged_stats())
        return total

    def shard_stats(self) -> list[GemvStats]:
        """Per-shard GEMV operation counts (crossbar mode).

        One entry per deployed shard (a single entry when unsharded); the
        serving engine threads these through to per-shard energy/latency
        accounting.
        """
        return [split.merged_stats() for split in self._active_splits()]

    def _active_splits(self) -> list[HybridSplit]:
        if self._shard_splits is not None:
            return self._shard_splits
        return [self._split] if self._split is not None else []

    def reset_stats(self) -> None:
        """Zero the accumulated GEMV operation counts (crossbar mode).

        Used after deploy-time calibration so served-traffic accounting does
        not include the calibration forward.
        """
        for split in self._active_splits():
            for mapped in (split.slc_a, split.mlc_a, split.slc_b, split.mlc_b):
                if mapped is not None:
                    mapped.stats = GemvStats()

    def wear_report(self) -> dict:
        """Per-member write-endurance consumption of this layer's tiles.

        One entry per hybrid-split member (``slc_a``/``mlc_a``/``slc_b``/
        ``mlc_b``) with the tile count and the worst wear fraction as read
        from the backend's :class:`~repro.rram.endurance.WearLedger` — the
        per-layer view :meth:`repro.serve.engine.ServingEngine.endurance_report`
        aggregates.  Empty members (fast mode, or all-SLC/all-MLC layers)
        are omitted; the top-level ``max_wear_fraction`` is 0.0 then.
        """
        members: dict[str, dict] = {}
        for split in self._active_splits():
            mapped_members = (
                ("slc_a", split.slc_a),
                ("mlc_a", split.mlc_a),
                ("slc_b", split.slc_b),
                ("mlc_b", split.mlc_b),
            )
            for name, mapped in mapped_members:
                if mapped is None:
                    continue
                fraction = float(mapped.backend.wear_fraction(mapped._programmed._tile))
                entry = members.setdefault(name, {"tiles": 0, "max_wear_fraction": 0.0})
                entry["tiles"] += 1
                entry["max_wear_fraction"] = max(entry["max_wear_fraction"], fraction)
        return {
            "members": members,
            "max_wear_fraction": max(
                (entry["max_wear_fraction"] for entry in members.values()), default=0.0
            ),
        }

    # ------------------------------------------------------------------
    # Online recalibration hooks (drift detection + re-programming)
    # ------------------------------------------------------------------
    def probe_drift(self, probe_seed: int = 0) -> float:
        """Worst relative error of a deterministic probe GEMV (crossbar mode).

        Issues one fixed INT8 probe vector (derived from ``probe_seed`` and
        the layer seed, so repeated probes are comparable) through every
        deployed stage-1 matrix and compares the analog result against the
        exact integer GEMV.  Returns the maximum L1-relative error over the
        matrices — the drift signal :class:`~repro.serve.engine.ServingEngine`
        thresholds to decide when to recalibrate.  Probe traffic lands in
        the matrices' :class:`~repro.rram.crossbar.GemvStats` like any other
        GEMV (hardware really executes it).  Always 0.0 in ``fast`` mode
        (no backend to drift).
        """
        worst = 0.0
        rng = np.random.default_rng((int(probe_seed), self.seed, 0x9B0B))
        probe = rng.integers(-128, 128, size=(1, self.in_features))
        for split in self._active_splits():
            for mapped in (split.slc_a, split.mlc_a):
                if mapped is None:
                    continue
                analog = np.asarray(mapped.gemv(probe), dtype=np.float64)
                ideal = np.asarray(mapped.ideal_gemv(probe), dtype=np.float64)
                denom = max(float(np.abs(ideal).sum()), 1.0)
                worst = max(worst, float(np.abs(analog - ideal).sum()) / denom)
        return worst

    def reprogram(self) -> int:
        """Re-write every deployed mapped matrix (crossbar mode).

        The recovery action against drifted or worn tiles: each matrix
        redraws its programming noise through its backend (resetting the
        drift clock), with the write traffic recorded in the backend's wear
        ledger and in ``stats.cells_reprogrammed``.  Returns the number of
        matrices re-written (0 in ``fast`` mode).
        """
        count = 0
        for split in self._active_splits():
            for mapped in (split.slc_a, split.mlc_a, split.slc_b, split.mlc_b):
                if mapped is not None:
                    mapped.reprogram()
                    count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"HybridLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, protected={self.plan.protected_ranks.sum()}, "
            f"mode={self.mode!r})"
        )


def calibrate_activations(layers, forward_fn) -> int:
    """Calibrate activation quant scales for deployed :class:`HybridLinear`\\ s.

    ``layers`` is any iterable of HybridLinear (or a name->layer mapping, as
    returned by :func:`attach_hybrid_layers`); ``forward_fn`` is a nullary
    callable that pushes representative traffic through the deployed model
    (e.g. a prefill over calibration prompts).  Afterwards every crossbar
    GEMV reuses the frozen scales instead of re-deriving them per call —
    the paper's deploy-time INT8 calibration, and the serving engine's way
    of keeping quantization behaviour independent of batch composition.

    Returns the number of layers that observed traffic and froze scales.
    """
    if isinstance(layers, dict):
        layers = list(layers.values())
    else:
        layers = list(layers)
    for layer in layers:
        layer.begin_calibration()
    try:
        forward_fn()
    finally:
        for layer in layers:
            layer.finish_calibration()
    return sum(1 for layer in layers if layer.is_calibrated)


def attach_hybrid_layers(
    model: Module,
    plans: dict[str, LayerPlan],
    noise: NoiseSpec | None = None,
    mode: str = "fast",
    mlc_cell: CellType = MLC2,
    seed: int = 0,
    policy: KernelPolicy | None = None,
    backend: CrossbarBackend | None = None,
) -> dict[str, HybridLinear]:
    """Swap every planned layer of ``model`` for its PIM deployment form.

    ``model`` must expose ``replace_static_linear`` (all Transformer variants
    do); ``plans`` comes from the gradient-redistribution pipeline.
    ``backend`` (crossbar mode) selects the execution target every layer
    programs onto — ``None`` uses the process-wide default
    (:func:`repro.rram.backend.get_default_backend`).
    """
    attached: dict[str, HybridLinear] = {}
    for name, plan in plans.items():
        layer = HybridLinear(
            plan,
            noise=noise,
            mode=mode,
            mlc_cell=mlc_cell,
            seed=seed + len(attached),
            policy=policy,
            backend=backend,
        )
        model.replace_static_linear(name, layer)
        attached[name] = layer
    return attached
