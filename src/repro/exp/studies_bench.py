"""Kernel-benchmark study: the repo's tracked perf trajectory.

``bench_kernels`` times the analog-crossbar GEMV hot path — the
``reference`` einsum kernel against the optimized ``fast`` kernel of
:mod:`repro.rram.kernels` — across a batch x out-features x cell-type x
noise grid, and additionally wall-clocks the Fig. 12 smoke sweep end to
end.  Its payload is what lands in ``BENCH_kernels.json`` (written by
``benchmarks/bench_kernels.py`` and by the CI smoke job), seeding the
perf-trajectory series future PRs are gated against: CI fails if the fast
kernel ever becomes slower than the reference kernel on the large-GEMV
point.

Timings are wall-clock, so cached replays of this experiment report the
machine state of the original run; benchmark jobs run it with caching
disabled (``--no-cache`` / ``fresh_runner``).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exp.registry import experiment
from repro.rram import (
    CELL_TYPES,
    DEFAULT_NOISE,
    GemvStats,
    KernelPolicy,
    PlaneCache,
    ProgrammedMatrix,
    kernel_policy,
    plane_cache_scope,
)

__all__ = ["bench_attention", "bench_faults", "bench_kernels", "bench_serve"]

#: The benchmark grid (overridable via params).  The "large" point is the
#: one the CI perf gate checks; it matches the ISSUE-2 acceptance criteria
#: (>=5x noiseless, >=2x noisy, fast vs reference).
DEFAULT_BATCHES = (1, 8, 64)
DEFAULT_OUT_FEATURES = (64, 256)
DEFAULT_CELLS = ("SLC", "MLC2")
LARGE_POINT = {"batch": 64, "out_features": 256, "in_features": 512, "cell": "SLC"}


def _time_gemv(
    matrix: ProgrammedMatrix,
    x: np.ndarray,
    policy: KernelPolicy,
    reps: int,
) -> float:
    """Best-of-``reps`` seconds for one GEMV call under ``policy``."""
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        matrix.gemv(x, policy=policy)
        best = min(best, time.perf_counter() - start)
    return best


def _bench_point(
    batch: int,
    out_features: int,
    in_features: int,
    cell_name: str,
    noisy: bool,
    reps: int,
    rng: np.random.Generator,
) -> dict[str, Any]:
    cell = CELL_TYPES[cell_name]
    sigma = DEFAULT_NOISE.sigma(cell) if noisy else 0.0
    x = rng.integers(-128, 128, size=(batch, in_features))
    w = rng.integers(-128, 128, size=(out_features, in_features))
    matrix = ProgrammedMatrix(w, cell, noise_sigma=sigma, rng=rng)

    # Correctness cross-check rides along with every timing: the two kernels
    # must agree bitwise (outputs and stats) on every benchmarked point.
    ref_stats, fast_stats = GemvStats(), GemvStats()
    ref_out = matrix.gemv(x, stats=ref_stats, policy=KernelPolicy(mode="reference"))
    fast_out = matrix.gemv(x, stats=fast_stats, policy=KernelPolicy(mode="fast"))
    if not (np.array_equal(ref_out, fast_out) and ref_stats == fast_stats):
        raise AssertionError(
            f"fast/reference kernel mismatch at batch={batch}, out={out_features}, "
            f"in={in_features}, cell={cell_name}, noisy={noisy}"
        )

    ref_s = _time_gemv(matrix, x, KernelPolicy(mode="reference"), reps)
    fast_s = _time_gemv(matrix, x, KernelPolicy(mode="fast"), reps)
    return {
        "batch": batch,
        "out_features": out_features,
        "in_features": in_features,
        "cell": cell_name,
        "noise": "calibrated" if noisy else "none",
        "reference_us": round(ref_s * 1e6, 2),
        "fast_us": round(fast_s * 1e6, 2),
        "speedup": round(ref_s / fast_s, 2),
    }


#: Batched-decode study grid (overridable via params).  The gate point is
#: fused batch-32: one plane-GEMM dispatch per step must deliver >= 2x the
#: per-row tokens/s, and fused throughput must scale superlinearly with
#: batch (tok/s at 32 > tok/s at 1 — fixed packing/dispatch overheads
#: amortize across the batch).
DECODE_BATCHES = (1, 8, 32)
DECODE_WAYS = (1, 2, 4, 8)
DECODE_GATE_BATCH = 32


def _time_call(fn, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _decode_stack(
    num_layers: int, features: int, rank: int, seed: int, ways: int = 1
) -> list:
    """A stack of calibrated noisy crossbar ``HybridLinear`` layers.

    Square (``features -> features``) layers so hidden states chain like a
    decode step walking a Transformer's crossbar stages; calibration runs
    layer by layer on the stack's own hidden states, so the fused and
    per-row replays quantize identical activation codes.
    """
    from repro.dist import DeviceMesh
    from repro.pim.hybrid import HybridLinear
    from repro.svd.pipeline import LayerPlan

    rng = np.random.default_rng(seed)
    layers = []
    for i in range(num_layers):
        mask = np.zeros(rank, dtype=bool)
        mask[: rank // 4] = True
        plan = LayerPlan(
            name=f"blocks.0.decode{i}",
            a_matrix=rng.normal(size=(rank, features)) / np.sqrt(features),
            b_matrix=rng.normal(size=(features, rank)) / np.sqrt(rank),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(rank),
        )
        layer = HybridLinear(
            plan, noise=DEFAULT_NOISE, mode="crossbar", seed=seed + i
        )
        if ways > 1:
            layer.deploy(DeviceMesh(), tensor_parallel=ways)
        layers.append(layer)
    h = rng.normal(size=(8, features))
    for layer in layers:
        layer.begin_calibration()
        layer.forward(h)
        layer.finish_calibration()
        h = layer.forward(h).data
    return layers


def _stack_fused(layers: list, x: np.ndarray) -> np.ndarray:
    """One fused batched dispatch per layer: gemm kernel + shared PlaneCache."""
    with kernel_policy(KernelPolicy(mode="gemm")), plane_cache_scope(PlaneCache()):
        h = x
        for layer in layers:
            h = layer.forward(h).data
    return h


def _stack_per_row(layers: list, x: np.ndarray) -> np.ndarray:
    """The pre-fusion dispatch: every row walks the stack on its own."""
    with kernel_policy(KernelPolicy(mode="fast")):
        rows = []
        for i in range(len(x)):
            h = x[i : i + 1]
            for layer in layers:
                h = layer.forward(h).data
            rows.append(h)
    return np.vstack(rows)


def _decode_point(
    layers: list, batch: int, features: int, reps: int, rng: np.random.Generator
) -> dict[str, Any]:
    x = rng.normal(size=(batch, features))
    # Correctness rides along with the timing: the fused dispatch must
    # reproduce the per-row stack outputs (allclose — only BLAS summation
    # order differs inside the noisy fused matmul).
    fused_out = _stack_fused(layers, x)
    per_row_out = _stack_per_row(layers, x)
    if not np.allclose(fused_out, per_row_out, rtol=1e-9, atol=1e-9):
        raise AssertionError(
            f"fused/per-row decode mismatch at batch={batch}: max abs diff "
            f"{np.max(np.abs(fused_out - per_row_out))}"
        )
    fused_s = _time_call(lambda: _stack_fused(layers, x), reps)
    per_row_s = _time_call(lambda: _stack_per_row(layers, x), reps)
    return {
        "batch": batch,
        "fused_tok_s": round(batch / fused_s, 1),
        "per_row_tok_s": round(batch / per_row_s, 1),
        "speedup": round(per_row_s / fused_s, 2),
    }


def _batched_decode_study(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Fused plane-GEMM decode vs per-row dispatch, plus the shard sweep."""
    batches = sorted(
        set(tuple(params.get("decode_batches", DECODE_BATCHES)))
        | {1, DECODE_GATE_BATCH}  # the gated points are always measured
    )
    ways_sweep = tuple(params.get("decode_ways", DECODE_WAYS))
    num_layers = int(params.get("decode_layers", 3))
    features = int(params.get("decode_features", 64))
    rank = int(params.get("decode_rank", 32))
    reps = int(params.get("reps", 3))

    rng = np.random.default_rng(seed + 17)
    layers = _decode_stack(num_layers, features, rank, seed)
    grid = [_decode_point(layers, batch, features, reps, rng) for batch in batches]
    by_batch = {row["batch"]: row for row in grid}

    # ISSUE-5's 8-way scaling plateau, revisited per-step: one stage-1 GEMM
    # per shard per decode step instead of per row.
    shard_sweep = []
    for ways in ways_sweep:
        sharded = _decode_stack(num_layers, features, rank, seed, ways=ways)
        x = rng.normal(size=(DECODE_GATE_BATCH, features))
        fused_s = _time_call(lambda: _stack_fused(sharded, x), reps)
        shard_sweep.append(
            {"ways": ways, "fused_tok_s": round(DECODE_GATE_BATCH / fused_s, 1)}
        )

    return {
        "grid": grid,
        "gate": by_batch[DECODE_GATE_BATCH],
        "batch1": by_batch[1],
        "shard_sweep": shard_sweep,
        "stack": {"layers": num_layers, "features": features, "rank": rank},
    }


def _fig12_smoke_wall_s(seed: int) -> float:
    """End-to-end wall-clock of the Fig. 12 smoke point (uncached)."""
    from repro.exp.registry import get_experiment

    defn = get_experiment("fig12")
    start = time.perf_counter()
    defn.fn(dict(defn.smoke), seed)
    return time.perf_counter() - start


@experiment(
    "bench_kernels",
    smoke={
        "batches": (64,),
        "out_features": (256,),
        "reps": 1,
        "decode_batches": (1, 32),
        "decode_ways": (1, 8),
    },
)
def bench_kernels(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """GEMV kernel timings (reference vs fast) + Fig. 12 smoke wall-clock."""
    batches = tuple(params.get("batches", DEFAULT_BATCHES))
    out_features = tuple(params.get("out_features", DEFAULT_OUT_FEATURES))
    in_features = int(params.get("in_features", LARGE_POINT["in_features"]))
    cells = tuple(params.get("cells", DEFAULT_CELLS))
    reps = int(params.get("reps", 3))
    include_fig12 = bool(params.get("include_fig12", True))

    rng = np.random.default_rng(seed)
    grid = [
        _bench_point(batch, out_f, in_features, cell_name, noisy, reps, rng)
        for cell_name in cells
        for noisy in (False, True)
        for out_f in out_features
        for batch in batches
    ]

    # The gated large points: always measured, even if the requested grid
    # does not contain them (e.g. a shrunken custom grid).
    def _large(noisy: bool) -> dict[str, Any]:
        for row in grid:
            if (
                row["batch"] == LARGE_POINT["batch"]
                and row["out_features"] == LARGE_POINT["out_features"]
                and row["in_features"] == LARGE_POINT["in_features"]
                and row["cell"] == LARGE_POINT["cell"]
                and row["noise"] == ("calibrated" if noisy else "none")
            ):
                return row
        return _bench_point(
            LARGE_POINT["batch"],
            LARGE_POINT["out_features"],
            LARGE_POINT["in_features"],
            LARGE_POINT["cell"],
            noisy,
            reps,
            rng,
        )

    payload: dict[str, Any] = {
        "grid": grid,
        "large_noiseless": _large(False),
        "large_noisy": _large(True),
        "batched_decode": _batched_decode_study(params, seed),
    }
    if include_fig12:
        payload["fig12_smoke_wall_s"] = round(_fig12_smoke_wall_s(seed), 3)
    return payload


# ----------------------------------------------------------------------
# Serving benchmark: KV-cached incremental decode vs naive O(L²) recompute
# ----------------------------------------------------------------------

#: Decode-path benchmark grid.  The "large" point is the one the CI perf
#: gate checks (cached must never be slower than naive; the ISSUE-3
#: acceptance bar is >= 5x tokens/s at this point).
SERVE_BATCHES = (1, 8, 32)
SERVE_LARGE_POINT = {"batch": 8, "prompt_len": 16, "new_tokens": 48}


def _serve_model(params: dict[str, Any], seed: int):
    from repro.nn import DecoderLM, TransformerConfig

    config = TransformerConfig(
        vocab_size=int(params.get("vocab_size", 128)),
        d_model=int(params.get("d_model", 64)),
        num_heads=int(params.get("num_heads", 4)),
        num_layers=int(params.get("num_layers", 2)),
        d_ff=int(params.get("d_ff", 256)),
        max_seq_len=int(params.get("max_seq_len", 64)),
        seed=seed,
    )
    return DecoderLM(config)


def _time_generate(model, prompts: np.ndarray, new_tokens: int, use_cache: bool, reps: int) -> float:
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        model.generate(prompts, new_tokens, use_cache=use_cache)
        best = min(best, time.perf_counter() - start)
    return best


def _serve_point(
    model, batch: int, prompt_len: int, new_tokens: int, reps: int, rng: np.random.Generator
) -> dict[str, Any]:
    prompts = rng.integers(0, model.config.vocab_size, size=(batch, prompt_len))
    # Correctness cross-check rides along with every timing: greedy cached
    # decode must emit exactly the tokens the naive recompute path emits.
    cached_out = model.generate(prompts, new_tokens, use_cache=True)
    naive_out = model.generate(prompts, new_tokens, use_cache=False)
    if not np.array_equal(cached_out, naive_out):
        raise AssertionError(
            f"cached/naive decode mismatch at batch={batch}, "
            f"prompt_len={prompt_len}, new_tokens={new_tokens}"
        )
    naive_s = _time_generate(model, prompts, new_tokens, False, reps)
    cached_s = _time_generate(model, prompts, new_tokens, True, reps)
    tokens = batch * new_tokens
    return {
        "batch": batch,
        "prompt_len": prompt_len,
        "new_tokens": new_tokens,
        "naive_tok_s": round(tokens / naive_s, 1),
        "cached_tok_s": round(tokens / cached_s, 1),
        "speedup": round(naive_s / cached_s, 2),
    }


def _engine_throughput(model, params: dict[str, Any], rng: np.random.Generator) -> dict[str, Any]:
    """Dynamic-batching throughput over a ragged request stream."""
    from repro.serve import ServingEngine

    num_requests = int(params.get("engine_requests", 24))
    max_batch = int(params.get("engine_max_batch", 8))
    new_tokens = int(params.get("engine_new_tokens", 24))
    engine = ServingEngine(model, max_batch_size=max_batch, max_wait_s=0.0)
    max_prompt = max(1, model.config.max_seq_len - new_tokens)
    low = min(4, max_prompt)
    prompts = [
        rng.integers(0, model.config.vocab_size, size=int(length))
        for length in rng.integers(low, max_prompt + 1, size=num_requests)
    ]
    engine.serve(prompts, max_new_tokens=new_tokens)
    payload = engine.stats.as_dict()
    payload["slot_pool"] = engine.slot_pool.stats.as_dict()
    payload["max_batch_size"] = max_batch
    payload["scheduler"] = engine.scheduler
    return payload


def _mixed_trace(
    model, num_requests: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, int]]:
    """A production-shaped request mix: mostly short, every 4th one long.

    Deterministic skew (position, not chance, decides which requests are
    long) so static scheduling reliably pays the head-of-line cost the
    continuous scheduler is built to avoid.  Geometry scales with the
    model so shrunken custom configs (tiny test models) stay admissible.
    """
    capacity = model.config.max_seq_len
    max_prompt = max(2, min(16, capacity // 4))
    headroom = capacity - max_prompt  # largest admissible budget
    long_hi = max(2, headroom - 2)
    long_lo = max(1, long_hi - 6)
    short_hi = max(2, min(8, headroom // 5))
    short_lo = min(3, short_hi)
    prompt_lo = max(2, max_prompt // 4)
    trace = []
    for i in range(num_requests):
        prompt_len = int(rng.integers(prompt_lo, max_prompt + 1))
        if i % 4 == 3:
            budget = int(rng.integers(long_lo, long_hi + 1))
        else:
            budget = int(rng.integers(short_lo, short_hi + 1))
        trace.append(
            (rng.integers(0, model.config.vocab_size, size=prompt_len), budget)
        )
    return trace


def _run_trace(
    model, trace, scheduler: str, max_batch: int, reps: int
) -> tuple[dict[str, Any], list]:
    """Submit the whole trace up front and drain; wall-clocked end to end.

    Best-of-``reps`` (fresh engine per rep) so the CI gate compares the
    schedulers' structural behaviour, not one noisy run on a shared runner.
    """
    from repro.serve import ServingEngine

    best_payload: dict[str, Any] | None = None
    ordered: list = []
    for rep in range(max(1, reps)):
        engine = ServingEngine(
            model, max_batch_size=max_batch, max_wait_s=0.0, scheduler=scheduler
        )
        ids = [engine.submit(prompt, budget) for prompt, budget in trace]
        start = time.perf_counter()
        results = {r.request_id: r for r in engine.run_until_idle()}
        wall_s = time.perf_counter() - start
        tokens = sum(int(results[rid].tokens.size) for rid in ids)
        stats = engine.stats
        payload = {
            "scheduler": scheduler,
            "tokens": tokens,
            "wall_s": round(wall_s, 4),
            "tok_s": round(tokens / wall_s, 1),
            "mean_ttft_s": round(stats.mean_ttft_s, 6),
            "p95_ttft_s": round(stats.p95_ttft_s, 6),
            "mean_tpot_s": round(stats.mean_tpot_s, 6),
            "mean_latency_s": round(stats.mean_latency_s, 6),
            "mean_batch_size": round(stats.mean_batch_size, 2),
        }
        if best_payload is None or payload["tok_s"] > best_payload["tok_s"]:
            best_payload = payload
        if rep == 0:
            ordered = [results[rid] for rid in ids]  # parity-checked by caller
    return best_payload, ordered


def _trace_comparison(model, params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Static vs continuous scheduling on the same mixed-length trace.

    Correctness rides along: both schedulers must emit, per request,
    exactly what a one-shot ``DecoderLM.generate`` emits for that prompt
    and budget.
    """
    num_requests = int(params.get("trace_requests", 24))
    max_batch = int(params.get("trace_max_batch", 8))
    reps = int(params.get("trace_reps", 2))
    rng = np.random.default_rng(seed + 1)
    trace = _mixed_trace(model, num_requests, rng)

    static, static_results = _run_trace(model, trace, "static", max_batch, reps)
    continuous, continuous_results = _run_trace(model, trace, "continuous", max_batch, reps)

    for i, (prompt, budget) in enumerate(trace):
        solo = model.generate(prompt, budget)[len(prompt) :]
        for label, result in (("static", static_results[i]), ("continuous", continuous_results[i])):
            if not np.array_equal(result.tokens, solo):
                raise AssertionError(
                    f"{label} scheduling diverged from one-shot generate on "
                    f"trace request {i} (prompt_len={len(prompt)}, budget={budget})"
                )

    return {
        "num_requests": num_requests,
        "max_batch_size": max_batch,
        "long_every": 4,
        "static": static,
        "continuous": continuous,
        "speedup": round(continuous["tok_s"] / static["tok_s"], 2),
        "ttft_ratio": round(
            continuous["mean_ttft_s"] / static["mean_ttft_s"], 4
        )
        if static["mean_ttft_s"]
        else 0.0,
    }


@experiment(
    "bench_serve",
    smoke={
        "batches": (8,),
        "reps": 1,
        "engine_requests": 8,
        "trace_requests": 16,
        "trace_max_batch": 4,
    },
)
def bench_serve(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Decode-path timings: KV-cached incremental vs naive O(L²) recompute.

    Times ``DecoderLM.generate`` under both paths over a batch grid (greedy,
    correctness cross-checked at every point), measures end-to-end
    :class:`~repro.serve.ServingEngine` throughput over a ragged request
    stream, and replays a mixed-length trace under static vs continuous
    scheduling (per-request outputs cross-checked against one-shot
    generation).  The payload lands in ``BENCH_serve.json`` (written by
    ``benchmarks/bench_serve.py`` and the CI smoke job), which gates:
    cached decode must never be slower than naive recompute at the large
    point, and continuous scheduling must beat static by >= 1.3x tokens/s
    with strictly lower mean TTFT on the trace.
    """
    batches = tuple(params.get("batches", SERVE_BATCHES))
    prompt_len = int(params.get("prompt_len", SERVE_LARGE_POINT["prompt_len"]))
    new_tokens = int(params.get("new_tokens", SERVE_LARGE_POINT["new_tokens"]))
    reps = int(params.get("reps", 2))

    rng = np.random.default_rng(seed)
    model = _serve_model(params, seed)
    grid = [
        _serve_point(model, batch, prompt_len, new_tokens, reps, rng)
        for batch in batches
    ]

    # The gated large point: always measured, even on a shrunken grid.
    large = next(
        (
            row
            for row in grid
            if row["batch"] == SERVE_LARGE_POINT["batch"]
            and row["prompt_len"] == SERVE_LARGE_POINT["prompt_len"]
            and row["new_tokens"] == SERVE_LARGE_POINT["new_tokens"]
        ),
        None,
    )
    if large is None:
        # Off-grid: measure on the default geometry (a shrunken custom model
        # may not even hold the large point's 64 positions).
        large = _serve_point(
            _serve_model({}, seed),
            SERVE_LARGE_POINT["batch"],
            SERVE_LARGE_POINT["prompt_len"],
            SERVE_LARGE_POINT["new_tokens"],
            reps,
            rng,
        )

    return {
        "model": {
            "d_model": model.config.d_model,
            "num_layers": model.config.num_layers,
            "num_heads": model.config.num_heads,
            "max_seq_len": model.config.max_seq_len,
            "vocab_size": model.config.vocab_size,
        },
        "grid": grid,
        "large": large,
        "engine": _engine_throughput(model, params, rng),
        "trace": _trace_comparison(model, params, seed),
    }


# ----------------------------------------------------------------------
# Fault-injection benchmark: hybrid GEMV accuracy under device faults
# ----------------------------------------------------------------------

#: Protection-fraction sweep (share of ranks placed on SLC) crossed with
#: the fault scenarios of :func:`_fault_scenarios`.  The clean scenario is
#: the gated curve: with calibrated programming noise (sigma roughly 7x
#: higher on MLC2 than SLC), moving ranks from MLC to SLC must
#: monotonically reduce the error — the paper's protection premise.
FAULT_PROTECT_FRACTIONS = (0.0, 0.25, 0.5, 1.0)
FAULT_YEAR_S = 365.0 * 86_400.0


def _fault_scenarios() -> dict[str, dict[str, Any]]:
    """Named fault scenarios: a FaultModel plus an elapsed-clock advance."""
    from repro.rram import FaultModel

    return {
        "clean": {"fault": FaultModel(), "advance_s": 0.0},
        "stuck": {
            "fault": FaultModel(stuck_off_rate=0.003, stuck_on_rate=0.003),
            "advance_s": 0.0,
        },
        "drift_1yr": {
            "fault": FaultModel(drift_nu=0.05, drift_t0_s=86_400.0),
            "advance_s": FAULT_YEAR_S,
        },
        "hot_85c": {
            "fault": FaultModel(temperature_c=85.0, temp_sigma_per_c=0.002),
            "advance_s": 0.0,
        },
        "aged": {
            "fault": FaultModel(
                stuck_off_rate=0.002,
                stuck_on_rate=0.002,
                drift_nu=0.05,
                drift_t0_s=86_400.0,
                temperature_c=60.0,
                temp_sigma_per_c=0.002,
            ),
            "advance_s": FAULT_YEAR_S,
        },
    }


def _hybrid_fault_error(
    protect_fraction: float,
    fault,
    advance_s: float,
    seed: int,
    rank: int,
    in_features: int,
    out_features: int,
    batch: int,
) -> float:
    """Weighted L1-relative error of one faulty hybrid GEMV deployment.

    Builds the paper's rank-split placement (protected prefix on SLC, the
    rest on MLC2) on a dedicated :class:`FaultySimBackend` with calibrated
    programming noise (so every scenario includes the SLC/MLC margin
    asymmetry), advances the backend clock, then runs both GEMV stages —
    stage 1 piecewise over the rank split, stage 2 as the additive SLC+MLC
    partial-sum recombination — and returns total |analog − ideal| over
    total |ideal| across both stages, so each rank's contribution is
    weighted by its actual share of the layer's signal energy.
    """
    from repro.rram import FaultySimBackend, split_by_rank

    rng = np.random.default_rng(seed)
    a_codes = rng.integers(-128, 128, size=(rank, in_features))
    b_codes = rng.integers(-128, 128, size=(out_features, rank))
    protected = np.zeros(rank, dtype=bool)
    protected[: round(protect_fraction * rank)] = True

    backend = FaultySimBackend(fault=fault, seed=seed)
    split = split_by_rank(
        a_codes,
        b_codes,
        protected,
        noise=DEFAULT_NOISE,
        seed=seed,
        backend=backend,
    )
    if advance_s:
        backend.advance(seconds=advance_s)

    x1 = rng.integers(-128, 128, size=(batch, in_features))
    x2 = rng.integers(-128, 128, size=(batch, rank))

    h = np.zeros((batch, rank), dtype=np.int64)
    if split.slc_a is not None:
        h[:, protected] = split.slc_a.gemv(x1)
    if split.mlc_a is not None:
        h[:, ~protected] = split.mlc_a.gemv(x1)
    h_ideal = x1 @ a_codes.T

    y = np.zeros((batch, out_features), dtype=np.int64)
    if split.slc_b is not None:
        y += split.slc_b.gemv(x2[:, protected])
    if split.mlc_b is not None:
        y += split.mlc_b.gemv(x2[:, ~protected])
    y_ideal = x2 @ b_codes.T

    err = np.abs(h - h_ideal).sum() + np.abs(y - y_ideal).sum()
    ref = np.abs(h_ideal).sum() + np.abs(y_ideal).sum()
    return float(err) / float(ref)


@experiment(
    "bench_faults",
    smoke={"protect_fractions": (0.0, 1.0)},
)
def bench_faults(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Hybrid GEMV accuracy across protection fraction x fault scenario.

    Sweeps the SLC protection fraction against the named fault scenarios
    of :func:`_fault_scenarios` (stuck cells, one year of power-law drift,
    hot-chip read noise, and their combination), measuring the weighted
    L1-relative error of the full two-stage hybrid GEMV on a
    :class:`~repro.rram.FaultySimBackend`.  Every point is computed twice
    from the same seed and cross-checked for exact determinism.  The
    payload lands in ``BENCH_faults.json`` (written by
    ``benchmarks/bench_faults.py`` and the CI smoke job), which gates:
    SLC protection monotonically reduces the clean (programming-noise)
    error, and every faulty scenario hurts strictly more than clean at
    every protection fraction.
    """
    fractions = tuple(params.get("protect_fractions", FAULT_PROTECT_FRACTIONS))
    rank = int(params.get("rank", 48))
    in_features = int(params.get("in_features", 64))
    out_features = int(params.get("out_features", 64))
    batch = int(params.get("batch", 8))
    scenarios = _fault_scenarios()

    grid = []
    for name, scenario in scenarios.items():
        for fraction in fractions:
            point_args = (
                fraction,
                scenario["fault"],
                scenario["advance_s"],
                seed,
                rank,
                in_features,
                out_features,
                batch,
            )
            error = _hybrid_fault_error(*point_args)
            # Determinism cross-check rides along with every point: an
            # identical seed must rebuild bit-identical faults and errors.
            if _hybrid_fault_error(*point_args) != error:
                raise AssertionError(
                    f"non-deterministic fault error at scenario={name}, "
                    f"protect_fraction={fraction}"
                )
            grid.append(
                {
                    "scenario": name,
                    "protect_fraction": fraction,
                    "error": round(error, 6),
                }
            )

    def _error(scenario: str, fraction: float) -> float:
        return next(
            row["error"]
            for row in grid
            if row["scenario"] == scenario
            and row["protect_fraction"] == fraction
        )

    faulty = [name for name in scenarios if name != "clean"]
    ordered = sorted(fractions)
    gate = {
        "clean_curve": [
            {"protect_fraction": f, "error": _error("clean", f)} for f in ordered
        ],
        "protection_gain": round(
            _error("clean", ordered[0]) - _error("clean", ordered[-1]), 6
        ),
        "min_fault_margin": round(
            min(
                _error(name, f) - _error("clean", f)
                for name in faulty
                for f in fractions
            ),
            6,
        ),
    }
    return {
        "geometry": {
            "rank": rank,
            "in_features": in_features,
            "out_features": out_features,
            "batch": batch,
        },
        "protect_fractions": list(fractions),
        "grid": grid,
        "gate": gate,
    }


# ----------------------------------------------------------------------
# Analog-attention benchmark: dynamic-operand crossbar attention serving
# ----------------------------------------------------------------------

#: Batch grid for host-vs-analog attention serving.  Every point is
#: correctness-gated in-study: a noiseless analog deployment must emit
#: exactly the tokens of the host engine running
#: :class:`~repro.pim.ReferenceQuantizedAttention` (the numpy
#: specification of the same INT8 math), and the executor's wear counters
#: must grow strictly monotonically across the grid.
ATTENTION_BATCHES = (1, 4, 8)

#: Default geometry keeps every dynamic operand saturation-free on MLC2
#: (64-row tiles, 7-bit ADC full scale): ``max_seq_len`` <= 42 bounds the
#: worst-case signed column sum below the ADC clip, so the noiseless fast
#: GEMV is the exact integer product the equality gate relies on.
ATTENTION_MAX_SEQ = 40


def _attention_model(params: dict[str, Any], seed: int):
    from repro.nn import DecoderLM, TransformerConfig

    config = TransformerConfig(
        vocab_size=int(params.get("vocab_size", 64)),
        d_model=int(params.get("d_model", 32)),
        num_heads=int(params.get("num_heads", 4)),
        num_layers=int(params.get("num_layers", 2)),
        d_ff=int(params.get("d_ff", 64)),
        max_seq_len=int(params.get("max_seq_len", ATTENTION_MAX_SEQ)),
        seed=seed,
    )
    return DecoderLM(config)


def _attention_plans(model, seed: int) -> dict:
    from repro.svd.pipeline import LayerPlan

    rng = np.random.default_rng(seed)
    plans = {}
    for name, linear in model.iter_static_linears():
        out_f, in_f = linear.weight.data.shape
        r = min(out_f, in_f)
        mask = np.zeros(r, dtype=bool)
        mask[: r // 2] = True
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
            b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(r),
        )
    return plans


def _attention_engine(attention: str, params: dict[str, Any], seed: int, max_batch: int):
    from repro.rram.backend import SimBackend
    from repro.rram.noise import NoiseSpec
    from repro.serve import ServingEngine

    model = _attention_model(params, seed)
    calib = np.random.default_rng(seed + 7).integers(
        0, model.config.vocab_size, size=(2, 6)
    )
    return ServingEngine.deploy(
        model,
        _attention_plans(model, seed),
        calibration_prompts=calib,
        noise=NoiseSpec.noiseless(),
        mode="crossbar",
        seed=seed,
        backend=SimBackend(),
        attention=attention,
        max_batch_size=max_batch,
    )


def _attention_reference_engine(params: dict[str, Any], seed: int, max_batch: int):
    """Host engine whose attention runs the quantized numpy reference."""
    from repro.pim import CrossbarAttentionExecutor, ReferenceQuantizedAttention
    from repro.rram.backend import SimBackend

    engine = _attention_engine("host", params, seed, max_batch)
    executor = CrossbarAttentionExecutor(backend=SimBackend())
    for block in engine.model.blocks:
        block.attn = ReferenceQuantizedAttention.from_host(block.attn, executor)
    return engine


def _wear_snapshot(executor) -> dict[str, Any]:
    wear = executor.wear_report()
    return {
        "kv_tokens_written": wear["kv_tokens_written"],
        "dynamic_writes": wear["dynamic_writes"],
        "dynamic_write_pulses": wear["dynamic_write_pulses"],
        "max_wear_fraction": wear["max_wear_fraction"],
    }


def _attention_point(
    engines: dict[str, Any],
    batch: int,
    new_tokens: int,
    reps: int,
    rng: np.random.Generator,
    vocab: int,
) -> dict[str, Any]:
    lengths = rng.integers(3, 11, size=batch)
    prompts = [rng.integers(0, vocab, size=int(n)) for n in lengths]

    def _toks(engine):
        return [list(r.tokens) for r in engine.serve(prompts, max_new_tokens=new_tokens)]

    # The equality gate rides along with every timing: noiseless analog
    # tokens must be bitwise identical to the quantized numpy reference
    # through the continuous scheduler at batch > 1.
    toks_analog = _toks(engines["analog"])
    toks_reference = _toks(engines["reference"])
    if toks_analog != toks_reference:
        raise AssertionError(
            f"noiseless analog/reference token mismatch at batch={batch}"
        )
    # Float host is a tolerance reference only: INT8 attention may flip
    # greedy ties, so agreement is reported, not gated at 1.0.
    toks_host = _toks(engines["host"])
    host_agree = sum(a == h for a, h in zip(toks_analog, toks_host)) / batch

    host_s = _time_call(
        lambda: engines["host"].serve(prompts, max_new_tokens=new_tokens), reps
    )
    analog_s = _time_call(
        lambda: engines["analog"].serve(prompts, max_new_tokens=new_tokens), reps
    )
    tokens = batch * new_tokens
    return {
        "batch": batch,
        "new_tokens": new_tokens,
        "host_tok_s": round(tokens / host_s, 1),
        "analog_tok_s": round(tokens / analog_s, 1),
        "analog_over_host": round(analog_s / host_s, 3),
        "reference_agreement": 1.0,
        "host_agreement": round(host_agree, 3),
    }


@experiment(
    "bench_attention",
    smoke={"attention_batches": (1, 2), "attention_new_tokens": 6, "reps": 1},
)
def bench_attention(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Host vs analog (dynamic-operand crossbar) attention serving.

    Serves identical ragged prompt sets through three engines deployed
    from the same model and plans — float host attention, analog
    attention on MLC dynamic operands (``deploy(attention="analog")``)
    and the host engine running
    :class:`~repro.pim.ReferenceQuantizedAttention` — across a batch
    grid, measuring tokens/s and token agreement.  Two checks ride along
    in-study and fail the run: noiseless analog tokens must be bitwise
    identical to the quantized reference at every point, and the
    executor's KV-write wear counters must grow strictly monotonically
    across the grid (every KV write accounted).  The payload lands in
    ``BENCH_attention.json`` (written by ``benchmarks/bench_attention.py``
    and the CI smoke job), which gates on both plus the KV-write wear per
    1k tokens staying finite and positive.
    """
    batches = tuple(params.get("attention_batches", ATTENTION_BATCHES))
    new_tokens = int(params.get("attention_new_tokens", 12))
    reps = int(params.get("reps", 2))
    max_batch = max(batches)

    engines = {
        "host": _attention_engine("host", params, seed, max_batch),
        "analog": _attention_engine("analog", params, seed, max_batch),
        "reference": _attention_reference_engine(params, seed, max_batch),
    }
    model = engines["analog"].model
    vocab = model.config.vocab_size

    rng = np.random.default_rng(seed + 29)
    executor = engines["analog"].attention_executor
    grid, snapshots = [], []
    for batch in batches:
        grid.append(
            _attention_point(engines, batch, new_tokens, reps, rng, vocab)
        )
        snapshots.append(_wear_snapshot(executor))

    # Wear monotonicity: every grid point serves more tokens through the
    # same executor, so each counter must strictly increase point over
    # point (a stalled counter means a KV write went unaccounted).
    for prev, cur in zip(snapshots, snapshots[1:]):
        for key in ("kv_tokens_written", "dynamic_writes", "dynamic_write_pulses"):
            if cur[key] <= prev[key]:
                raise AssertionError(
                    f"wear counter {key} did not grow across the batch grid: "
                    f"{prev[key]} -> {cur[key]}"
                )
        if cur["max_wear_fraction"] < prev["max_wear_fraction"]:
            raise AssertionError("max_wear_fraction regressed across the batch grid")

    final = snapshots[-1]
    kv_tokens = final["kv_tokens_written"]
    wear_per_1k = {
        "kv_tokens_written": kv_tokens,
        "write_pulses_per_token": round(
            final["dynamic_write_pulses"] / kv_tokens, 2
        ),
        "max_wear_fraction_per_1k_tokens": float(
            final["max_wear_fraction"] / kv_tokens * 1e3
        ),
    }

    return {
        "model": {
            "d_model": model.config.d_model,
            "num_layers": model.config.num_layers,
            "num_heads": model.config.num_heads,
            "max_seq_len": model.config.max_seq_len,
            "vocab_size": model.config.vocab_size,
        },
        "grid": grid,
        "wear": wear_per_1k,
        "endurance": engines["analog"].endurance_report()["attention"],
        "gate": {
            "noiseless_reference_agreement": 1.0,
            "min_host_agreement": min(row["host_agreement"] for row in grid),
            "wear_monotone": True,
            "wear_snapshots": snapshots,
        },
    }
