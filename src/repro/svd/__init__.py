"""SVD-based gradient redistribution (the paper's algorithmic contribution)."""

from repro.svd.decompose import (
    SVDFactors,
    dense_mac_count,
    factored_mac_count,
    hard_threshold_rank,
    merge_sigma,
    reconstruction_error,
    svd_decompose,
    truncate_factors,
)
from repro.svd.finetune import (
    FinetuneResult,
    GradientSnapshot,
    finetune,
    sigma_gradient_snapshot,
    task_loss,
)
from repro.svd.pipeline import (
    GradientRedistributionPipeline,
    LayerPlan,
    RedistributionPlan,
    apply_svd,
)
from repro.svd.selection import (
    protected_count,
    select_elements_by_magnitude,
    select_ranks_by_gradient,
    select_ranks_by_rank,
)
from repro.svd.svd_linear import SVDLinear

__all__ = [
    "FinetuneResult",
    "GradientRedistributionPipeline",
    "GradientSnapshot",
    "LayerPlan",
    "RedistributionPlan",
    "SVDFactors",
    "SVDLinear",
    "apply_svd",
    "dense_mac_count",
    "factored_mac_count",
    "finetune",
    "hard_threshold_rank",
    "merge_sigma",
    "protected_count",
    "reconstruction_error",
    "select_elements_by_magnitude",
    "select_ranks_by_gradient",
    "select_ranks_by_rank",
    "sigma_gradient_snapshot",
    "svd_decompose",
    "task_loss",
    "truncate_factors",
]
