"""Fig. 12: accuracy/loss versus SLC protection rate across model families.

Sweeps the protection rate on mini encoders (GLUE-like tasks), a decoder LM
(WikiText-2-like) and a ViT (CIFAR-10-like), reporting metric-vs-rate series
against the noise-free INT8 baseline — the full Fig. 12 panel at reduced
scale.
"""

from __future__ import annotations

import numpy as np

from conftest import train_mini_encoder
from repro.core import HyFlexPim
from repro.datasets import make_glue_task, make_vision_dataset, wikitext2_like
from repro.datasets.synthetic_vision import VisionSpec
from repro.nn import (
    AdamW,
    BatchIterator,
    DecoderLM,
    TransformerConfig,
    VisionTransformer,
    cross_entropy,
    lm_cross_entropy,
)

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)


def _sweep_encoder(task: str) -> tuple[float, dict[float, float], str]:
    data = make_glue_task(task, seed=0)
    regression = data.spec.kind == "regression"
    model = train_mini_encoder(data, num_layers=3, epochs=5, regression=regression)
    hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
    task_type = "regression" if regression else "classification"
    compiled = hfp.compile(model, data.train, task_type=task_type)
    metric = {"matthews": "matthews", "pearson": "pearson"}.get(data.spec.metric, "accuracy")
    baseline = hfp.ideal_reference(compiled, data.test, metric=metric)
    sweep = hfp.protection_sweep(compiled, data.test, rates=RATES, metric=metric)
    return baseline, sweep, data.spec.metric


def _sweep_lm() -> tuple[float, dict[float, float]]:
    corpus = wikitext2_like(seed=0)
    config = TransformerConfig(
        vocab_size=corpus.spec.vocab_size, d_model=32, num_heads=4, num_layers=3,
        d_ff=128, max_seq_len=corpus.spec.seq_len, seed=0,
    )
    model = DecoderLM(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(0)
    for _ in range(3):
        for inputs, targets in BatchIterator(corpus.train, 16, rng=rng):
            loss = lm_cross_entropy(model(inputs), targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
    hfp = HyFlexPim(protect_fraction=0.2, epochs=1, batch_size=16, learning_rate=2e-3)
    compiled = hfp.compile(model, corpus.train, task_type="lm")
    baseline = hfp.ideal_reference(compiled, corpus.test)
    return baseline, hfp.protection_sweep(compiled, corpus.test, rates=RATES)


def _sweep_vit() -> tuple[float, dict[float, float]]:
    data = make_vision_dataset(
        VisionSpec(image_size=16, train_size=300, test_size=100, noise_std=0.2), seed=0
    )
    config = TransformerConfig(
        d_model=32, num_heads=4, num_layers=2, d_ff=128, image_size=16, patch_size=4,
        num_classes=10, max_seq_len=32, seed=0,
    )
    model = VisionTransformer(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(0)
    for _ in range(5):
        for inputs, targets in BatchIterator(data.train, 32, rng=rng):
            loss = cross_entropy(model(inputs), targets.astype(int))
            model.zero_grad()
            loss.backward()
            optimizer.step()
    hfp = HyFlexPim(protect_fraction=0.05, epochs=2, batch_size=32, learning_rate=1e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    baseline = hfp.ideal_reference(compiled, data.test)
    return baseline, hfp.protection_sweep(compiled, data.test, rates=RATES)


def test_fig12_accuracy_vs_slc_rate(benchmark, print_header):
    def run():
        results = {}
        # sst2/cola/mrpc are the GLUE stand-ins a 3-layer mini encoder can
        # learn well above chance (qnli/stsb need more capacity than the
        # mini substitution affords; their generators stay unit-tested).
        for task in ("sst2", "cola", "mrpc"):
            results[task] = _sweep_encoder(task)
        lm_base, lm_sweep = _sweep_lm()
        vit_base, vit_sweep = _sweep_vit()
        results["wikitext2-lm"] = (lm_base, lm_sweep, "loss")
        results["cifar10-vit"] = (vit_base, vit_sweep, "accuracy")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 12 — metric vs SLC protection rate (mini-scale panel)")
    print(f"{'workload':>14} {'metric':>9} {'base':>7} " + " ".join(f"{int(r*100):>3}%" for r in RATES))
    for name, (baseline, sweep, metric) in results.items():
        row = " ".join(f"{sweep[r]:.2f}" for r in RATES)
        print(f"{name:>14} {metric:>9} {baseline:>7.3f} {row}")
    print("\npaper: 5-10% (encoders/ViT) and 5-20% (decoders) SLC suffices to stay")
    print("       within 1% accuracy / 10% loss of the baseline; 0% (all-MLC) is worst.")
    print("note: mini models degrade less at 0% than the paper's 12-24 layer models")
    print("      (noise compounds with depth); the ordering is preserved.")

    # Directional assertions: all-MLC never beats the protected settings by
    # more than noise, and moderate protection tracks the baseline.
    for name, (baseline, sweep, metric) in results.items():
        if metric == "loss":
            assert sweep[0.0] >= sweep[1.0] - 1e-9
            assert sweep[0.3] <= sweep[0.0] + 0.05
        else:
            assert sweep[0.3] >= sweep[0.0] - 0.05
