"""Decoder LM study: evaluation loss vs SLC rate (mini Fig. 12(b)).

Trains a GPT-like causal LM on the WikiText-2 stand-in corpus (via the
shared :func:`repro.exp.train_decoder_lm` builder), compiles it through
gradient redistribution, and reports evaluation loss under hybrid SLC/MLC
deployment — rate points fan out over worker processes.  The paper finds
decoders need more protection (5-20 %) than encoders; the same trend
appears here.  Also demonstrates generation with a deployed model.

Run:  python examples/decoder_lm_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HyFlexPim
from repro.datasets import wikitext2_like
from repro.exp import train_decoder_lm


def main() -> None:
    print("== Decoder LM protection study (mini Fig. 12b) ==")
    corpus = wikitext2_like(seed=0)
    print(f"chain entropy rate (lower bound): {corpus.entropy_rate:.3f} nats/token")
    model = train_decoder_lm(
        corpus,
        num_layers=2,
        epochs=4,
        on_epoch=lambda epoch, loss: print(f"  epoch {epoch}: train loss {loss:.3f}"),
    )

    hfp = HyFlexPim(protect_fraction=0.2, epochs=2, batch_size=16, learning_rate=2e-3)
    compiled = hfp.compile(model, corpus.train, task_type="lm")
    baseline = hfp.ideal_reference(compiled, corpus.test, metric="loss")
    print(f"\nnoise-free INT8 eval loss: {baseline:.3f} "
          f"(ppl {np.exp(baseline):.1f}, uniform would be {corpus.spec.vocab_size})")

    print("eval loss vs SLC rate (lower is better):")
    sweep = hfp.protection_sweep(
        compiled, corpus.test, rates=(0.0, 0.05, 0.2, 0.5, 1.0), workers=2
    )
    for rate, loss in sweep.items():
        increase = 100.0 * (loss - sweep[1.0]) / sweep[1.0]
        print(f"  SLC {rate * 100:5.1f}%: loss {loss:.3f} (+{increase:5.1f}% vs all-SLC)")

    print("\nsample generation from the deployed (20% SLC) model:")
    deployed = hfp.deploy(compiled.with_protection(0.2))
    prompt = corpus.test.inputs[0][:5]
    tokens = deployed.generate(prompt, max_new_tokens=15, rng=np.random.default_rng(1))
    print(f"  prompt {prompt.tolist()} -> {tokens[5:].tolist()}")


if __name__ == "__main__":
    main()
