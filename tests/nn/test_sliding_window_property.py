"""Property tests for generate()'s sliding-window fallback past max_seq_len.

``DecoderLM.generate`` silently degrades to the naive sliding-window
recompute when a request cannot fit ``max_seq_len`` cached positions and
no explicit cache was supplied.  Hypothesis drives the boundary from both
sides: (a) requests that *fit* must emit identical greedy tokens on the
cached and naive paths for arbitrary ragged prompts and per-row budgets;
(b) requests that *overflow* must fall back (no exception, full budget
emitted, bitwise-equal to an explicit ``use_cache=False`` run) and agree
with the cached path on every token emitted before the window first
slides; (c) ragged rows that overflow raise the documented ``ValueError``
once the window actually starts sliding; (d) an explicit cache disables
the fallback and raises on capacity overflow instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import DecoderLM, TransformerConfig

VOCAB = 16
MAX_SEQ = 12


def _lm() -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=8,
            num_heads=2,
            num_layers=1,
            d_ff=16,
            max_seq_len=MAX_SEQ,
            seed=5,
        )
    )


LM = _lm()  # deterministic weights; generate() is stateless across calls


def _prompt(rng: np.random.Generator, batch: int, length: int) -> np.ndarray:
    return rng.integers(0, VOCAB, size=(batch, length))


class TestFittingRequests:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=3),
        prompt_len=st.integers(min_value=1, max_value=5),
        budget=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_cached_equals_naive_within_capacity(
        self, batch, prompt_len, budget, seed, data
    ):
        """Ragged prompts + per-row budgets: both paths, same tokens."""
        rng = np.random.default_rng(seed)
        prompt = _prompt(rng, batch, prompt_len)
        lengths = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=prompt_len),
                    min_size=batch,
                    max_size=batch,
                )
            )
        )
        budgets = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=budget),
                    min_size=batch,
                    max_size=batch,
                )
            )
        )
        assert int(lengths.max()) + int(budgets.max()) <= MAX_SEQ
        cached = LM.generate(
            prompt, budgets, prompt_lengths=lengths, use_cache=True
        )
        naive = LM.generate(
            prompt, budgets, prompt_lengths=lengths, use_cache=False
        )
        np.testing.assert_array_equal(cached, naive)


class TestOverflowFallback:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=3),
        prompt_len=st.integers(min_value=1, max_value=6),
        overflow=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_aligned_overflow_falls_back_and_matches_naive(
        self, batch, prompt_len, overflow, seed
    ):
        """use_cache=True past max_seq_len == explicit use_cache=False,
        and agrees with the cached path until the window first slides."""
        rng = np.random.default_rng(seed)
        prompt = _prompt(rng, batch, prompt_len)
        budget = MAX_SEQ - prompt_len + overflow  # needs MAX_SEQ + overflow
        fallback = LM.generate(prompt, budget, use_cache=True)
        naive = LM.generate(prompt, budget, use_cache=False)
        np.testing.assert_array_equal(fallback, naive)
        assert fallback.shape == (batch, prompt_len + budget)
        # Before any sliding (total <= MAX_SEQ) the full-context window is
        # exactly what the cached path attends to: prefixes must agree.
        fitting = MAX_SEQ - prompt_len
        if fitting > 0:
            cached = LM.generate(prompt, fitting, use_cache=True)
            np.testing.assert_array_equal(
                fallback[:, : prompt_len + fitting], cached
            )

    @settings(max_examples=10, deadline=None)
    @given(
        short=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_ragged_overflow_raises_once_window_slides(self, short, seed):
        """Ragged rows past max_seq_len hit the documented ValueError."""
        rng = np.random.default_rng(seed)
        prompt = _prompt(rng, 2, 6)
        lengths = np.array([6, short])
        budget = MAX_SEQ  # both rows stay active well past the boundary
        with pytest.raises(ValueError, match="ragged"):
            LM.generate(prompt, budget, prompt_lengths=lengths, use_cache=True)

    def test_explicit_cache_disables_fallback(self):
        """A caller-managed cache means capacity errors, not silent
        sliding-window degradation."""
        rng = np.random.default_rng(0)
        prompt = _prompt(rng, 2, 4)
        cache = LM.new_cache(2)
        with pytest.raises(ValueError, match="max_seq_len"):
            LM.generate(prompt, MAX_SEQ, use_cache=True, cache=cache)
