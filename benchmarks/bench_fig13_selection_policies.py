"""Fig. 13: gradient-based vs rank-based vs magnitude-based SLC selection.

Compares the three protection policies at matched protection rates on two
GLUE-like tasks (the paper uses MRPC and CoLA).  The magnitude baseline
protects dense weight elements by |w| without SVD; gradient and rank
policies operate on the factored ranks.  Both tasks run as one cached
``repro.exp`` sweep.
"""

from __future__ import annotations

import numpy as np

from repro.exp import ExperimentSpec

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)
TASKS = ("mrpc", "cola")
POLICIES = ("magnitude", "rank", "gradient")


def test_fig13_selection_policies(benchmark, print_header, runner):
    sweep = ExperimentSpec("fig13", params={"rates": RATES}).sweep(task=TASKS)

    series = benchmark.pedantic(
        lambda: runner.sweep(sweep), rounds=1, iterations=1
    )
    by_task = series.by_param("task")

    print_header("Fig. 13 — SLC selection policies (magnitude vs rank vs gradient)")
    for task in TASKS:
        value = by_task[task].value
        print(f"\n[{task}] metric = {value['metric']}")
        print(f"{'policy':>10} " + " ".join(f"{int(r*100):>5}%" for r in RATES))
        for policy in POLICIES:
            row = " ".join(f"{score:.3f}" for score in value["series"][policy])
            print(f"{policy:>10} {row}")
        mid = [i for i, r in enumerate(value["rates"]) if r in (0.05, 0.1, 0.3)]
        means = {
            policy: float(np.mean([value["series"][policy][i] for i in mid]))
            for policy in POLICIES
        }
        print(
            f"{'mean@5-30%':>10} magnitude {means['magnitude']:.3f} | "
            f"rank {means['rank']:.3f} | gradient {means['gradient']:.3f}"
        )
    print("\npaper: gradient-based selection consistently outperforms both")
    print("       ablations because it is tied to the training loss.")
