"""Churn tests for the slot machinery under the continuous scheduler.

`CacheSlotPool` and `RowSlotManager` accounting must stay consistent — no
leaked slots, no double checkouts, eviction/compaction counters matching
an independent oracle — across 1k randomized admit/retire cycles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.serve import CacheSlotPool, RowSlotManager


@pytest.fixture
def model():
    return DecoderLM(
        TransformerConfig(
            vocab_size=16,
            d_model=8,
            num_heads=2,
            num_layers=1,
            d_ff=16,
            max_seq_len=16,
            seed=0,
        )
    )


class TestRowSlotManagerChurn:
    def test_randomized_churn_matches_oracle(self):
        """1k random checkout/retire cycles against a pure-python oracle of
        the live prefix: indices, compaction sources and counters all agree,
        and nothing leaks at the end."""
        rng = np.random.default_rng(42)
        mgr = RowSlotManager(8)
        oracle: list[int] = []  # request ids occupying rows 0..n_live
        next_id = 0
        checkouts = retirements = moves = 0
        for _ in range(1000):
            do_checkout = not oracle or (len(oracle) < 8 and rng.random() < 0.5)
            if do_checkout:
                row = mgr.checkout()
                assert row == len(oracle)  # always extends the prefix
                oracle.append(next_id)
                next_id += 1
                checkouts += 1
            else:
                row = int(rng.integers(0, len(oracle)))
                moved_src = mgr.retire(row)
                retirements += 1
                if moved_src is None:
                    assert row == len(oracle) - 1
                    oracle.pop()
                else:
                    assert moved_src == len(oracle) - 1  # swap-with-last
                    oracle[row] = oracle.pop()
                    moves += 1
            assert mgr.n_live == len(oracle)
            assert mgr.free == 8 - len(oracle)
            assert mgr.stats.checkouts == checkouts
            assert mgr.stats.retirements == retirements
            assert mgr.stats.compaction_moves == moves
        while oracle:  # drain: no leaked rows
            if mgr.retire(len(oracle) - 1) is None:
                oracle.pop()
        assert mgr.n_live == 0
        assert mgr.stats.checkouts == mgr.stats.retirements + 0

    def test_retire_non_live_row_raises(self):
        mgr = RowSlotManager(4)
        with pytest.raises(ValueError):
            mgr.retire(0)
        row = mgr.checkout()
        mgr.retire(row)
        with pytest.raises(ValueError):  # double retire
            mgr.retire(row)

    def test_checkout_past_capacity_raises(self):
        mgr = RowSlotManager(2)
        mgr.checkout()
        mgr.checkout()
        with pytest.raises(ValueError):
            mgr.checkout()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RowSlotManager(0)


class TestCacheSlotPoolChurn:
    def test_randomized_acquire_release_cycles(self, model):
        """1k randomized acquire/release cycles: hit/miss/eviction counters
        match an oracle, in-flight tracking never drifts, no cache is ever
        handed out twice concurrently."""
        rng = np.random.default_rng(7)
        pool = CacheSlotPool(model, max_slots=3)
        held = []
        acquires = expected_evictions = 0
        for _ in range(1000):
            if not held or (len(held) < 6 and rng.random() < 0.5):
                cache = pool.acquire(int(rng.integers(1, 5)))
                # Never the same object twice while checked out.
                assert all(cache is not other for other in held)
                assert cache.max_length == 0  # always handed out reset
                held.append(cache)
                acquires += 1
            else:
                cache = held.pop(int(rng.integers(0, len(held))))
                if pool.free_slots == pool.max_slots:
                    expected_evictions += 1
                pool.release(cache)
            assert pool.in_flight == len(held)
            assert pool.free_slots <= pool.max_slots
            assert pool.stats.hits + pool.stats.misses == acquires
            assert pool.stats.evictions == expected_evictions
        for cache in held:  # drain: every checkout is returned
            pool.release(cache)
        assert pool.in_flight == 0

    def test_double_release_raises(self, model):
        pool = CacheSlotPool(model, max_slots=2)
        cache = pool.acquire(1)
        pool.release(cache)
        with pytest.raises(ValueError):
            pool.release(cache)

    def test_release_of_foreign_cache_raises(self, model):
        pool = CacheSlotPool(model, max_slots=2)
        with pytest.raises(ValueError):
            pool.release(model.new_cache(1))

    def test_engine_churn_leaves_no_leaks(self, model, rng):
        """End-to-end: continuous serving over many tiny busy periods keeps
        pool + row-slot accounting balanced."""
        from repro.serve import ServingEngine

        engine = ServingEngine(model, max_batch_size=3)
        for _ in range(20):
            n = int(rng.integers(1, 5))
            prompts = [rng.integers(0, 16, size=int(rng.integers(1, 6))) for _ in range(n)]
            engine.serve(prompts, max_new_tokens=int(rng.integers(1, 5)))
            assert engine.slot_pool.in_flight == 0
            assert engine.in_flight == 0
        slots = engine._continuous.slots
        assert slots.stats.checkouts == slots.stats.retirements
        assert engine._continuous.reserved_tokens == 0
