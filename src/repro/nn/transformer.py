"""Transformer model family used throughout the reproduction.

Three variants mirror the paper's benchmark suite (Section 5.1):

- :class:`EncoderClassifier` — BERT-like encoder for GLUE-style sequence
  classification / regression,
- :class:`DecoderLM` — GPT-like causal language model (WikiText-2 / PTB),
- :class:`VisionTransformer` — ViT-like patch classifier (CIFAR-10).

All share :class:`TransformerBlock` (MHA + FFN with pre-activation residual
connections) so the SVD gradient-redistribution pipeline can treat every
static linear layer uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.kv_cache import KVCache
from repro.nn.modules import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    ReLU,
)
from repro.nn.tensor import Tensor, concatenate, no_grad

__all__ = [
    "TransformerConfig",
    "TransformerBlock",
    "EncoderClassifier",
    "DecoderLM",
    "VisionTransformer",
]


@dataclass
class TransformerConfig:
    """Structural hyper-parameters shared by all model variants."""

    vocab_size: int = 100
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    d_ff: int = 256
    max_seq_len: int = 64
    dropout: float = 0.0
    activation: str = "gelu"
    num_classes: int = 2
    # Vision-specific fields (ignored by text models).
    image_size: int = 32
    patch_size: int = 8
    in_channels: int = 3
    seed: int = 0
    name: str = "transformer"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.activation not in ("gelu", "relu"):
            raise ValueError(f"unsupported activation {self.activation!r}")
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        return self.in_channels * self.patch_size * self.patch_size


def _activation(config: TransformerConfig) -> Module:
    return GELU() if config.activation == "gelu" else ReLU()


class FeedForward(Module):
    """Two-layer FFN (FFN1: D_h -> D_ff, FFN2: D_ff -> D_h) from Fig. 1."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.ffn1 = Linear(config.d_model, config.d_ff, rng=rng)
        self.act = _activation(config)
        self.ffn2 = Linear(config.d_ff, config.d_model, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.ffn2(self.act(self.ffn1(x))))


class TransformerBlock(Module):
    """Pre-norm Transformer block: MHA + FFN with residual connections."""

    def __init__(
        self, config: TransformerConfig, rng: np.random.Generator, causal: bool = False
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(config.d_model)
        self.attn = MultiHeadAttention(
            config.d_model, config.num_heads, dropout=config.dropout, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(config.d_model)
        self.ffn = FeedForward(config, rng)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attention_mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """Apply the block; ``cache`` (a per-layer KV slot) enables the
        incremental path where ``x`` holds only the new tokens."""
        x = x + self.dropout(
            self.attn(self.ln1(x), attention_mask=attention_mask, cache=cache)
        )
        x = x + self.ffn(self.ln2(x))
        return x

    def static_linears(self) -> dict[str, Linear]:
        """All six static-weight linear layers of this block (Fig. 9)."""
        linears = dict(self.attn.static_linears())
        linears["ffn1"] = self.ffn.ffn1
        linears["ffn2"] = self.ffn.ffn2
        return linears


class _TransformerBase(Module):
    """Shared plumbing: block stack plus static-linear enumeration."""

    config: TransformerConfig
    blocks: ModuleList

    def iter_static_linears(self):
        """Yield (dotted_name, Linear) for every static weight matrix.

        These are exactly the matrices the paper sends through SVD + gradient
        redistribution and stores in analog RRAM (Section 3.3).
        """
        for i, block in enumerate(self.blocks):
            for name, linear in block.static_linears().items():
                yield f"blocks.{i}.{name}", linear

    def replace_static_linear(self, dotted_name: str, replacement: Module) -> None:
        """Swap a static linear (by dotted name) for a factored/PIM variant."""
        parts = dotted_name.split(".")
        if parts[0] != "blocks":
            raise KeyError(f"not a block-level linear: {dotted_name}")
        block = self.blocks[int(parts[1])]
        leaf = parts[2]
        if leaf in ("w_q", "w_k", "w_v", "w_proj"):
            setattr(block.attn, leaf, replacement)
        elif leaf in ("ffn1", "ffn2"):
            setattr(block.ffn, leaf, replacement)
        else:
            raise KeyError(f"unknown static linear {dotted_name}")


class EncoderClassifier(_TransformerBase):
    """BERT-like encoder with a [CLS]-pooled classification/regression head."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=False) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.head = Linear(config.d_model, config.num_classes, rng=rng)

    def forward(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Return logits of shape (batch, num_classes).

        ``token_ids`` is an integer array (batch, seq).  Position 0 acts as
        the [CLS] pooling position, as in BERT.
        """
        token_ids = np.asarray(token_ids)
        batch, seq = token_ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max {self.config.max_seq_len}")
        positions = np.arange(seq)
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x, attention_mask=attention_mask)
        x = self.final_norm(x)
        cls = x[:, 0, :]
        return self.head(cls)


class DecoderLM(_TransformerBase):
    """GPT-like causal language model with tied-free LM head."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=True) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    def forward(self, token_ids: np.ndarray, cache: KVCache | None = None) -> Tensor:
        """Return next-token logits of shape (batch, seq, vocab).

        Without ``cache`` this is the full-context forward over all ``seq``
        positions.  With a :class:`~repro.nn.kv_cache.KVCache`, ``token_ids``
        holds only the *new* tokens: K/V are computed for those alone,
        appended to the per-layer caches, and attention runs over the cached
        prefix — O(L) work per emitted token instead of O(L²).  The cache's
        per-row lengths supply both the position-embedding offsets and the
        key-validity masks, so ragged (right-padded) batches decode
        correctly.  The two paths produce identical logits for the new
        tokens up to floating-point reassociation (verified in tests at the
        active compute dtype).
        """
        token_ids = np.asarray(token_ids)
        _, seq = token_ids.shape
        if cache is None:
            if seq > self.config.max_seq_len:
                raise ValueError(
                    f"sequence length {seq} exceeds max {self.config.max_seq_len}"
                )
            positions: np.ndarray = np.arange(seq)
        else:
            if cache.max_length + seq > self.config.max_seq_len:
                raise ValueError(
                    f"cached length {cache.max_length} + {seq} new tokens exceeds "
                    f"max {self.config.max_seq_len}"
                )
            # Per-row absolute positions: each row continues from its own
            # valid prefix length, which keeps ragged batches equivalent to
            # running every row alone.
            positions = cache.lengths[:, None] + np.arange(seq)[None, :]
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        x = self.embed_dropout(x)
        # The ragged key-validity mask depends only on the cache lengths, so
        # compute it once here and share it across every layer.
        attention_mask = (
            None if cache is None else cache.key_padding_mask(cache.max_length + seq)
        )
        for i, block in enumerate(self.blocks):
            x = block(
                x,
                attention_mask=attention_mask,
                cache=None if cache is None else cache.layer(i),
            )
        x = self.final_norm(x)
        logits = self.lm_head(x)
        if cache is not None:
            cache.advance(seq)
        return logits

    def new_cache(self, batch: int, capacity: int | None = None) -> KVCache:
        """Allocate a KV cache sized for this model (``capacity`` defaults to
        ``max_seq_len``).

        An installed ``kv_cache_factory`` attribute (set by e.g.
        ``ServingEngine.deploy(attention="analog")``) takes over
        allocation with the same geometry, so pooled caches come out
        crossbar-backed without scheduler changes.
        """
        factory = getattr(self, "kv_cache_factory", None) or KVCache
        return factory(
            num_layers=self.config.num_layers,
            batch=batch,
            num_heads=self.config.num_heads,
            head_dim=self.config.d_head,
            capacity=min(capacity or self.config.max_seq_len, self.config.max_seq_len),
        )

    def prefill(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Run an aligned prompt through ``cache``; return last-position logits.

        ``tokens`` is ``(B, L)`` (or ``(L,)``, treated as one row) of
        *exact-length* prompts for a cache whose rows are empty.  This is
        the admission path of the continuous scheduler: one request
        prefills into its own row view of a live shared cache while other
        rows are mid-decode.  Returns ``(B, vocab)`` logits for the last
        prompt position — exactly the logits :meth:`generate` uses to
        select the first generated token, so a scheduler built on this
        emits token-for-token what one-shot generation emits.
        """
        tokens = np.atleast_2d(np.asarray(tokens))
        if int(cache.lengths.max(initial=0)) != 0:
            raise ValueError("prefill requires empty cache rows (reset or cleared)")
        return self.forward(tokens, cache=cache).data[:, -1]

    def select_tokens(
        self, logits: np.ndarray, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Greedy argmax (rng=None) or per-row categorical sampling."""
        if rng is None:
            return np.argmax(logits, axis=-1).astype(np.int64)
        shifted = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probs = shifted / shifted.sum(axis=-1, keepdims=True)
        return np.array(
            [int(rng.choice(probs.shape[-1], p=row)) for row in probs], dtype=np.int64
        )

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int | np.ndarray,
        rng: np.random.Generator | None = None,
        prompt_lengths: np.ndarray | None = None,
        use_cache: bool = True,
        cache: KVCache | None = None,
        eos_id: int | None = None,
        pad_id: int = 0,
    ) -> np.ndarray:
        """Batched autoregressive generation, O(L) per token via the KV cache.

        Parameters
        ----------
        prompt:
            ``(L,)`` single prompt or ``(B, L)`` batch of right-padded
            prompts.  A 1-D prompt returns a 1-D output (back-compat).
        max_new_tokens:
            Token budget — a scalar, or a ``(B,)`` array of per-row budgets.
            A row stops decoding (and costs nothing further) once its own
            budget is spent; the output is sized for the largest budget and
            short rows pad the tail with ``pad_id``.
        rng:
            None for greedy decoding; a Generator samples from the softmax.
        prompt_lengths:
            Optional ``(B,)`` valid-token counts for ragged prompts; rows
            continue generation right after their own prompt.
        use_cache:
            True (default) runs the KV-cached incremental path; False keeps
            the naive full-context recompute (the O(L²) baseline measured by
            ``bench_serve``).  Requests that cannot fit ``max_seq_len``
            positions automatically fall back to the naive sliding-window
            recompute (the historical behaviour) unless an explicit
            ``cache`` was supplied.
        cache:
            Optional preallocated :class:`KVCache` to reuse (the serving
            engine's slot pool); it is reset before prefill.
        eos_id:
            Optional stop token: a row that emits it stops early and pads the
            rest of its budget with ``pad_id``.
        pad_id:
            Filler for positions past a finished row's last token.
        """
        prompt = np.asarray(prompt)
        squeeze = prompt.ndim == 1
        tokens = prompt.reshape(1, -1) if squeeze else np.asarray(prompt)
        batch, prompt_len = tokens.shape
        if prompt_len == 0:
            raise ValueError("prompt must contain at least one token")
        if prompt_lengths is None:
            lengths = np.full(batch, prompt_len, dtype=np.int64)
        else:
            lengths = np.asarray(prompt_lengths, dtype=np.int64)
            if lengths.shape != (batch,):
                raise ValueError(
                    f"prompt_lengths must have shape ({batch},), got {lengths.shape}"
                )
            if lengths.min() < 1 or lengths.max() > prompt_len:
                raise ValueError("prompt_lengths must be in [1, prompt.shape[1]]")
        budgets = np.broadcast_to(
            np.asarray(max_new_tokens, dtype=np.int64), (batch,)
        ).copy()
        if budgets.min() < 0:
            raise ValueError("max_new_tokens must be non-negative")
        max_budget = int(budgets.max())

        out = np.full((batch, prompt_len + max_budget), pad_id, dtype=np.int64)
        out[:, :prompt_len] = tokens
        for i in range(batch):  # pad slack inside ragged prompts
            out[i, lengths[i] : prompt_len] = pad_id
        cur = lengths.copy()
        active = budgets > 0

        # Long requests degrade gracefully: when no explicit cache was
        # handed in, a request past max_seq_len falls back to the naive
        # sliding-window recompute (the historical behaviour) instead of
        # raising.  An explicit cache means the caller manages capacity.
        if (
            use_cache
            and cache is None
            and int(lengths.max()) + int(budgets.max()) > self.config.max_seq_len
        ):
            use_cache = False

        # Decoding is inference: freeze dropout so the cached and naive
        # paths emit identical tokens (and cached K/V are noise-free).
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                if use_cache:
                    self._generate_cached(out, cur, active, budgets, rng, cache, eos_id)
                else:
                    self._generate_naive(out, cur, active, budgets, rng, eos_id)
        finally:
            if was_training:
                self.train()
        return out[0] if squeeze else out

    def _generate_cached(
        self,
        out: np.ndarray,
        cur: np.ndarray,
        active: np.ndarray,
        budgets: np.ndarray,
        rng: np.random.Generator | None,
        cache: KVCache | None,
        eos_id: int | None,
    ) -> None:
        batch = out.shape[0]
        max_budget = int(budgets.max())
        prompt_len = int(cur.max())
        needed = prompt_len + max_budget
        if needed > self.config.max_seq_len:
            raise ValueError(
                f"cached generation needs {needed} positions but max_seq_len is "
                f"{self.config.max_seq_len}; shorten the request or use_cache=False "
                "(sliding-window recompute)"
            )
        if not active.any():
            return
        if cache is None:
            cache = self.new_cache(batch, capacity=needed)
        else:
            if cache.batch != batch or cache.capacity < needed:
                raise ValueError(
                    f"cache (batch={cache.batch}, capacity={cache.capacity}) cannot "
                    f"hold batch={batch}, {needed} positions"
                )
            cache.reset()
        # Prefill: one full forward over the (right-padded) prompts.  Pad
        # positions only ever serve as causally-blocked keys, so the plain
        # causal mask suffices; their cached K/V are invalidated below.
        logits = self.forward(out[:, :prompt_len], cache=cache).data
        cache.set_lengths(cur)
        step_logits = logits[np.arange(batch), cur - 1]
        for step in range(max_budget):
            next_tokens = self.select_tokens(step_logits, rng)
            next_tokens = np.where(active, next_tokens, 0)
            out[np.arange(batch)[active], cur[active]] = next_tokens[active]
            cur[active] += 1
            if eos_id is not None:
                active &= next_tokens != eos_id
            active &= budgets > step + 1  # per-row budgets spend independently
            if not active.any():
                break
            # Feed the emitted token (pad for finished rows — their logits
            # are never read again, but the batch stays rectangular).
            step_logits = self.forward(next_tokens[:, None], cache=cache).data[:, -1]

    def _generate_naive(
        self,
        out: np.ndarray,
        cur: np.ndarray,
        active: np.ndarray,
        budgets: np.ndarray,
        rng: np.random.Generator | None,
        eos_id: int | None,
    ) -> None:
        batch = out.shape[0]
        for step in range(int(budgets.max())):
            if not active.any():
                break
            # Window geometry follows the *active* rows: finished rows'
            # shorter `cur` must neither shrink the window nor (below) index
            # outside it once the window starts sliding.
            total = int(cur[active].max())
            start = max(0, total - self.config.max_seq_len)
            if start > 0 and not np.all(cur[active] == cur[active][0]):
                raise ValueError(
                    "naive sliding-window generation does not support ragged "
                    "rows past max_seq_len"
                )
            window = out[:, start:total]
            logits = self.forward(window).data
            read = np.clip(cur - 1 - start, 0, window.shape[1] - 1)
            step_logits = logits[np.arange(batch), read]
            next_tokens = self.select_tokens(step_logits, rng)
            out[np.arange(batch)[active], cur[active]] = next_tokens[active]
            cur[active] += 1
            if eos_id is not None:
                active &= next_tokens != eos_id
            active &= budgets > step + 1


class VisionTransformer(_TransformerBase):
    """ViT-like classifier over non-overlapping image patches."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.patch_projection = Linear(config.patch_dim, config.d_model, rng=rng)
        self.cls_token = Embedding(1, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.num_patches + 1, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, rng, causal=False) for _ in range(config.num_layers)]
        )
        self.final_norm = LayerNorm(config.d_model)
        self.head = Linear(config.d_model, config.num_classes, rng=rng)

    @staticmethod
    def patchify(images: np.ndarray, patch_size: int) -> np.ndarray:
        """Convert (B, C, H, W) images into (B, num_patches, patch_dim)."""
        batch, channels, height, width = images.shape
        if height % patch_size or width % patch_size:
            raise ValueError("image dimensions must be divisible by patch_size")
        ph, pw = height // patch_size, width // patch_size
        patches = images.reshape(batch, channels, ph, patch_size, pw, patch_size)
        patches = patches.transpose(0, 2, 4, 1, 3, 5)
        return patches.reshape(batch, ph * pw, channels * patch_size * patch_size)

    def forward(self, images: np.ndarray) -> Tensor:
        """Return logits (batch, num_classes) for images (B, C, H, W)."""
        patches = self.patchify(np.asarray(images), self.config.patch_size)
        batch = patches.shape[0]
        x = self.patch_projection(Tensor(patches))
        cls = self.cls_token(np.zeros((batch, 1), dtype=int))
        x = concatenate([cls, x], axis=1)
        positions = np.arange(self.config.num_patches + 1)
        x = x + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.head(x[:, 0, :])
