"""ApiServer: routes, SSE streaming, SLO-aware admission over the engine.

The streaming front door of the scale-out tier: every route is exercised
through real sockets against a server running on its own event-loop
thread, with the engine stepped by the driver thread — exactly the
production wiring.  Streaming responses must deliver the same tokens a
non-streaming request (and a bare ``DecoderLM.generate``) produces; the
admission policy's queue-depth bound must convert saturation into 503s;
priority classes and deadlines must thread through to the continuous
scheduler (a 0-deadline request comes back preempted).
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.serve import AdmissionPolicy, ApiServer, ReplicaPool, ServingEngine
from repro.serve.api import api_request, stream_generate

VOCAB = 48


def _model(seed: int = 0) -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=32,
            num_heads=4,
            num_layers=2,
            d_ff=64,
            max_seq_len=32,
            seed=seed,
        )
    )


@pytest.fixture
def server():
    engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
    srv = ApiServer(
        engine,
        policy=AdmissionPolicy(priority_classes={"interactive": 10, "batch": 0}),
    )
    srv.start_in_thread()
    yield srv
    srv.stop_in_thread()


def _prompt(rng, n=6):
    return [int(t) for t in rng.integers(0, VOCAB, size=n)]


class TestRoutes:
    def test_healthz(self, server):
        status, body = api_request(server.host, server.port, "/healthz")
        assert status == 200 and body == {"ok": True}

    def test_unknown_route_404(self, server):
        status, body = api_request(server.host, server.port, "/nope")
        assert status == 404 and "error" in body

    def test_bad_json_400(self, server):
        status, body = api_request(
            server.host, server.port, "/v1/generate", {"max_new_tokens": 4}
        )
        assert status == 400 and "error" in body

    def test_non_numeric_deadline_400(self, server, rng):
        status, body = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": _prompt(rng), "max_new_tokens": 2, "deadline_s": "1s"},
        )
        assert status == 400 and "error" in body

    def test_unknown_priority_class_400(self, server, rng):
        status, body = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": _prompt(rng), "max_new_tokens": 2, "priority": "warp"},
        )
        assert status == 400 and "warp" in body["error"]

    def test_stats_reports_engine_counters(self, server, rng):
        status, _ = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": _prompt(rng), "max_new_tokens": 2},
        )
        assert status == 200
        status, stats = api_request(server.host, server.port, "/v1/stats")
        assert status == 200
        assert stats["requests_completed"] >= 1
        assert {"pending", "in_flight", "rejected"} <= stats.keys()


class TestGenerate:
    def test_tokens_match_bare_generate(self, server, rng):
        prompt = _prompt(rng)
        status, body = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": prompt, "max_new_tokens": 5},
        )
        assert status == 200 and body["done"]
        solo = _model().generate(np.array(prompt), 5)[len(prompt):]
        assert body["tokens"] == [int(t) for t in solo]
        assert body["latency_s"] >= body["queued_s"] >= 0.0

    def test_streaming_matches_non_streaming(self, server, rng):
        prompt = _prompt(rng)
        payload = {"prompt": prompt, "max_new_tokens": 6}
        _, plain = api_request(server.host, server.port, "/v1/generate", payload)
        streamed = stream_generate(server.host, server.port, payload)
        assert streamed["status"] == 200
        assert streamed["tokens"] == plain["tokens"]
        # Client-observed TTFT is measured on the wire and precedes e2e.
        assert 0.0 < streamed["client_ttft_s"] <= streamed["client_latency_s"]

    def test_deadline_zero_preempts_via_api(self, server, rng):
        status, body = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": _prompt(rng), "max_new_tokens": 8, "deadline_s": 0.0},
        )
        assert status == 200
        assert body["preempted"] is True
        assert len(body["tokens"]) < 8

    def test_priority_class_accepted(self, server, rng):
        status, body = api_request(
            server.host,
            server.port,
            "/v1/generate",
            {"prompt": _prompt(rng), "max_new_tokens": 3, "priority": "interactive"},
        )
        assert status == 200 and len(body["tokens"]) == 3


class TestAdmission:
    def test_queue_depth_bound_returns_503(self, rng):
        engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        server = ApiServer(engine, policy=AdmissionPolicy(max_queue_depth=0))
        server.start_in_thread()
        try:
            status, body = api_request(
                server.host,
                server.port,
                "/v1/generate",
                {"prompt": _prompt(rng), "max_new_tokens": 2},
            )
            assert status == 503 and body["error"] == "overloaded"
            _, stats = api_request(server.host, server.port, "/v1/stats")
            assert stats["rejected"] == 1
        finally:
            server.stop_in_thread()

    def test_streaming_client_surfaces_503(self, rng):
        engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        server = ApiServer(engine, policy=AdmissionPolicy(max_queue_depth=0))
        server.start_in_thread()
        try:
            out = stream_generate(
                server.host,
                server.port,
                {"prompt": _prompt(rng), "max_new_tokens": 2},
            )
            assert out["status"] == 503
        finally:
            server.stop_in_thread()

    def test_default_deadline_applies_when_request_names_none(self, rng):
        engine = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        server = ApiServer(engine, policy=AdmissionPolicy(default_deadline_s=0.0))
        server.start_in_thread()
        try:
            status, body = api_request(
                server.host,
                server.port,
                "/v1/generate",
                {"prompt": _prompt(rng), "max_new_tokens": 8},
            )
            assert status == 200 and body["preempted"] is True
        finally:
            server.stop_in_thread()

    def test_resolve_priority(self):
        policy = AdmissionPolicy(default_priority=3, priority_classes={"hi": 9})
        assert policy.resolve_priority(None) == 3
        assert policy.resolve_priority(7) == 7
        assert policy.resolve_priority("hi") == 9
        with pytest.raises(ValueError):
            policy.resolve_priority("nope")


class _SubmitTimeStreamTarget:
    """Engine stand-in whose submit() fires on_token *synchronously*.

    Models the replica-pool back-pressure path: a full inbox makes
    ``pool.submit`` poll, delivering token callbacks on the submitting
    (event-loop) thread before submit returns.  A handler holding a
    non-reentrant lock across submit while the callback re-acquires it
    would deadlock here — this target makes that path deterministic.
    """

    busy = True
    pending = 0
    in_flight = 0

    def __init__(self, n_tokens: int = 3) -> None:
        self.n_tokens = n_tokens
        self._results: dict[int, object] = {}
        self._next = 0
        self._lock = threading.Lock()

    def submit(self, prompt, max_new, on_token=None, **_ignored) -> int:
        with self._lock:
            rid = self._next
            self._next += 1
        tokens = list(range(self.n_tokens))
        if on_token is not None:
            for token in tokens:
                on_token(rid, token)
        with self._lock:
            self._results[rid] = SimpleNamespace(
                tokens=np.array(tokens, dtype=np.int64),
                preempted=False,
                queued_s=0.0,
                latency_s=0.0,
                ttft_s=0.0,
                tpot_s=0.0,
            )
        return rid

    def step(self, force: bool = False) -> list:
        return []

    def pop_result(self, request_id: int):
        with self._lock:
            return self._results.pop(request_id, None)


class TestSubmitTimeCallbacks:
    def test_synchronous_on_token_during_submit_does_not_deadlock(self):
        server = ApiServer(_SubmitTimeStreamTarget(n_tokens=4))
        server.start_in_thread()
        try:
            out = stream_generate(
                server.host,
                server.port,
                {"prompt": [1, 2, 3], "max_new_tokens": 4},
                timeout_s=10.0,
            )
            assert out["status"] == 200
            assert out["tokens"] == [0, 1, 2, 3]
        finally:
            server.stop_in_thread()


class TestPoolTarget:
    def test_server_over_inline_pool(self, rng):
        pool = ReplicaPool(
            lambda index: ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0),
            replicas=2,
            processes=False,
        )
        server = ApiServer(pool, policy=AdmissionPolicy(max_queue_depth=32))
        server.start_in_thread()
        try:
            prompt = _prompt(rng)
            status, body = api_request(
                server.host,
                server.port,
                "/v1/generate",
                {"prompt": prompt, "max_new_tokens": 4, "session": "s1"},
            )
            assert status == 200
            solo = _model().generate(np.array(prompt), 4)[len(prompt):]
            assert body["tokens"] == [int(t) for t in solo]
            _, stats = api_request(server.host, server.port, "/v1/stats")
            assert stats["outstanding"] == 0
            assert stats["requeues"] == 0
            assert len(stats["outstanding_tokens"]) == 2
        finally:
            server.stop_in_thread()
            pool.shutdown()
