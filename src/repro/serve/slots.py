"""KV-cache slot pool: preallocated decode buffers reused across batches.

Serving traffic churns through many short-lived generation batches; without
pooling, every batch would reallocate ``num_layers * 2`` multi-megabyte K/V
buffers.  :class:`CacheSlotPool` keeps a bounded set of :class:`KVCache`
objects keyed by batch width, hands them out per serving batch, and evicts
the least-recently-used free slot when the pool is full — the software
analogue of a fixed digital-PIM K/V region being re-partitioned between
request batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.kv_cache import KVCache
from repro.nn.transformer import DecoderLM

__all__ = ["CacheSlotPool", "SlotPoolStats"]


@dataclass
class SlotPoolStats:
    """Allocation accounting for a :class:`CacheSlotPool`."""

    hits: int = 0  # acquire() satisfied by a pooled slot
    misses: int = 0  # acquire() had to allocate fresh buffers
    evictions: int = 0  # pooled slots dropped to make room

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class CacheSlotPool:
    """Bounded LRU pool of :class:`KVCache` slots for one served model.

    Parameters
    ----------
    model:
        The decoder whose geometry (layers / heads / head_dim / max_seq_len)
        sizes every slot.
    max_slots:
        Maximum number of *free* caches retained; in-flight caches are not
        counted (the engine bounds those via its batch size).
    """

    def __init__(self, model: DecoderLM, max_slots: int = 4) -> None:
        if max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {max_slots}")
        self._model = model
        self.max_slots = max_slots
        self.stats = SlotPoolStats()
        # LRU order: index 0 is the least recently released.
        self._free: list[KVCache] = []

    def acquire(self, batch: int) -> KVCache:
        """A reset cache with ``batch`` rows (pooled if one matches)."""
        for i, cache in enumerate(self._free):
            if cache.batch == batch:
                self.stats.hits += 1
                cache = self._free.pop(i)
                cache.reset()
                return cache
        self.stats.misses += 1
        return self._model.new_cache(batch)

    def release(self, cache: KVCache) -> None:
        """Return a cache to the pool, evicting the LRU slot if full."""
        if len(self._free) >= self.max_slots:
            self._free.pop(0)
            self.stats.evictions += 1
        self._free.append(cache)

    @property
    def free_slots(self) -> int:
        return len(self._free)
