"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    accuracy,
    matthews_correlation,
    pearson_correlation,
    perplexity,
    metric_for_task,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0
        assert accuracy(np.array([1, 1, 1]), np.array([0, 0, 0])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 1, 0]), np.array([1, 0, 0, 1])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))


class TestMatthews:
    def test_perfect_prediction_is_one(self):
        y = np.array([0, 1, 0, 1, 1])
        assert matthews_correlation(y, y) == pytest.approx(1.0)

    def test_inverted_prediction_is_minus_one(self):
        y = np.array([0, 1, 0, 1])
        assert matthews_correlation(1 - y, y) == pytest.approx(-1.0)

    def test_constant_prediction_is_zero(self):
        assert matthews_correlation(np.ones(6, dtype=int), np.array([0, 1, 0, 1, 0, 1])) == 0.0

    def test_random_prediction_near_zero(self):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 2, size=10_000)
        targets = rng.integers(0, 2, size=10_000)
        assert abs(matthews_correlation(preds, targets)) < 0.05


class TestPearson:
    def test_linear_relation_is_one(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 3) == pytest.approx(1.0)

    def test_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0


class TestPerplexity:
    def test_uniform_model(self):
        assert perplexity(np.log(50)) == pytest.approx(50.0)

    def test_zero_loss(self):
        assert perplexity(0.0) == 1.0


class TestMetricForTask:
    def test_unknown_task(self):
        with pytest.raises(ValueError):
            metric_for_task("ranking", "accuracy")

    def test_unknown_classification_metric(self):
        evaluator = metric_for_task("classification", "f1")
        from repro.nn import ArrayDataset

        with pytest.raises(ValueError):
            evaluator(_ArgmaxModel(), ArrayDataset(np.zeros((2, 2)), np.zeros(2)))


class _ArgmaxModel:
    def __call__(self, x):
        from repro.nn import Tensor

        return Tensor(np.zeros((len(x), 2)))
