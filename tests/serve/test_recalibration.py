"""Online-recalibration tests: drift probes, recovery, wear accounting.

A :class:`ServingEngine` deployed on a :class:`FaultySimBackend` watches
its crossbars drift away from their programmed conductances and recovers
by re-programming tiles and re-freezing activation scales — with every
probe and re-program accounted in :class:`ServingStats`,
:class:`GemvStats` and the backend's wear ledger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HyFlexPim
from repro.datasets import wikitext2_like
from repro.nn import DecoderLM, TransformerConfig
from repro.rram import FaultModel, FaultySimBackend, SimBackend
from repro.serve import RecalibrationPolicy, ServingEngine


@pytest.fixture(scope="module")
def compiled():
    corpus = wikitext2_like(seed=0)
    config = TransformerConfig(
        vocab_size=corpus.spec.vocab_size,
        d_model=16,
        num_heads=2,
        num_layers=1,
        d_ff=32,
        max_seq_len=corpus.spec.seq_len,
        seed=0,
    )
    lm = DecoderLM(config)
    hfp = HyFlexPim(protect_fraction=0.2, epochs=1, batch_size=16, seed=0)
    return corpus, hfp.compile(lm, corpus.train, task_type="lm")


def _deploy(compiled, backend=None, **engine_kwargs):
    corpus, bundle = compiled
    return ServingEngine.deploy(
        bundle.model,
        bundle.plan.layers,
        calibration_prompts=corpus.train.inputs[:2],
        mode="crossbar",
        backend=backend,
        max_batch_size=2,
        **engine_kwargs,
    )


class TestRecalibrationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecalibrationPolicy(interval_steps=-1)
        with pytest.raises(ValueError):
            RecalibrationPolicy(drift_threshold=-0.1)

    def test_defaults_disable_automatic_probing(self):
        assert RecalibrationPolicy().interval_steps == 0


class TestDriftProbeAndRecovery:
    def test_clean_backend_never_drifts_past_baseline(self, compiled):
        engine = _deploy(compiled, backend=SimBackend())
        first = engine.recalibrate()  # captures the baseline
        assert not first["triggered"]
        second = engine.recalibrate()
        # SimBackend planes are frozen: the identical probe reads identical
        # conductances, so baseline-relative drift is exactly zero.
        assert second["worst_error"] == 0.0
        assert not second["triggered"]
        assert engine.stats.drift_probes == 2

    def test_probe_detects_heavy_drift(self, compiled):
        fault = FaultModel(drift_nu=0.4, drift_t0_s=60.0)
        backend = FaultySimBackend(fault=fault, seed=0)
        engine = _deploy(compiled, backend=backend)
        clean = max(engine.probe_drift().values())
        backend.advance(seconds=365 * 86_400.0)
        drifted = max(engine.probe_drift().values())
        assert drifted > clean
        assert drifted > 0.05

    def test_recalibrate_reprograms_and_refreezes_scales(self, compiled):
        fault = FaultModel(drift_nu=0.4, drift_t0_s=60.0)
        backend = FaultySimBackend(fault=fault, seed=0)
        engine = _deploy(
            compiled,
            backend=backend,
            recalibration=RecalibrationPolicy(drift_threshold=0.05),
        )
        assert not engine.recalibrate()["triggered"]  # day-zero baseline
        backend.advance(seconds=365 * 86_400.0)
        reprograms_before = backend.ledger.reprograms
        summary = engine.recalibrate()
        assert summary["triggered"]
        assert summary["worst_error"] > 0.05
        assert summary["layers_reprogrammed"] == len(engine.hybrid_layers)
        assert summary["scales_recalibrated"]
        assert backend.ledger.reprograms > reprograms_before
        assert engine.stats.recalibrations == 1
        assert engine.gemv_stats().cells_reprogrammed > 0
        assert all(l.is_calibrated for l in engine.hybrid_layers.values())
        # Re-programming reset the drift clock and the baseline: the next
        # probe-recalibrate cycle sees fresh cells and does not re-trigger.
        assert not engine.recalibrate()["triggered"]
        assert not engine.recalibrate()["triggered"]

    def test_recalibrate_below_threshold_is_a_no_op(self, compiled):
        backend = FaultySimBackend(seed=0)
        engine = _deploy(
            compiled,
            backend=backend,
            recalibration=RecalibrationPolicy(drift_threshold=0.5),
        )
        engine.recalibrate()  # baseline
        summary = engine.recalibrate()
        assert not summary["triggered"]
        assert backend.ledger.reprograms == 0
        assert engine.stats.recalibrations == 0

    def test_force_triggers_regardless_of_threshold(self, compiled):
        backend = FaultySimBackend(seed=0)
        engine = _deploy(compiled, backend=backend)
        summary = engine.recalibrate(force=True)
        assert summary["triggered"]
        assert backend.ledger.reprograms > 0

    def test_periodic_probe_fires_during_serving(self, compiled):
        corpus, _ = compiled
        fault = FaultModel(drift_nu=0.4, drift_t0_s=60.0)
        backend = FaultySimBackend(fault=fault, seed=0)
        engine = _deploy(
            compiled,
            backend=backend,
            recalibration=RecalibrationPolicy(
                interval_steps=2, drift_threshold=0.05
            ),
        )
        assert not engine.recalibrate()["triggered"]  # day-zero baseline
        backend.advance(seconds=365 * 86_400.0)
        engine.serve([corpus.train.inputs[0][:5]], max_new_tokens=4)
        assert engine.stats.drift_probes > 1
        assert engine.stats.recalibrations > 0
        assert engine.stats.layers_reprogrammed > 0

    def test_backend_health_is_reported(self, compiled):
        backend = FaultySimBackend(seed=0)
        engine = _deploy(compiled, backend=backend)
        reports = engine.backend_health()
        assert len(reports) == 1
        assert reports[0]["backend"] == "faulty-sim"
        assert reports[0]["tiles"] > 0

    def test_stats_dict_carries_recalibration_counters(self, compiled):
        engine = _deploy(compiled, backend=SimBackend())
        engine.probe_drift()
        snapshot = engine.stats.as_dict()
        assert snapshot["drift_probes"] == 1
        assert snapshot["recalibrations"] == 0
        assert snapshot["layers_reprogrammed"] == 0
