"""Tests for interconnect models and the Fig. 17 scalability analysis."""

from __future__ import annotations

import pytest

from repro.arch import (
    OCI_LINK,
    PCIE6_LINK,
    ScalabilityModel,
    hidden_vector_handoff_cycles,
    partial_sum_aggregation_cycles,
    transfer_cycles,
)
from repro.models import paper_model


class TestInterconnect:
    def test_bandwidths_match_paper(self):
        assert OCI_LINK.bandwidth_gbps == 1000.0
        assert PCIE6_LINK.bandwidth_gbps == 128.0

    def test_hidden_vector_handoff_in_paper_range(self):
        """Section 3.1: 0.75-2 KB hidden vectors cross chips in 6-16 cycles."""
        small = hidden_vector_handoff_cycles(768)
        large = hidden_vector_handoff_cycles(2048)
        assert 5.0 <= small <= 10.0
        assert 10.0 <= large <= 20.0

    def test_partial_sum_aggregation_near_paper(self):
        """Section 3.1: <3 KB per PU aggregates in ~24 cycles."""
        cycles = partial_sum_aggregation_cycles(9)
        assert 15.0 <= cycles <= 30.0
        assert partial_sum_aggregation_cycles(1) == 0.0

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            OCI_LINK.transfer_seconds(-1)
        with pytest.raises(ValueError):
            partial_sum_aggregation_cycles(0)

    def test_link_construction_validation(self):
        """Bandwidth/overhead are validated up front, not silently divided."""
        from repro.arch.interconnect import Link

        with pytest.raises(ValueError):
            Link("bad", bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            Link("bad", bandwidth_gbps=-128.0)
        with pytest.raises(ValueError):
            Link("bad", bandwidth_gbps=128.0, launch_overhead_cycles=-1.0)

    def test_transfer_cycles_clock_validation(self):
        with pytest.raises(ValueError):
            transfer_cycles(OCI_LINK, 1024, clock_hz=0.0)
        with pytest.raises(ValueError):
            transfer_cycles(OCI_LINK, 1024, clock_hz=-1e9)

    def test_transfer_cycles_scale_linearly(self):
        a = transfer_cycles(OCI_LINK, 1024)
        b = transfer_cycles(OCI_LINK, 2048)
        assert b == pytest.approx(2 * a)

    def test_bandwidths_have_one_source_of_truth(self):
        """ChipConfig/HardwareConfig derive their bus speeds from the
        canonical links — and those pin the paper's Section 3.1 numbers."""
        from repro.arch.config import DEFAULT_HARDWARE
        from repro.pim.chip import ChipConfig

        chip = ChipConfig()
        assert chip.inner_bus_gbps == OCI_LINK.bandwidth_gbps == 1000.0
        assert chip.global_bus_gbps == PCIE6_LINK.bandwidth_gbps == 128.0
        assert DEFAULT_HARDWARE.oci_gbps == OCI_LINK.bandwidth_gbps
        assert DEFAULT_HARDWARE.pcie_gbps == PCIE6_LINK.bandwidth_gbps


class TestScalability:
    @pytest.fixture(scope="class")
    def model(self):
        return ScalabilityModel()

    def test_gpt2_fits_single_chip(self, model):
        assert model.min_chips(paper_model("gpt2"), 0.2, 8192) == 1

    def test_llama3_needs_two_chips(self, model):
        """Section 6.3.5: Llama3 requires two chips at minimum."""
        assert model.min_chips(paper_model("llama3-1b"), 0.2, 8192) == 2

    def test_llama3_needs_multiple_pus_per_layer(self, model):
        """A single PU cannot hold one Llama3 layer (Section 6.3.5)."""
        assert model.min_pus_per_layer(paper_model("llama3-1b"), 0.2) >= 2

    def test_gpt2_two_pu_speedup_near_paper(self, model):
        """Paper: 1.99x from assigning two PUs per GPT-2 layer."""
        gpt2 = paper_model("gpt2")
        one = model.throughput(gpt2, 8192, 0.2, 1, pus_per_layer=1)
        two = model.throughput(gpt2, 8192, 0.2, 1, pus_per_layer=2)
        ratio = two.tokens_per_second / one.tokens_per_second
        assert 1.9 < ratio <= 2.0

    def test_llama3_multichip_scaling_near_paper(self, model):
        """Paper: quad/octa chips reach 1.96x/3.65x over the dual baseline."""
        reports = model.scaling_curve(paper_model("llama3-1b"), 8192, 0.2, (2, 4, 8))
        assert reports[0].normalized_throughput == pytest.approx(1.0)
        assert 1.8 < reports[1].normalized_throughput <= 2.05
        assert 3.2 < reports[2].normalized_throughput <= 4.1

    def test_all_llama3_configs_fit(self, model):
        for report in model.scaling_curve(paper_model("llama3-1b"), 8192, 0.2, (2, 4, 8)):
            assert report.fits

    def test_memory_demand_positive(self, model):
        demand = model.memory_demand(paper_model("llama3-1b"), 8192)
        assert demand["analog_bytes"] > 5e8  # ~0.8 GB INT8 weights
        assert demand["digital_bytes"] > 1e8  # KV cache at N=8192
