"""Batched serving over KV-cached decoder inference (`repro.serve`).

The deployment-facing layer of the reproduction: request queue + dynamic
batching + KV-cache slot pooling over a PIM-deployed
:class:`~repro.nn.transformer.DecoderLM`.  See
:mod:`repro.serve.engine` for the hardware correspondence (analog crossbars
for static GEMVs, cached K/V as the digital-PIM dynamic-GEMM operands).
"""

from repro.serve.engine import (
    GenerationRequest,
    RequestResult,
    ServingEngine,
    ServingStats,
)
from repro.serve.slots import CacheSlotPool, SlotPoolStats

__all__ = [
    "CacheSlotPool",
    "GenerationRequest",
    "RequestResult",
    "ServingEngine",
    "ServingStats",
    "SlotPoolStats",
]
