"""Baseline accelerator models for the Section 5.3 comparison suite."""

from repro.arch.baselines.asadi import AsadiBaseline, AsadiDaggerBaseline
from repro.arch.baselines.base import BaselineCosts, BaselineModel, DEFAULT_COSTS
from repro.arch.baselines.nmp import NmpBaseline
from repro.arch.baselines.non_pim import NonPimBaseline
from repro.arch.baselines.sprint import SprintBaseline

__all__ = [
    "AsadiBaseline",
    "AsadiDaggerBaseline",
    "BaselineCosts",
    "BaselineModel",
    "DEFAULT_COSTS",
    "NmpBaseline",
    "NonPimBaseline",
    "SprintBaseline",
]
