"""Process-pool fan-out shared by the experiment runner and core sweeps."""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, TypeVar

__all__ = ["map_with_pool"]

T = TypeVar("T")
R = TypeVar("R")


def map_with_pool(fn: Callable[[T], R], items: Iterable[T], workers: int) -> list[R]:
    """``[fn(item) for item in items]``, fanned out over ``workers`` processes.

    ``workers <= 1`` (or a single item) stays serial in-process.  Prefers the
    fork start method so callables and registry state defined in the parent
    (e.g. test-registered experiments) are visible in the children; falls
    back to the platform default where fork is unavailable.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)
