"""Tests for the hardware projection and its ScalabilityModel cross-check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.scaling import ScalabilityModel
from repro.dist import DeviceMesh, HardwareProjection, ShardPlan
from repro.models.configs import ModelSpec
from repro.svd.pipeline import LayerPlan


def make_plans(rng, num_blocks=2, d=16, ff=32):
    plans = {}
    for block in range(num_blocks):
        for leaf, (out_f, in_f) in {
            "attn.q": (d, d),
            "attn.k": (d, d),
            "attn.v": (d, d),
            "attn.proj": (d, d),
            "ffn1": (ff, d),
            "ffn2": (d, ff),
        }.items():
            rank = min(out_f, in_f)
            mask = np.zeros(rank, dtype=bool)
            mask[: max(1, rank // 4)] = True
            name = f"blocks.{block}.{leaf}"
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(rank),
            )
    return plans


def projection_for(rng, ways=1, num_chips=1, **plan_kwargs):
    plans = make_plans(rng, **plan_kwargs)
    plan = ShardPlan.build(plans, DeviceMesh(num_chips=num_chips), tensor_parallel=ways)
    return HardwareProjection(plan, hidden_dim=16)


class TestRates:
    def test_more_ways_project_higher_rate(self, rng):
        rates = [
            projection_for(rng, ways=w).pipeline_rate_tokens_per_s() for w in (1, 2, 4)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_oci_aggregation_only_with_tensor_parallelism(self, rng):
        assert projection_for(rng, ways=1).oci_aggregation_s() == 0.0
        assert projection_for(rng, ways=2).oci_aggregation_s() > 0.0

    def test_pipeline_handoff_raises_serial_latency(self, rng):
        single = projection_for(rng, num_chips=1)
        piped = projection_for(rng, num_chips=2)
        assert piped.plan.pipeline_boundaries == 1
        assert piped.serial_token_latency_s() > single.serial_token_latency_s()
        # ...and the steady-state stage carries the amortized handoff.
        assert piped.block_stage_s() > single.block_stage_s()

    def test_concurrency_floor_is_one(self, rng):
        projection = projection_for(rng)
        assert projection.concurrency() >= 1.0


class TestRequestLatency:
    def test_monotone_in_tokens(self, rng):
        projection = projection_for(rng)
        short = projection.request_latency_s(4, 4)
        long = projection.request_latency_s(4, 32)
        assert 0 < short < long
        assert projection.request_latency_s(0, 0) == 0.0

    def test_busy_share_is_throughput_based(self, rng):
        projection = projection_for(rng)
        rate = projection.pipeline_rate_tokens_per_s()
        assert projection.request_busy_s(3, 5) == pytest.approx(8 / rate)

    def test_validation(self, rng):
        projection = projection_for(rng)
        with pytest.raises(ValueError):
            projection.request_latency_s(-1, 4)
        with pytest.raises(ValueError):
            HardwareProjection(projection.plan, hidden_dim=0)


class TestReport:
    def test_report_payload(self, rng):
        projection = projection_for(rng, ways=2)
        report = projection.report()
        assert report["plan"]["tensor_parallel"] == 2
        assert report["pipeline_rate_tokens_per_s"] > 0
        assert "oci" in report["traffic"]


class TestScalabilityCrossCheck:
    def test_normalized_curve_tracks_fig17_model(self, rng):
        """The functional curve must share the analytic curve's shape:
        monotone over the tile-friendly range and never above the analytic
        bound (the mapper's per-shard tiling overhead only costs)."""
        ways = (1, 2, 4)
        projections = [projection_for(rng, ways=w, d=32, ff=64) for w in ways]
        rates = [p.pipeline_rate_tokens_per_s() for p in projections]
        measured = [r / rates[0] for r in rates]

        spec = ModelSpec(
            name="xcheck",
            kind="decoder",
            num_layers=2,
            d_model=32,
            num_heads=2,
            d_ff=64,
            vocab_size=40,
            max_seq_len=32,
        )
        model = ScalabilityModel()
        analytic = [
            model.throughput(spec, 32, 0.25, 1, pus_per_layer=w).tokens_per_second
            for w in ways
        ]
        analytic = [a / analytic[0] for a in analytic]

        assert measured == sorted(measured)
        for got, bound in zip(measured, analytic):
            assert got <= bound * 1.05
        # Sharding must deliver a real fraction of the analytic speedup.
        assert measured[-1] >= analytic[-1] * 0.4
