"""Fig. 17: memory requirements and multi-PU / multi-chip scalability."""

from __future__ import annotations

from repro.arch import ScalabilityModel
from repro.models import paper_model

SEQ_LEN = 8192  # the paper's Fig. 17 operating point


def test_fig17_scalability(benchmark, print_header):
    model = ScalabilityModel()
    gpt2 = paper_model("gpt2")
    llama = paper_model("llama3-1b")

    def run():
        gpt2_one = model.throughput(gpt2, SEQ_LEN, 0.2, 1, pus_per_layer=1)
        gpt2_two = model.throughput(gpt2, SEQ_LEN, 0.2, 1, pus_per_layer=2)
        llama_curve = model.scaling_curve(llama, SEQ_LEN, 0.2, (2, 4, 8))
        demands = {
            spec.name: model.memory_demand(spec, SEQ_LEN)
            for spec in (gpt2, llama)
        }
        return gpt2_one, gpt2_two, llama_curve, demands

    gpt2_one, gpt2_two, llama_curve, demands = benchmark(run)

    print_header("Fig. 17 — memory requirements and throughput scalability (N=8192)")
    for name, demand in demands.items():
        print(
            f"{name:>12}: analog weights {demand['analog_bytes'] / 1e9:.2f} GB, "
            f"digital (KV+buffers) {demand['digital_bytes'] / 1e9:.2f} GB"
        )

    ratio = gpt2_two.tokens_per_second / gpt2_one.tokens_per_second
    print(f"\nGPT-2 tensor parallelism: 2 PUs/layer = {ratio:.2f}x (paper: 1.99x)")

    print(f"Llama3 minimum chips: {model.min_chips(llama, 0.2, SEQ_LEN)} (paper: 2)")
    print(f"{'chips':>6} {'PUs/layer':>10} {'norm. throughput':>17} {'fits':>5}")
    for report in llama_curve:
        print(
            f"{report.num_chips:>6} {report.pus_per_layer:>10} "
            f"{report.normalized_throughput:>16.2f}x {str(report.fits):>5}"
        )
    print("paper: quad 1.96x, octa 3.65x over dual (minor comm. degradation).")

    assert 1.9 < ratio <= 2.0
    assert model.min_chips(llama, 0.2, SEQ_LEN) == 2
    assert llama_curve[-1].normalized_throughput > 3.0
