"""Batched serving over KV-cached decoder inference (`repro.serve`).

The deployment-facing layer of the reproduction: request queue +
continuous (iteration-level) or static batching + KV-cache slot pooling
over a PIM-deployed :class:`~repro.nn.transformer.DecoderLM`.  See
:mod:`repro.serve.engine` for the hardware correspondence (analog
crossbars for static GEMVs, cached K/V as the digital-PIM dynamic-GEMM
operands) and :mod:`repro.serve.continuous` for the iteration-level
scheduler.
"""

from repro.serve.api import AdmissionPolicy, ApiServer
from repro.serve.continuous import ContinuousScheduler
from repro.serve.engine import (
    SCHEDULERS,
    RecalibrationPolicy,
    ServingEngine,
    ServingStats,
)
from repro.serve.replica import (
    LeastOutstandingTokensRouter,
    PoolResult,
    ReplicaPool,
    RoundRobinRouter,
    SessionAffinityRouter,
    ShmRing,
)
from repro.serve.requests import GenerationRequest, RequestResult, TokenCallback
from repro.serve.slots import CacheSlotPool, RowSlotManager, RowSlotStats, SlotPoolStats

__all__ = [
    "AdmissionPolicy",
    "ApiServer",
    "CacheSlotPool",
    "ContinuousScheduler",
    "GenerationRequest",
    "LeastOutstandingTokensRouter",
    "PoolResult",
    "RecalibrationPolicy",
    "ReplicaPool",
    "RequestResult",
    "RoundRobinRouter",
    "RowSlotManager",
    "RowSlotStats",
    "SCHEDULERS",
    "ServingEngine",
    "ServingStats",
    "SessionAffinityRouter",
    "ShmRing",
    "SlotPoolStats",
    "TokenCallback",
]
