"""Table 2: component-level area and power of HyFlexPIM."""

from __future__ import annotations

from repro.arch import ANALOG_MODULE, DIGITAL_MODULE, area_report, table2_rows


def test_table2_area_power(benchmark, print_header):
    def build():
        return {
            "analog": table2_rows(ANALOG_MODULE),
            "digital": table2_rows(DIGITAL_MODULE),
            "rollup": area_report(),
        }

    result = benchmark(build)
    print_header("Table 2 — hardware configuration and component area/power")
    for module_name in ("analog", "digital"):
        print(f"\n[{module_name} RRAM module]")
        print(f"{'component':>14} {'area mm^2':>10} {'share':>7} {'power mW':>10} {'share':>7} {'count':>8}")
        for row in result[module_name]:
            print(
                f"{row['component']:>14} {row['area_mm2']:>10.4f} "
                f"{row['area_share'] * 100:>6.1f}% {row['power_mw']:>10.2f} "
                f"{row['power_share'] * 100:>6.1f}% {row['count']:>8}"
            )
    rollup = result["rollup"]
    print(
        f"\nPU: {rollup.pu_mm2:.2f} mm^2 / {rollup.pu_mw / 1000:.1f} W; "
        f"chip (24 PUs): {rollup.chip_mm2:.0f} mm^2 (65 nm)"
    )
    print("paper: analog 0.47 mm^2 / 930.69 mW; digital 8.01 mm^2 / 6532.05 mW")
