"""Shared model-training builders for benchmarks, examples and studies.

Every figure benchmark and example study used to hand-roll the same three
training loops (mini encoder, decoder LM, ViT).  They live here once, with
an optional ``on_epoch`` hook so interactive examples can keep printing
per-epoch losses.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets import GlueTaskData, MarkovCorpus, VisionData
from repro.nn import (
    AdamW,
    BatchIterator,
    DecoderLM,
    EncoderClassifier,
    TransformerConfig,
    VisionTransformer,
    cross_entropy,
    default_dtype,
    lm_cross_entropy,
    mse_loss,
)

__all__ = ["train_decoder_lm", "train_encoder", "train_vit"]

EpochHook = Callable[[int, float], None]


def _run_epochs(
    model,
    data,
    loss_fn,
    *,
    epochs: int,
    batch_size: int,
    learning_rate: float,
    seed: int,
    on_epoch: EpochHook | None,
    compute_dtype: str | None = None,
) -> None:
    optimizer = AdamW(model.parameters(), lr=learning_rate)
    rng = np.random.default_rng(seed)
    with default_dtype(compute_dtype):
        for epoch in range(epochs):
            total, batches = 0.0, 0
            for inputs, targets in BatchIterator(data, batch_size, rng=rng):
                loss = loss_fn(model, inputs, targets)
                model.zero_grad()
                loss.backward()
                optimizer.step()
                total += float(loss.data)
                batches += 1
            if on_epoch is not None:
                on_epoch(epoch + 1, total / max(batches, 1))


def train_encoder(
    data: GlueTaskData,
    *,
    num_layers: int = 3,
    d_model: int = 32,
    num_heads: int = 4,
    d_ff: int | None = None,
    epochs: int = 5,
    batch_size: int = 32,
    learning_rate: float = 2e-3,
    regression: bool = False,
    seed: int = 0,
    on_epoch: EpochHook | None = None,
    compute_dtype: str | None = None,
) -> EncoderClassifier:
    """Train a down-scaled BERT-like encoder on a synthetic GLUE task."""
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=d_model,
        num_heads=num_heads,
        num_layers=num_layers,
        d_ff=d_ff if d_ff is not None else 2 * d_model,
        max_seq_len=data.spec.seq_len,
        num_classes=1 if regression else 2,
        seed=seed,
    )
    model = EncoderClassifier(config)

    def loss_fn(m, inputs, targets):
        logits = m(inputs)
        if regression:
            return mse_loss(logits.reshape(-1), targets)
        return cross_entropy(logits, targets.astype(int))

    _run_epochs(
        model,
        data.train,
        loss_fn,
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=seed,
        on_epoch=on_epoch,
        compute_dtype=compute_dtype,
    )
    return model


def train_decoder_lm(
    corpus: MarkovCorpus,
    *,
    num_layers: int = 3,
    d_model: int = 32,
    num_heads: int = 4,
    d_ff: int = 128,
    epochs: int = 3,
    batch_size: int = 16,
    learning_rate: float = 2e-3,
    seed: int = 0,
    on_epoch: EpochHook | None = None,
    compute_dtype: str | None = None,
) -> DecoderLM:
    """Train a GPT-like causal LM on the WikiText-2 stand-in corpus."""
    config = TransformerConfig(
        vocab_size=corpus.spec.vocab_size,
        d_model=d_model,
        num_heads=num_heads,
        num_layers=num_layers,
        d_ff=d_ff,
        max_seq_len=corpus.spec.seq_len,
        seed=seed,
    )
    model = DecoderLM(config)
    _run_epochs(
        model,
        corpus.train,
        lambda m, inputs, targets: lm_cross_entropy(m(inputs), targets),
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=seed,
        on_epoch=on_epoch,
        compute_dtype=compute_dtype,
    )
    return model


def train_vit(
    data: VisionData,
    *,
    image_size: int = 16,
    patch_size: int = 4,
    num_layers: int = 2,
    d_model: int = 32,
    num_heads: int = 4,
    d_ff: int = 128,
    num_classes: int = 10,
    epochs: int = 5,
    batch_size: int = 32,
    learning_rate: float = 2e-3,
    seed: int = 0,
    on_epoch: EpochHook | None = None,
    compute_dtype: str | None = None,
) -> VisionTransformer:
    """Train a small vision transformer on the CIFAR-10-like image set."""
    config = TransformerConfig(
        d_model=d_model,
        num_heads=num_heads,
        num_layers=num_layers,
        d_ff=d_ff,
        image_size=image_size,
        patch_size=patch_size,
        num_classes=num_classes,
        max_seq_len=(image_size // patch_size) ** 2 * 2,
        seed=seed,
    )
    model = VisionTransformer(config)
    _run_epochs(
        model,
        data.train,
        lambda m, inputs, targets: cross_entropy(m(inputs), targets.astype(int)),
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=seed,
        on_epoch=on_epoch,
        compute_dtype=compute_dtype,
    )
    return model
