"""End-to-end gradient-redistribution pipeline (Algorithm 1).

``GradientRedistributionPipeline`` stitches together the stages the paper
performs entirely in software before deployment:

1. SVD-decompose every static linear layer of a Transformer;
2. truncate at the compute-preserving hard threshold;
3. fine-tune for 1-3 epochs while accumulating ``|dL/dσ|``;
4. select the top-``k%`` gradient ranks for SLC protection;
5. emit merged inference factors ``A = Σ·Vᵀ``, ``B = U`` with per-rank
   protection masks, ready for :mod:`repro.pim` / :mod:`repro.core` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import ArrayDataset
from repro.nn.modules import Module
from repro.svd.finetune import FinetuneResult, finetune
from repro.svd.selection import (
    select_ranks_by_gradient,
    select_ranks_by_rank,
)
from repro.svd.svd_linear import SVDLinear

__all__ = ["LayerPlan", "RedistributionPlan", "GradientRedistributionPipeline", "apply_svd"]


@dataclass
class LayerPlan:
    """Deployment plan for one factored layer."""

    name: str
    a_matrix: np.ndarray  # Σ·Vᵀ, shape (rank, in)
    b_matrix: np.ndarray  # U, shape (out, rank)
    bias: np.ndarray | None
    protected_ranks: np.ndarray  # boolean (rank,)
    sigma_gradients: np.ndarray  # mean |dL/dσ| per rank

    @property
    def rank(self) -> int:
        return len(self.protected_ranks)

    @property
    def protected_fraction(self) -> float:
        return float(self.protected_ranks.mean()) if self.rank else 0.0


@dataclass
class RedistributionPlan:
    """Full-model deployment plan plus fine-tuning provenance."""

    layers: dict[str, LayerPlan]
    finetune_result: FinetuneResult
    protect_fraction: float
    policy: str

    def total_ranks(self) -> int:
        return sum(plan.rank for plan in self.layers.values())

    def protected_ranks(self) -> int:
        return sum(int(plan.protected_ranks.sum()) for plan in self.layers.values())


def apply_svd(model: Module, rank: int | None = None) -> dict[str, SVDLinear]:
    """Replace every static linear of ``model`` with an :class:`SVDLinear`.

    ``model`` must expose ``iter_static_linears`` / ``replace_static_linear``
    (all Transformer variants in :mod:`repro.nn.transformer` do).  Returns
    the mapping of dotted layer names to the new factored layers.
    """
    replaced: dict[str, SVDLinear] = {}
    for name, linear in list(model.iter_static_linears()):
        svd_layer = SVDLinear.from_linear(linear, rank=rank)
        model.replace_static_linear(name, svd_layer)
        replaced[name] = svd_layer
    return replaced


class GradientRedistributionPipeline:
    """Orchestrates Algorithm 1 over a Transformer model.

    Parameters
    ----------
    protect_fraction:
        The paper's ``k%`` SLC protection rate over ranks.
    policy:
        ``"gradient"`` (paper) or ``"rank"`` (brute-force top singular values).
    epochs, batch_size, learning_rate:
        Fine-tuning hyper-parameters (Table 1 analogues for mini models).
    compute_dtype:
        Optional tensor precision ("float32"/"float64") for the fine-tuning
        loop (see :func:`repro.svd.finetune.finetune`).
    """

    def __init__(
        self,
        protect_fraction: float = 0.1,
        policy: str = "gradient",
        epochs: int = 2,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        rng: np.random.Generator | None = None,
        compute_dtype: str | None = None,
    ) -> None:
        if policy not in ("gradient", "rank"):
            raise ValueError(f"policy must be 'gradient' or 'rank', got {policy!r}")
        self.protect_fraction = protect_fraction
        self.policy = policy
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.rng = rng or np.random.default_rng(0)
        self.compute_dtype = compute_dtype

    def run(
        self,
        model: Module,
        train_data: ArrayDataset,
        task_type: str,
        rank: int | None = None,
    ) -> RedistributionPlan:
        """Execute decompose → truncate → fine-tune → select → merge."""
        svd_layers = apply_svd(model, rank=rank)
        result = finetune(
            model,
            train_data,
            task_type=task_type,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            rng=self.rng,
            compute_dtype=self.compute_dtype,
        )
        layers: dict[str, LayerPlan] = {}
        for name, layer in svd_layers.items():
            # Read accumulated gradients off the layer itself: finetune()'s
            # result dict is keyed by attribute paths, not block-level names.
            grads = layer.mean_sigma_gradient()
            if self.policy == "gradient":
                mask = select_ranks_by_gradient(grads, self.protect_fraction)
            else:
                mask = select_ranks_by_rank(layer.sigma.data, self.protect_fraction)
            a_matrix, b_matrix = layer.merged_factors()
            bias = layer.bias.data.copy() if layer.bias is not None else None
            layers[name] = LayerPlan(
                name=name,
                a_matrix=a_matrix,
                b_matrix=b_matrix,
                bias=bias,
                protected_ranks=mask,
                sigma_gradients=grads,
            )
        return RedistributionPlan(
            layers=layers,
            finetune_result=result,
            protect_fraction=self.protect_fraction,
            policy=self.policy,
        )
