"""ViT study: CIFAR-10-like classification under hybrid PIM (Fig. 12 ViT column).

Trains a small vision transformer on the procedural 10-class image set (via
the shared :func:`repro.exp.train_vit` builder), compiles and deploys it on
hybrid SLC/MLC PIM, and verifies the paper's finding that vision
transformers tolerate low protection rates (~5 %).

Run:  python examples/vit_vision_study.py
"""

from __future__ import annotations

from repro.core import HyFlexPim
from repro.datasets import make_vision_dataset
from repro.datasets.synthetic_vision import VisionSpec
from repro.exp import train_vit


def main() -> None:
    print("== ViT protection study (mini Fig. 12, CIFAR-10-like) ==")
    spec = VisionSpec(image_size=16, train_size=400, test_size=120, noise_std=0.2)
    data = make_vision_dataset(spec, seed=0)
    model = train_vit(
        data,
        num_layers=2,
        epochs=5,
        on_epoch=lambda epoch, loss: print(f"  epoch {epoch}: train loss {loss:.3f}"),
    )

    hfp = HyFlexPim(protect_fraction=0.05, epochs=2, batch_size=32, learning_rate=1e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    baseline = hfp.ideal_reference(compiled, data.test)
    print(f"\nnoise-free INT8 baseline accuracy: {baseline:.3f} (chance = 0.10)")

    sweep = hfp.protection_sweep(
        compiled, data.test, rates=(0.0, 0.05, 0.3, 1.0), workers=2
    )
    for rate, score in sweep.items():
        print(f"  SLC {rate * 100:5.1f}%: accuracy {score:.3f}")
    print(
        f"\n5% protection drop vs baseline: {(baseline - sweep[0.05]) * 100:.1f} pts "
        "(paper reports <1% for ViT-Base at 5% SLC)"
    )


if __name__ == "__main__":
    main()
