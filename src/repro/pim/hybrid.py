"""HybridLinear: factored inference layer on hybrid SLC/MLC analog PIM.

This is the deployment form of one static weight matrix after gradient
redistribution (Fig. 9): the layer computes

    y = ((x @ Aᵀ) @ Bᵀ) + b,   A = Σ·Vᵀ (rank x in),  B = U (out x rank)

with both GEMVs running through INT8 quantization and noisy analog RRAM.
Each rank is assigned to SLC (protected) or MLC (efficient); the two
partial GEMVs recombine digitally.

Two execution modes trade fidelity for speed:

- ``"crossbar"`` — full bit-serial simulation (bit-sliced cells, frozen
  programming noise, 6/7-b ADC, shift-and-add).  Exact to the hardware
  model; used for layer-level studies and verification.
- ``"fast"`` — weight-level noise injection ``W̃ = W ⊙ (1 + η)`` on the
  INT8-quantized factors, the paper's own Eq. (5) accuracy methodology.
  Orders of magnitude faster; used for whole-model accuracy sweeps
  (Fig. 12/13).  Consistency between the two modes is unit-tested.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor
from repro.quant.quantizer import dequantize, quantize
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import CrossbarConfig, GemvStats
from repro.rram.kernels import KernelPolicy
from repro.rram.mapping import HybridSplit, split_by_rank
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec, apply_multiplicative_noise
from repro.svd.pipeline import LayerPlan

__all__ = ["HybridLinear", "MagnitudeProtectedLinear", "attach_hybrid_layers"]

_MODES = ("fast", "crossbar")


class MagnitudeProtectedLinear(Module):
    """Dense (non-SVD) layer with elementwise magnitude-based SLC protection.

    The Fig. 13 ablation baseline: without SVD there is no rank structure,
    so the top-``k%`` |w| elements are protected in SLC and the rest sit in
    MLC.  Executed with the fast Eq. (5) noise path (element-granular
    SLC/MLC mixing inside one column is not physically realizable on the
    crossbar, which is itself part of the paper's argument for rank-level
    protection).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        protected_mask: np.ndarray,
        noise: NoiseSpec | None = None,
        mlc_cell: CellType = MLC2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=float)
        protected_mask = np.asarray(protected_mask, dtype=bool)
        if protected_mask.shape != weight.shape:
            raise ValueError(
                f"mask shape {protected_mask.shape} != weight shape {weight.shape}"
            )
        self.noise = noise or DEFAULT_NOISE
        self.out_features, self.in_features = weight.shape
        codes, params = quantize(weight, num_bits=8)
        dequant = dequantize(codes, params)
        rng = np.random.default_rng(seed)
        noisy = np.empty_like(dequant)
        noisy[protected_mask] = apply_multiplicative_noise(
            dequant[protected_mask], self.noise.sigma(SLC), rng
        )
        noisy[~protected_mask] = apply_multiplicative_noise(
            dequant[~protected_mask], self.noise.sigma(mlc_cell), rng
        )
        self._noisy_weight = noisy
        self._bias = None if bias is None else np.asarray(bias, dtype=float)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
        out = data @ self._noisy_weight.T
        if self._bias is not None:
            out = out + self._bias
        return Tensor(out)


class HybridLinear(Module):
    """Inference-only linear layer executed on hybrid SLC/MLC analog PIM."""

    def __init__(
        self,
        plan: LayerPlan,
        noise: NoiseSpec | None = None,
        mode: str = "fast",
        mlc_cell: CellType = MLC2,
        config: CrossbarConfig | None = None,
        seed: int = 0,
        policy: KernelPolicy | None = None,
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.plan = plan
        self.noise = noise or DEFAULT_NOISE
        self.mode = mode
        self.mlc_cell = mlc_cell
        self.config = config or CrossbarConfig()
        self.seed = seed
        self.policy = policy
        self.in_features = plan.a_matrix.shape[1]
        self.out_features = plan.b_matrix.shape[0]
        self.rank = plan.rank

        # INT8 weight quantization (per-tensor, symmetric) for both factors.
        self._a_codes, self._a_params = quantize(plan.a_matrix, num_bits=8)
        self._b_codes, self._b_params = quantize(plan.b_matrix, num_bits=8)

        rng = np.random.default_rng(seed)
        if mode == "crossbar":
            self._split: HybridSplit | None = split_by_rank(
                self._a_codes,
                self._b_codes,
                plan.protected_ranks,
                noise=self.noise,
                config=self.config,
                mlc_cell=mlc_cell,
                seed=seed,
                policy=policy,
            )
            self._noisy_a = None
            self._noisy_b = None
        else:
            self._split = None
            # Weight-level Eq. (5) noise, applied once (static weights are
            # programmed once); protected ranks get SLC sigma, rest MLC sigma.
            sigma_slc = self.noise.sigma(SLC)
            sigma_mlc = self.noise.sigma(mlc_cell)
            protected = plan.protected_ranks
            a_noisy = np.empty_like(plan.a_matrix)
            b_noisy = np.empty_like(plan.b_matrix)
            a_deq = dequantize(self._a_codes, self._a_params)
            b_deq = dequantize(self._b_codes, self._b_params)
            a_noisy[protected] = apply_multiplicative_noise(a_deq[protected], sigma_slc, rng)
            a_noisy[~protected] = apply_multiplicative_noise(a_deq[~protected], sigma_mlc, rng)
            b_noisy[:, protected] = apply_multiplicative_noise(
                b_deq[:, protected], sigma_slc, rng
            )
            b_noisy[:, ~protected] = apply_multiplicative_noise(
                b_deq[:, ~protected], sigma_mlc, rng
            )
            self._noisy_a = a_noisy
            self._noisy_b = b_noisy

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Inference pass; gradients do not flow through PIM hardware."""
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
        original_shape = data.shape
        flat = data.reshape(-1, original_shape[-1])
        if self.mode == "fast":
            out = self._forward_fast(flat)
        else:
            out = self._forward_crossbar(flat)
        if self.plan.bias is not None:
            out = out + self.plan.bias
        return Tensor(out.reshape(original_shape[:-1] + (self.out_features,)))

    def _forward_fast(self, flat: np.ndarray) -> np.ndarray:
        hidden = flat @ self._noisy_a.T
        return hidden @ self._noisy_b.T

    def _forward_crossbar(self, flat: np.ndarray) -> np.ndarray:
        split = self._split
        # Stage 1: x (INT8) @ A^T on SLC/MLC arrays.
        x_codes, x_params = quantize(flat, num_bits=8)
        hidden = np.zeros((flat.shape[0], self.rank))
        protected = self.plan.protected_ranks
        scale_in = np.asarray(x_params.scale) * np.asarray(self._a_params.scale)
        if split.slc_a is not None:
            hidden[:, protected] = split.slc_a.gemv(x_codes) * scale_in
        if split.mlc_a is not None:
            hidden[:, ~protected] = split.mlc_a.gemv(x_codes) * scale_in

        # Stage 2: h (requantized INT8) @ B^T.
        h_codes, h_params = quantize(hidden, num_bits=8)
        scale_out = np.asarray(h_params.scale) * np.asarray(self._b_params.scale)
        out = np.zeros((flat.shape[0], self.out_features))
        if split.slc_b is not None:
            out += split.slc_b.gemv(h_codes[:, protected]) * scale_out
        if split.mlc_b is not None:
            out += split.mlc_b.gemv(h_codes[:, ~protected]) * scale_out
        return out

    # ------------------------------------------------------------------
    def arrays_used(self) -> int:
        """Physical array footprint (crossbar mode only tracks placement)."""
        if self._split is not None:
            return self._split.arrays_used
        # Fast mode: compute the footprint the crossbar placement would use.
        split = split_by_rank(
            self._a_codes,
            self._b_codes,
            self.plan.protected_ranks,
            noise=NoiseSpec.noiseless(),
            config=self.config,
            mlc_cell=self.mlc_cell,
            seed=self.seed,
            policy=self.policy,
        )
        return split.arrays_used

    def merged_stats(self) -> GemvStats:
        if self._split is None:
            return GemvStats()
        return self._split.merged_stats()

    def __repr__(self) -> str:
        return (
            f"HybridLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, protected={self.plan.protected_ranks.sum()}, "
            f"mode={self.mode!r})"
        )


def attach_hybrid_layers(
    model: Module,
    plans: dict[str, LayerPlan],
    noise: NoiseSpec | None = None,
    mode: str = "fast",
    mlc_cell: CellType = MLC2,
    seed: int = 0,
    policy: KernelPolicy | None = None,
) -> dict[str, HybridLinear]:
    """Swap every planned layer of ``model`` for its PIM deployment form.

    ``model`` must expose ``replace_static_linear`` (all Transformer variants
    do); ``plans`` comes from the gradient-redistribution pipeline.
    """
    attached: dict[str, HybridLinear] = {}
    for name, plan in plans.items():
        layer = HybridLinear(
            plan,
            noise=noise,
            mode=mode,
            mlc_cell=mlc_cell,
            seed=seed + len(attached),
            policy=policy,
        )
        model.replace_static_linear(name, layer)
        attached[name] = layer
    return attached
