"""Result/Series records: indexing, tabulation and JSON/CSV export."""

from __future__ import annotations

import csv
import io
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.exp import ExperimentSpec, Result, ResultCache, Runner, Series


def toy_series() -> Series:
    results = [
        Result(
            spec=ExperimentSpec("selfcheck", params={"n": n, "scale": 2.0}),
            value={"total": float(n * 2), "values": [1.0] * n},
            elapsed_s=0.5,
        )
        for n in (2, 3)
    ]
    return Series(results=results)


class TestSeriesAccess:
    def test_values_and_table(self):
        series = toy_series()
        assert series.values("total") == [4.0, 6.0]
        assert series.table("n", "total") == {2: 4.0, 3: 6.0}

    def test_by_param(self):
        by_n = toy_series().by_param("n")
        assert set(by_n) == {2, 3}
        assert by_n[3]["total"] == 6.0

    def test_by_param_rejects_duplicates(self):
        series = toy_series()
        series.results.append(series.results[0])
        with pytest.raises(ValueError, match="not unique"):
            series.by_param("n")

    def test_result_getitem(self):
        result = toy_series()[0]
        assert result["total"] == 4.0
        assert result.experiment == "selfcheck"


class TestExport:
    def test_json_roundtrip(self, tmp_path):
        series = toy_series()
        path = tmp_path / "series.json"
        series.to_json(path)
        restored = Series.from_json(path)
        assert len(restored) == 2
        assert restored.values("total") == series.values("total")
        assert restored[0].spec == series[0].spec

    def test_from_json_accepts_text(self):
        text = toy_series().to_json()
        assert Series.from_json(text).values("total") == [4.0, 6.0]

    def test_csv_shape(self):
        rows = list(csv.reader(io.StringIO(toy_series().to_csv())))
        header, *data = rows
        assert header == [
            "experiment", "seed", "n", "scale", "value.total", "value.values",
            "elapsed_s", "cached",
        ]
        assert len(data) == 2
        assert data[0][0] == "selfcheck"
        assert json.loads(data[0][5]) == [1.0, 1.0]  # nested field JSON-encoded

    def test_csv_written_to_disk(self, tmp_path):
        path = tmp_path / "series.csv"
        toy_series().to_csv(path)
        assert path.read_text().startswith("experiment,seed,")


class TestModuleEntryPoint:
    def test_python_dash_m_repro_exp(self, tmp_path):
        """`python -m repro.exp` works as documented (subprocess level)."""
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.exp", "run", "selfcheck",
                "-p", "n=3", "--cache-dir", str(tmp_path / "cache"),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "[selfcheck] computed" in proc.stdout


class TestRunnerProducesExportableSeries:
    def test_sweep_to_csv_includes_cache_column(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = ExperimentSpec("selfcheck").sweep(n=[2, 3])
        Runner(cache=cache).sweep(sweep)
        series = Runner(cache=cache).sweep(sweep)
        rows = list(csv.reader(io.StringIO(series.to_csv())))
        assert [row[-1] for row in rows[1:]] == ["1", "1"]  # all cached
