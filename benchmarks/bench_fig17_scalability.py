"""Fig. 17: memory requirements and multi-PU / multi-chip scalability."""

from __future__ import annotations

from repro.exp import ExperimentSpec

SEQ_LEN = 8192  # the paper's Fig. 17 operating point


def test_fig17_scalability(benchmark, print_header, fresh_runner):
    spec = ExperimentSpec(
        "fig17", params={"seq_len": SEQ_LEN, "slc_rate": 0.2, "chips": (2, 4, 8)}
    )

    result = benchmark(lambda: fresh_runner.run(spec))

    print_header("Fig. 17 — memory requirements and throughput scalability (N=8192)")
    for name, demand in result["memory_demand"].items():
        print(
            f"{name:>12}: analog weights {demand['analog_bytes'] / 1e9:.2f} GB, "
            f"digital (KV+buffers) {demand['digital_bytes'] / 1e9:.2f} GB"
        )

    ratio = result["tensor_parallel_ratio"]
    print(f"\nGPT-2 tensor parallelism: 2 PUs/layer = {ratio:.2f}x (paper: 1.99x)")

    print(f"Llama3 minimum chips: {result['min_chips']} (paper: 2)")
    print(f"{'chips':>6} {'PUs/layer':>10} {'norm. throughput':>17} {'fits':>5}")
    for report in result["scaling_curve"]:
        print(
            f"{report['num_chips']:>6} {report['pus_per_layer']:>10} "
            f"{report['normalized_throughput']:>16.2f}x {str(report['fits']):>5}"
        )
    print("paper: quad 1.96x, octa 3.65x over dual (minor comm. degradation).")

    assert 1.9 < ratio <= 2.0
    assert result["min_chips"] == 2
    assert result["scaling_curve"][-1]["normalized_throughput"] > 3.0
