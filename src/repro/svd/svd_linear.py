"""Factored linear layer with trainable singular values.

:class:`SVDLinear` is the fine-tuning form of a decomposed static weight
(Algorithm 1 steps 2-3).  It keeps ``U``, ``σ`` and ``Vᵀ`` as separate
parameters so that:

- fine-tuning can redistribute information across ranks, and
- the gradient of the loss w.r.t. each singular value ``σ_i`` is directly
  observable — the quantity the paper uses to pick SLC-protected ranks
  (Algorithm 1 step 4, Fig. 11).
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Linear, Module
from repro.nn.tensor import Parameter, Tensor
from repro.svd.decompose import (
    SVDFactors,
    hard_threshold_rank,
    merge_sigma,
    svd_decompose,
    truncate_factors,
)

__all__ = ["SVDLinear"]


class SVDLinear(Module):
    """``y = ((x @ Vtᵀ) * σ) @ Uᵀ + b`` with U, σ, Vᵀ all trainable."""

    def __init__(
        self,
        u: np.ndarray,
        sigma: np.ndarray,
        vt: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        u = np.asarray(u, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        vt = np.asarray(vt, dtype=float)
        if u.ndim != 2 or vt.ndim != 2 or sigma.ndim != 1:
            raise ValueError("u and vt must be 2-D, sigma 1-D")
        if u.shape[1] != len(sigma) or vt.shape[0] != len(sigma):
            raise ValueError(
                f"rank mismatch: u {u.shape}, sigma {sigma.shape}, vt {vt.shape}"
            )
        self.in_features = vt.shape[1]
        self.out_features = u.shape[0]
        self.u = Parameter(u)
        self.sigma = Parameter(sigma)
        self.vt = Parameter(vt)
        self.bias = Parameter(bias) if bias is not None else None
        # Accumulated |dL/dσ| across fine-tuning steps (Algorithm 1 step 3).
        self.sigma_grad_accum = np.zeros_like(sigma)
        self._accum_steps = 0

    @property
    def rank(self) -> int:
        return len(self.sigma.data)

    # ------------------------------------------------------------------
    @classmethod
    def from_linear(cls, linear: Linear, rank: int | None = None) -> "SVDLinear":
        """Decompose a dense :class:`Linear`; default rank is the hard threshold."""
        weight = linear.weight.data
        if rank is None:
            rank = hard_threshold_rank(linear.out_features, linear.in_features)
        factors = truncate_factors(svd_decompose(weight), rank)
        bias = linear.bias.data.copy() if linear.bias is not None else None
        return cls(factors.u, factors.s, factors.vt, bias=bias)

    def forward(self, x: Tensor) -> Tensor:
        h = x @ self.vt.T
        h = h * self.sigma
        out = h @ self.u.T
        if self.bias is not None:
            out = out + self.bias
        return out

    # ------------------------------------------------------------------
    # Gradient bookkeeping for rank selection
    # ------------------------------------------------------------------
    def record_sigma_gradient(self) -> None:
        """Accumulate ``|dL/dσ|`` after a backward pass (call once per step)."""
        if self.sigma.grad is None:
            raise RuntimeError("record_sigma_gradient called before backward()")
        self.sigma_grad_accum += np.abs(self.sigma.grad)
        self._accum_steps += 1

    def mean_sigma_gradient(self) -> np.ndarray:
        """Average accumulated gradient magnitude per rank."""
        if self._accum_steps == 0:
            return np.zeros_like(self.sigma_grad_accum)
        return self.sigma_grad_accum / self._accum_steps

    def reset_sigma_gradient(self) -> None:
        self.sigma_grad_accum = np.zeros_like(self.sigma.data)
        self._accum_steps = 0

    # ------------------------------------------------------------------
    # Deployment views
    # ------------------------------------------------------------------
    def factors(self) -> SVDFactors:
        return SVDFactors(
            u=self.u.data.copy(), s=self.sigma.data.copy(), vt=self.vt.data.copy()
        )

    def merged_factors(self) -> tuple[np.ndarray, np.ndarray]:
        """Inference matrices ``A = Σ·Vt`` (k×in) and ``B = U`` (out×k)."""
        return merge_sigma(self.factors())

    def effective_weight(self) -> np.ndarray:
        """Dense weight currently represented: ``U diag(σ) Vᵀ``."""
        return (self.u.data * self.sigma.data) @ self.vt.data

    def __repr__(self) -> str:
        return (
            f"SVDLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank})"
        )
