"""CLI: list/run/sweep/list-cache round trips (``python -m repro.exp``)."""

from __future__ import annotations

import io
import json

import pytest

from repro.exp.cli import main


def invoke(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestList:
    def test_lists_registered_experiments(self):
        text = invoke("list")
        for name in ("fig02", "fig12", "fig13", "fig17", "selfcheck"):
            assert name in text


class TestRunRoundTrip:
    def test_run_then_list_cache_then_cached_rerun(self, tmp_path):
        cache_dir = str(tmp_path / "cache")

        first = invoke(
            "run", "selfcheck", "-p", "n=5", "--cache-dir", cache_dir
        )
        assert "computed" in first

        listing = invoke("list-cache", "--cache-dir", cache_dir)
        assert "selfcheck" in listing
        assert '{"n":5}' in listing

        second = invoke(
            "run", "selfcheck", "-p", "n=5", "--cache-dir", cache_dir
        )
        assert "cache" in second.splitlines()[0]
        # identical payload on replay
        assert first.splitlines()[1:] == second.splitlines()[1:]

    def test_run_writes_json(self, tmp_path):
        out_path = tmp_path / "result.json"
        invoke(
            "run", "selfcheck", "-p", "n=3",
            "--cache-dir", str(tmp_path / "cache"), "--json", str(out_path),
        )
        (payload,) = json.loads(out_path.read_text())
        assert payload["spec"]["experiment"] == "selfcheck"
        assert len(payload["value"]["values"]) == 3

    def test_smoke_merges_registered_params(self, tmp_path):
        text = invoke(
            "run", "selfcheck", "--smoke", "--cache-dir", str(tmp_path / "cache")
        )
        assert json.loads(text.split("\n", 1)[1])["n"] == 4

    def test_param_overrides_smoke(self, tmp_path):
        text = invoke(
            "run", "selfcheck", "--smoke", "-p", "n=7",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert json.loads(text.split("\n", 1)[1])["n"] == 7


class TestSweepRoundTrip:
    def test_sweep_with_explicit_grid(self, tmp_path):
        text = invoke(
            "sweep", "selfcheck", "-g", "n=2,3,4", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert "3 points" in text
        assert "3 computed" in text

    def test_sweep_uses_registered_default_grid(self, tmp_path):
        text = invoke("sweep", "selfcheck", "--cache-dir", str(tmp_path / "cache"))
        assert "2 points" in text  # registered grid: n in (4, 8)

    def test_sweep_cached_rerun_and_exports(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        invoke("sweep", "selfcheck", "-g", "n=2,3", "--cache-dir", cache_dir)
        text = invoke(
            "sweep", "selfcheck", "-g", "n=2,3", "--cache-dir", cache_dir,
            "--csv", str(csv_path), "--json", str(json_path),
        )
        assert "2 cached, 0 computed" in text
        rows = csv_path.read_text().strip().splitlines()
        assert len(rows) == 3  # header + 2 points
        assert rows[0].startswith("experiment,seed,n,")
        payloads = json.loads(json_path.read_text())
        assert [p["spec"]["params"]["n"] for p in payloads] == [2, 3]
        assert all(p["cached"] for p in payloads)

    def test_sweep_without_grid_errors_for_gridless_experiment(self, tmp_path):
        with pytest.raises(SystemExit, match="no default grid"):
            invoke("sweep", "fig17", "--cache-dir", str(tmp_path / "cache"))


class TestClearCache:
    def test_clear_cache_removes_entries(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        invoke("run", "selfcheck", "-p", "n=2", "--cache-dir", cache_dir)
        text = invoke("clear-cache", "--cache-dir", cache_dir)
        assert "removed 1" in text
        assert "cache empty" in invoke("list-cache", "--cache-dir", cache_dir)


class TestBadInput:
    def test_bad_param_syntax(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            invoke("run", "selfcheck", "-p", "n5", "--cache-dir", str(tmp_path))

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            invoke("run", "nope", "--cache-dir", str(tmp_path))
