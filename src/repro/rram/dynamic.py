"""Dynamic crossbar operands: runtime-written tensors in analog arrays.

Every :class:`~repro.rram.crossbar.ProgrammedMatrix` in the repo holds a
*static* operand — weights programmed once at deploy time.  This module
generalizes the execution model to a second operand class: a
:class:`DynamicOperand` is a crossbar-resident tensor that *grows at
runtime* through incremental row appends (KV-cache rows written as tokens
decode, streamed MoE expert slices, future NEON LUT banks), while staying
readable by the exact same GEMV kernels (:mod:`repro.rram.kernels`) that
serve static weights — no kernel code is forked.

The mechanics:

- the operand allocates one full-capacity tile up front (all cells at
  level 0) through :meth:`~repro.rram.backend.CrossbarBackend.program`;
- :meth:`DynamicOperand.append` bit-slices the incoming signed codes with
  the same offset encoding as static weights and writes them through
  :meth:`~repro.rram.backend.CrossbarBackend.program_region` — a partial
  write that costs only the appended cells' write pulses (recorded in the
  :class:`~repro.rram.endurance.WearLedger`'s dynamic channel) and bumps
  only the tile-local ``write_epoch``, leaving every *other* tile's cached
  planes (the static weights' ``stacked_planes``, the ``PlaneCache``) valid;
- GEMVs run against a zero-copy *view* of the valid region ``[0, length)``,
  which exposes the full programmed-matrix duck-type surface (planes,
  slices, ADC, saturation-freedom, stacked planes), so ``reference``,
  ``fast`` and fused ``gemm`` kernels all apply, including the exact
  noiseless shortcut when the valid region is provably saturation-free.

``grow`` selects the physical growth axis.  ``"wordlines"`` appends input
rows (the AV operand: attention probabilities stream over the wordlines,
values live in the cells); ``"bitlines"`` appends output columns (the QK^T
operand: the query streams over the wordlines, keys live in the cells).
"""

from __future__ import annotations

import numpy as np

from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.backend import CrossbarBackend, resolve_backend
from repro.rram.cell import MLC2, CellType
from repro.rram.crossbar import CrossbarConfig, GemvStats, WeightSlices, slice_weights
from repro.rram.kernels import KernelPolicy, resolve_policy, run_gemv

__all__ = ["DynamicOperand"]

_GROW_AXES = ("wordlines", "bitlines")


class _DynamicView:
    """Zero-copy view of a dynamic operand's valid region ``[0, length)``.

    Implements the duck-type surface the GEMV kernels consume from
    :class:`~repro.rram.crossbar.ProgrammedMatrix` (planes, slices, config,
    ADC, noiselessness, saturation-freedom, dense weights, stacked planes),
    so a dynamic operand is kernel-compatible without forking kernel code.
    Derived artifacts (saturation flag, dense weights, stacked planes) are
    cached on the owning operand, keyed by the backend epoch, the tile's
    ``write_epoch`` and the logical length — any append, reprogram or
    clock advance invalidates them.
    """

    def __init__(self, operand: DynamicOperand) -> None:
        self._op = operand
        self.config = operand.config
        self.adc = operand.adc
        length = operand.length
        if operand.grow == "wordlines":
            self.in_features = length
            self.out_features = operand.width
        else:
            self.in_features = operand.width
            self.out_features = length

    @property
    def slices(self) -> WeightSlices:
        """Bit-sliced levels of the valid region (same encoding as static)."""
        return WeightSlices(
            values=self._op._valid_levels(),
            cell=self._op.cell,
            weight_bits=self._op.weight_bits,
            offset=self._op.offset,
        )

    @property
    def planes(self) -> np.ndarray:
        """Effective cell planes of the valid region, ``(in, out, n_s)``."""
        return self._op._valid_region(self._op.backend.planes(self._op._tile))

    @property
    def is_noiseless(self) -> bool:
        """True when reads return the exact integer levels (ideal backend)."""
        return self._op.backend.is_ideal(self._op._tile)

    @property
    def saturation_free(self) -> bool:
        """True when no bitline of the valid region can reach ADC full scale.

        Computed over the *valid* cells only — appended rows change the
        worst-case column sums, so the flag is re-derived whenever the
        operand's cache key moves.
        """
        cached = self._op._cache_get("saturation_free")
        if cached is not None:
            return cached
        worst = 0
        rows = self.config.rows
        values = self._op._valid_levels()
        for row_start in range(0, self.in_features, rows):
            tile = values[row_start : row_start + rows]
            worst = max(worst, int(tile.sum(axis=0).max(initial=0)))
        free = worst < self.adc.full_scale
        self._op._cache_set("saturation_free", free)
        return free

    @property
    def dense_weights_t(self) -> np.ndarray:
        """``W.T`` of the valid region as float64 (the exact-shortcut operand)."""
        cached = self._op._cache_get("dense_weights_t")
        if cached is not None:
            return cached
        values = self._op._valid_levels()
        factors = WeightSlices(
            values=values,
            cell=self._op.cell,
            weight_bits=self._op.weight_bits,
            offset=self._op.offset,
        ).slice_factors
        dense = values.astype(np.float64) @ factors.astype(np.float64) - self._op.offset
        self._op._cache_set("dense_weights_t", dense)
        return dense

    def stacked_planes(self) -> np.ndarray:
        """Valid-region row tiles stacked for fused GEMM (see static twin)."""
        cached = self._op._cache_get("stacked_planes")
        if cached is not None:
            return cached
        rows = self.config.rows
        num_tiles = -(-self.in_features // rows)
        out_cols = self.out_features * self.slices.num_slices
        flat = np.asarray(self.planes, dtype=np.float64).reshape(
            self.in_features, out_cols
        )
        stacked = np.zeros((num_tiles * rows, out_cols), dtype=np.float64)
        stacked[: self.in_features] = flat
        stacked = np.ascontiguousarray(stacked.reshape(num_tiles, rows, out_cols))
        self._op._cache_set("stacked_planes", stacked)
        return stacked


class DynamicOperand:
    """A runtime-growable crossbar operand (append rows, GEMV the prefix).

    One full-capacity tile is allocated at construction (all cells at
    level 0 — the offset-encoded representation of *nothing yet written*;
    the unwritten region is never read because GEMVs run against the
    ``[0, length)`` view).  :meth:`append` writes signed integer code rows
    through the backend's partial-region primitive, :meth:`truncate`
    logically shrinks the operand without touching cells (compaction /
    row recycling), and :meth:`gemv` executes ``x @ W.T`` over the valid
    region with the standard kernel stack — noise, SAR-ADC quantization,
    saturation and op-count accounting included.

    Parameters
    ----------
    capacity:
        Maximum number of appendable rows (tokens, for a KV operand).
    width:
        The fixed operand dimension (``d_head``, for a KV operand).
    cell:
        RRAM cell type the operand's tile uses (default 2-bit MLC — the
        paper's dynamic-data storage class).
    grow:
        ``"wordlines"`` grows the GEMV *input* dimension (the AV operand),
        ``"bitlines"`` the *output* dimension (the QK^T operand).
    weight_bits:
        Signed code width of appended rows (default INT8).
    noise_sigma:
        Programming-noise σ applied to every appended cell (0 = ideal).
    rng:
        Generator for programming-noise draws (default: seeded from 0).
    config / policy / backend:
        Crossbar geometry, kernel policy and execution backend — same
        semantics as :class:`~repro.rram.crossbar.ProgrammedMatrix`.
    stats:
        :class:`~repro.rram.crossbar.GemvStats` instance write and read
        events accumulate into (shareable across operands).
    """

    def __init__(
        self,
        capacity: int,
        width: int,
        cell: CellType = MLC2,
        grow: str = "wordlines",
        weight_bits: int = 8,
        noise_sigma: float = 0.0,
        rng: np.random.Generator | None = None,
        config: CrossbarConfig | None = None,
        policy: KernelPolicy | None = None,
        backend: CrossbarBackend | None = None,
        stats: GemvStats | None = None,
    ) -> None:
        """Allocate the full-capacity zero-level tile on the backend."""
        if capacity < 1 or width < 1:
            raise ValueError("capacity and width must be positive")
        if grow not in _GROW_AXES:
            raise ValueError(f"grow must be one of {_GROW_AXES}, got {grow!r}")
        self.capacity = int(capacity)
        self.width = int(width)
        self.cell = cell
        self.grow = grow
        self.weight_bits = int(weight_bits)
        self.offset = 2 ** (self.weight_bits - 1)
        self.num_slices = -(-self.weight_bits // cell.bits)
        self.noise_sigma = float(noise_sigma)
        self.config = config or CrossbarConfig()
        self.policy = policy
        self.backend = resolve_backend(backend)
        self.stats = stats if stats is not None else GemvStats()
        if grow == "wordlines":
            shape = (self.capacity, self.width, self.num_slices)
        else:
            shape = (self.width, self.capacity, self.num_slices)
        self._tile = self.backend.program(
            np.zeros(shape, dtype=np.int64),
            cell,
            self.noise_sigma,
            rng or np.random.default_rng(0),
            resolve_policy(policy).storage_dtype,
        )
        self.adc = SarAdc(bits=required_adc_bits(self.config.rows, cell.bits))
        self.length = 0  # logical valid rows
        self.written = 0  # high watermark of physically written rows
        self._cache_key: tuple | None = None
        self._cache: dict = {}

    # -- derived-artifact cache (epoch / write_epoch / length keyed) --------
    def _current_key(self) -> tuple:
        return (self.backend.epoch, self._tile.write_epoch, self.length)

    def _cache_get(self, name: str):
        if self._cache_key != self._current_key():
            return None
        return self._cache.get(name)

    def _cache_set(self, name: str, value) -> None:
        key = self._current_key()
        if self._cache_key != key:
            self._cache = {}
            self._cache_key = key
        self._cache[name] = value

    # -- region selection ---------------------------------------------------
    def _valid_region(self, array: np.ndarray) -> np.ndarray:
        if self.grow == "wordlines":
            return array[: self.length]
        return array[:, : self.length, :]

    def _valid_levels(self) -> np.ndarray:
        return self._valid_region(self._tile.ideal_levels)

    # -- writes -------------------------------------------------------------
    def append(self, codes: np.ndarray, stats: GemvStats | None = None) -> int:
        """Append ``codes`` (``(t, width)`` signed ints) as ``t`` new rows.

        Rows land at logical positions ``[length, length + t)``: bit-sliced
        with the static-weight offset encoding, written through
        :meth:`~repro.rram.backend.CrossbarBackend.program_region` (wear
        ledger's dynamic channel, tile-local invalidation only), and
        accounted in ``stats`` — rows above the high watermark as
        ``cells_initial_programmed``, recycled rows (re-writes after a
        :meth:`truncate`) as ``cells_reprogrammed``.  Returns the new
        logical length.
        """
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        if codes.ndim != 2 or codes.shape[1] != self.width:
            raise ValueError(
                f"expected (t, {self.width}) codes, got shape {codes.shape}"
            )
        t = codes.shape[0]
        if t == 0:
            return self.length
        if self.length + t > self.capacity:
            raise ValueError(
                f"append of {t} rows exceeds capacity "
                f"{self.capacity} (length {self.length})"
            )
        if self.grow == "wordlines":
            # New input rows: values region is (t, width, n_s) = (in, out, n_s).
            values = slice_weights(codes.T, self.cell, self.weight_bits).values
            row_slice = slice(self.length, self.length + t)
            col_slice = slice(0, self.width)
        else:
            # New output columns: values region is (width, t, n_s).
            values = slice_weights(codes, self.cell, self.weight_bits).values
            row_slice = slice(0, self.width)
            col_slice = slice(self.length, self.length + t)
        self.backend.program_region(self._tile, row_slice, col_slice, values)
        cells_per_row = self.width * self.num_slices
        initial_rows = max(0, (self.length + t) - self.written)
        target = stats if stats is not None else self.stats
        target.cells_initial_programmed += initial_rows * cells_per_row
        target.cells_reprogrammed += (t - initial_rows) * cells_per_row
        self.length += t
        self.written = max(self.written, self.length)
        return self.length

    def truncate(self, length: int = 0) -> None:
        """Logically shrink the operand to ``length`` rows (no cell writes).

        Truncated rows keep their physical levels; a later :meth:`append`
        overwrites them (counted as re-programs).  ``length`` may not
        exceed the high watermark — extending past written rows would read
        unwritten cells.
        """
        if not 0 <= length <= self.written:
            raise ValueError(
                f"length must be in [0, {self.written}], got {length}"
            )
        self.length = int(length)

    # -- reads --------------------------------------------------------------
    def gemv(
        self,
        input_codes: np.ndarray,
        input_bits: int = 8,
        stats: GemvStats | None = None,
        policy: KernelPolicy | None = None,
    ) -> np.ndarray:
        """Bit-serial ``x @ W.T`` against the valid region (signed ints).

        ``x`` has ``length`` columns for a wordline-grown operand and
        ``width`` columns for a bitline-grown one; the result's trailing
        dimension is the other of the two.  Runs the standard kernel stack
        (``reference`` / ``fast`` / fused ``gemm`` by policy) against the
        region view, so noise, ADC clipping and op counts behave exactly
        as for static weights.
        """
        if self.length == 0:
            raise ValueError("cannot GEMV an empty dynamic operand")
        view = _DynamicView(self)
        input_codes = np.atleast_2d(np.asarray(input_codes, dtype=np.int64))
        if input_codes.shape[1] != view.in_features:
            raise ValueError(
                f"shape mismatch: inputs {input_codes.shape}, "
                f"operand ({view.out_features}, {view.in_features})"
            )
        offset_inputs = input_codes + 2 ** (input_bits - 1)
        if offset_inputs.min() < 0 or offset_inputs.max() >= 2**input_bits:
            raise ValueError(f"input codes exceed the signed {input_bits}-bit range")
        return run_gemv(
            view,
            input_codes,
            input_bits,
            stats=stats if stats is not None else self.stats,
            policy=policy if policy is not None else self.policy,
        )

    # -- health -------------------------------------------------------------
    @property
    def tile_id(self) -> int:
        """Backend tile identifier (the wear ledger's key)."""
        return self._tile.tile_id

    def wear_fraction(self) -> float:
        """Fraction of the operand tile's write endurance consumed so far."""
        return self.backend.wear_fraction(self._tile)
