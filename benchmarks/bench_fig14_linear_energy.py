"""Fig. 14: normalized linear-layer energy versus the baseline accelerators."""

from __future__ import annotations

from repro.arch import FIG14_SEQ_LENS, FIG14_SLC_RATES
from repro.exp import ExperimentSpec

PAPER_ANCHORS = {
    # N=128 values read off Fig. 14 (non-PIM = 100).
    128: {"hyflexpim@5%": 15.1, "asadi-dagger": 18.8, "asadi": 42.1, "nmp": 50.0, "sprint": 81.7},
    8192: {"hyflexpim@5%": 27.3, "asadi-dagger": 34.0, "asadi": 76.2, "nmp": 81.7, "sprint": 99.1},
}


def test_fig14_linear_layer_energy(benchmark, print_header, fresh_runner):
    spec = ExperimentSpec(
        "fig14",
        params={
            "model": "bert-large",
            "seq_lens": FIG14_SEQ_LENS,
            "slc_rates": FIG14_SLC_RATES,
        },
    )

    result = benchmark(lambda: fresh_runner.run(spec))
    columns = result["columns"]
    table = {
        n: dict(zip(columns, row))
        for n, row in zip(result["seq_lens"], result["rows"])
    }

    print_header("Fig. 14 — linear-layer energy normalized to non-PIM = 100 (BERT-Large)")
    print(f"{'N':>6} " + " ".join(f"{c:>14}" for c in columns))
    for n, row in table.items():
        print(f"{n:>6} " + " ".join(f"{row[c]:>14.1f}" for c in columns))

    print("\npaper vs measured (selected anchors):")
    for n, anchors in PAPER_ANCHORS.items():
        for key, paper_value in anchors.items():
            print(f"  N={n:<5} {key:>14}: paper {paper_value:>5.1f} | measured {table[n][key]:>5.1f}")

    for n, row in table.items():
        assert row["hyflexpim@5%"] < row["asadi-dagger"] < row["asadi"]
        assert row["asadi"] < row["nmp"] < row["sprint"] < row["non-pim"]
