"""Architecture-level comparison against the Section 5.3 baselines.

Regenerates, at paper scale (BERT-Large / GPT-2 / Llama3 dimensions), the
analytic results behind Figs. 14-17: linear-layer energy, end-to-end energy
improvement, throughput speedups and multi-chip scalability — all from
Table 2-derived component energies.

Run:  python examples/accelerator_comparison.py
"""

from __future__ import annotations

from repro.arch import PerformanceComparison, ScalabilityModel, area_report
from repro.models import paper_model


def main() -> None:
    comparison = PerformanceComparison()
    bert = paper_model("bert-large")
    gpt2 = paper_model("gpt2")
    llama = paper_model("llama3-1b")

    print("== Hardware roll-up (Table 2) ==")
    report = area_report()
    print(f"analog module {report.analog_module_mm2:.2f} mm^2 / {report.analog_module_mw:.0f} mW")
    print(f"digital module {report.digital_module_mm2:.2f} mm^2 / {report.digital_module_mw:.0f} mW")
    print(f"processing unit {report.pu_mm2:.1f} mm^2; chip {report.chip_mm2:.0f} mm^2 (65 nm)")

    print("\n== Linear-layer energy, normalized to non-PIM=100 (Fig. 14) ==")
    table = comparison.linear_energy_table(bert, seq_lens=(128, 1024, 8192), slc_rates=(0.05, 0.5))
    header = None
    for n, row in table.items():
        if header is None:
            header = list(row)
            print(f"{'N':>6} " + " ".join(f"{h:>14}" for h in header))
        print(f"{n:>6} " + " ".join(f"{row[h]:>14.1f}" for h in header))

    print("\n== End-to-end energy improvement over baselines (Fig. 15) ==")
    for spec, rate in ((bert, 0.05), (gpt2, 0.30)):
        for n in (128, 512, 1024):
            improvement = comparison.energy_improvement(spec, n, rate)
            row = ", ".join(f"{k} {v:.2f}x" for k, v in improvement.items())
            print(f"{spec.name} N={n} @{int(rate*100)}% SLC: {row}")

    print("\n== Energy breakdown at N=1024 (Fig. 15b) ==")
    shares = comparison.end_to_end_energy(bert, 1024, 0.05).shares()
    for category, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"  {category:>20}: {share * 100:5.1f}%")

    print("\n== Speedups (Fig. 16) ==")
    prefill = comparison.speedup_table(bert, seq_lens=(128, 1024), slc_rates=(0.05, 0.2, 0.5))
    for name, per_n in prefill.items():
        for n, rates in per_n.items():
            row = ", ".join(f"{int(r*100)}%:{v:.2f}x" for r, v in rates.items())
            print(f"  vs {name} (BERT-Large prefill, N={n}): {row}")
    decode = comparison.speedup_table(gpt2, seq_lens=(1024,), slc_rates=(0.2,), mode="decode")
    print(f"  vs sprint (GPT-2 decode, N=1024, 20% SLC): {decode['sprint'][1024][0.2]:.1f}x")

    print("\n== Scalability (Fig. 17) ==")
    scaling = ScalabilityModel()
    one = scaling.throughput(gpt2, 8192, 0.2, 1, pus_per_layer=1)
    two = scaling.throughput(gpt2, 8192, 0.2, 1, pus_per_layer=2)
    print(f"GPT-2: 2 PUs/layer gives {two.tokens_per_second / one.tokens_per_second:.2f}x (paper: 1.99x)")
    print(f"Llama3 minimum chips: {scaling.min_chips(llama, 0.2, 8192)} (paper: 2)")
    for report in scaling.scaling_curve(llama, 8192, 0.2, (2, 4, 8)):
        print(
            f"  Llama3 x{report.num_chips} chips: {report.normalized_throughput:.2f}x vs dual, "
            f"weights {report.analog_demand_gb:.2f} GB, KV {report.digital_demand_gb:.2f} GB, "
            f"fits={report.fits}"
        )


if __name__ == "__main__":
    main()
