"""Small shared utilities with no dependencies on other repro subpackages."""

from repro.utils.parallel import map_with_pool

__all__ = ["map_with_pool"]
