"""INT8 quantization substrate (paper Section 5.1)."""

from repro.quant.quantizer import (
    QuantParams,
    bits_to_int,
    dequantize,
    fake_quantize,
    int_to_bit_planes,
    int_to_bits,
    offset_decode,
    offset_encode,
    quantize,
)

__all__ = [
    "QuantParams",
    "bits_to_int",
    "dequantize",
    "fake_quantize",
    "int_to_bit_planes",
    "int_to_bits",
    "offset_decode",
    "offset_encode",
    "quantize",
]
