"""Specs: canonical hashing, grid expansion, deterministic seed derivation."""

from __future__ import annotations

import pytest

from repro.exp import ExperimentSpec, SweepSpec, canonical_json, derive_seed


class TestCanonicalJson:
    def test_key_order_is_normalized(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_and_lists_encode_identically(self):
        assert canonical_json({"r": (1, 2)}) == canonical_json({"r": [1, 2]})

    def test_nested_structures(self):
        text = canonical_json({"outer": {"z": (1,), "a": 2}})
        assert text == '{"outer":{"a":2,"z":[1]}}'


class TestSeedDerivation:
    def test_deterministic(self):
        params = {"workload": "sst2", "rates": (0.0, 1.0)}
        assert derive_seed(0, params) == derive_seed(0, params)

    def test_changes_with_base_seed(self):
        params = {"workload": "sst2"}
        assert derive_seed(0, params) != derive_seed(1, params)

    def test_changes_with_params(self):
        assert derive_seed(0, {"workload": "sst2"}) != derive_seed(0, {"workload": "mrpc"})

    def test_independent_of_param_order(self):
        assert derive_seed(7, {"a": 1, "b": 2}) == derive_seed(7, {"b": 2, "a": 1})


class TestExperimentSpec:
    def test_content_key_stable(self):
        spec = ExperimentSpec("fig12", params={"workload": "sst2"}, seed=3)
        again = ExperimentSpec("fig12", params={"workload": "sst2"}, seed=3)
        assert spec.content_key("v1") == again.content_key("v1")

    def test_content_key_varies_with_code_version(self):
        spec = ExperimentSpec("fig12", params={"workload": "sst2"})
        assert spec.content_key("v1") != spec.content_key("v2")

    def test_content_key_varies_with_params(self):
        a = ExperimentSpec("fig12", params={"workload": "sst2"})
        b = ExperimentSpec("fig12", params={"workload": "mrpc"})
        assert a.content_key() != b.content_key()

    def test_with_params_merges(self):
        spec = ExperimentSpec("fig12", params={"workload": "sst2", "epochs": 5})
        merged = spec.with_params(epochs=1)
        assert merged.params == {"workload": "sst2", "epochs": 1}
        assert spec.params["epochs"] == 5  # original untouched

    def test_roundtrip_dict(self):
        spec = ExperimentSpec("fig13", params={"task": "cola"}, seed=9, tags=("ci",))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


class TestSweepSpec:
    def test_points_cartesian_product(self):
        sweep = SweepSpec(
            experiment="selfcheck", grid={"n": (2, 3), "scale": (1.0, 2.0)}
        )
        assert len(sweep) == 4
        combos = {(p.params["n"], p.params["scale"]) for p in sweep.points()}
        assert combos == {(2, 1.0), (2, 2.0), (3, 1.0), (3, 2.0)}

    def test_points_deterministic_order(self):
        sweep = SweepSpec(experiment="selfcheck", grid={"n": (4, 2, 3)})
        assert [p.params["n"] for p in sweep.points()] == [4, 2, 3]
        assert [p.params["n"] for p in sweep.points()] == [4, 2, 3]

    def test_base_params_applied_to_every_point(self):
        sweep = ExperimentSpec("selfcheck", params={"scale": 3.0}).sweep(n=[1, 2])
        assert all(p.params["scale"] == 3.0 for p in sweep.points())

    def test_grid_overrides_base(self):
        sweep = SweepSpec(
            experiment="selfcheck", grid={"n": (5,)}, base={"n": 1, "scale": 2.0}
        )
        (point,) = sweep.points()
        assert point.params == {"n": 5, "scale": 2.0}

    def test_each_point_gets_distinct_seed(self):
        sweep = SweepSpec(experiment="selfcheck", grid={"n": (1, 2, 3)}, seed=0)
        seeds = [p.point_seed() for p in sweep.points()]
        assert len(set(seeds)) == 3


@pytest.mark.parametrize("seed", [0, 1, 12345])
def test_point_seed_matches_derive_seed(seed):
    spec = ExperimentSpec("fig12", params={"workload": "vit"}, seed=seed)
    assert spec.point_seed() == derive_seed(seed, {"workload": "vit"})
