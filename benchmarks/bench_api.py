"""Scale-out serving benchmark: replica pool, streaming API, pipelined decode.

Measures the PR-10 serving tier end to end: ``ReplicaPool`` tokens/s at
1/2/4 worker processes, client-observed p50/p99 TTFT and end-to-end
latency of the ``ApiServer`` SSE endpoint under open-loop Poisson load
(arrival rates calibrated to measured capacity), the stage-pipelined
executor vs the sequential decode path (token-equality checked inside the
study), and measured-vs-``HardwareProjection`` replica-scaling agreement.

The payload is written to ``BENCH_api.json`` at the repo root — uploaded
as a CI artifact and gated.  All perf gates are **capacity-aware**: the
payload records the host's scheduler-affinity CPU count, and the full
thresholds (4-replica pool >= 2.5x one replica; pipelined >= 1.2x
sequential) only apply when the host has enough cores to express the
parallelism.  Constrained hosts (the 1-CPU container this repo grows in)
get no-collapse bounds instead — scale-out must never lose badly to the
single-engine baseline just because the host can't run it concurrently.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_api.json"


def _gates(value: dict, smoke: bool) -> dict:
    """Capacity-aware gate thresholds, recorded alongside the assertions."""
    cpus = int(value["cpus"])
    grid = value["replica_scaling"]["grid"]
    top = grid[-1]
    replicas = int(top["replicas"])
    # 2.5x at the 4-replica point when the host can actually run 4 workers;
    # scaled pro-rata for a shrunken (smoke) grid; no-collapse otherwise.
    pool_min = 0.625 * replicas if cpus >= replicas else 0.45
    # The pipelined executor needs >= 2 cores for real overlap; on fewer it
    # degrades to interleaved sequential execution plus queue overhead, and
    # in smoke mode the per-step work is too small to amortize the queues
    # anywhere.  0.2 is the no-collapse floor.
    pipe_min = 1.2 if (cpus >= 2 and not smoke) else 0.2
    return {
        "cpus": cpus,
        "replicas_gated": replicas,
        "pool_speedup_min": round(pool_min, 3),
        "pipelined_speedup_min": pipe_min,
        "p99_ttft_max_s": 1.0,
        "projection_headroom": 1.1,
    }


def test_bench_api(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = (
        {
            "replicas": (1, 2),
            "pool_requests": 6,
            "api_requests": 6,
            "pipeline_requests": 6,
            "utilizations": (0.5,),
            "new_tokens": 8,
        }
        if smoke
        else {}
    )
    spec = ExperimentSpec("bench_api", params=params)

    result = benchmark.pedantic(lambda: fresh_runner.run(spec), rounds=1, iterations=1)
    value = result.value

    print_header("Scale-out serving benchmark — replica pool, streaming API, pipelined decode")
    print(f"host cpus: {value['cpus']}")
    scaling = value["replica_scaling"]
    print(
        f"\nreplica pool ({scaling['num_requests']} requests, "
        f"prompt {scaling['prompt_len']}, new {scaling['new_tokens']}):"
    )
    print(f"{'replicas':>8} {'tok/s':>8} {'speedup':>8}")
    for row in scaling["grid"]:
        print(f"{row['replicas']:>8} {row['tok_s']:>8.0f} {row['speedup']:>7.2f}x")

    api = value["api_streaming"]
    print(
        f"\nopen-loop Poisson vs ApiServer SSE "
        f"(measured capacity {api['capacity_tok_s']:.0f} tok/s):"
    )
    print(
        f"{'util':>5} {'rate/s':>7} {'done':>5} {'p50 TTFT':>9} {'p99 TTFT':>9} "
        f"{'p50 e2e':>9} {'p99 e2e':>9}"
    )
    for row in api["sweep"]:
        print(
            f"{row['utilization']:>5.2f} {row['rate_per_s']:>7.1f} {row['completed']:>5} "
            f"{row['p50_ttft_s'] * 1e3:>8.1f}ms {row['p99_ttft_s'] * 1e3:>8.1f}ms "
            f"{row['p50_latency_s'] * 1e3:>8.1f}ms {row['p99_latency_s'] * 1e3:>8.1f}ms"
        )

    pipe = value["pipelined"]
    print(
        f"\npipelined ({pipe['stages']} stages) vs sequential: "
        f"{pipe['pipelined']['tok_s']:.0f} vs {pipe['sequential']['tok_s']:.0f} tok/s "
        f"({pipe['speedup']}x, bitwise_equal={pipe['bitwise_equal']})"
    )
    projection = value["projection"]
    print("\nmeasured vs projected replica scaling (replication case 2):")
    for row in projection["scaling"]:
        print(
            f"  {row['replicas']} replicas: measured {row['measured_speedup']}x, "
            f"projected {row['projected_speedup']}x, efficiency {row['efficiency']}"
        )

    gates = _gates(value, smoke)
    value["gates"] = gates
    print(f"\ngates: {gates}")

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_api.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Capacity-aware perf gates (PR-10 acceptance criteria).
    top = scaling["grid"][-1]
    assert top["speedup"] >= gates["pool_speedup_min"], (top, gates)
    assert pipe["bitwise_equal"], pipe
    assert pipe["speedup"] >= gates["pipelined_speedup_min"], (pipe, gates)
    # Bounded p99 TTFT in the under-capacity (0.5 utilization) regime, and
    # nothing rejected there (queue depth never approaches the bound).
    low = api["sweep"][0]
    assert low["p99_ttft_s"] <= gates["p99_ttft_max_s"], low
    assert low["completed"] == api["num_requests"], low
    # Measured replication never beats the ideal hardware projection.
    for row in projection["scaling"]:
        assert row["measured_speedup"] <= row["projected_speedup"] * gates["projection_headroom"], row
        assert row["efficiency"] > 0, row
