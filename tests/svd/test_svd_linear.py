"""Tests for the factored SVDLinear layer and its gradient bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Tensor
from repro.svd import SVDLinear, hard_threshold_rank


class TestConstruction:
    def test_from_linear_full_rank_matches_dense(self, rng):
        linear = Linear(6, 4, rng=rng)
        svd = SVDLinear.from_linear(linear, rank=4)
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            svd(Tensor(x)).data, linear(Tensor(x)).data, atol=1e-10
        )

    def test_default_rank_is_hard_threshold(self, rng):
        linear = Linear(16, 8, rng=rng)
        svd = SVDLinear.from_linear(linear)
        assert svd.rank == hard_threshold_rank(8, 16)

    def test_preserves_bias(self, rng):
        linear = Linear(5, 3, rng=rng)
        linear.bias.data = np.array([1.0, 2.0, 3.0])
        svd = SVDLinear.from_linear(linear, rank=3)
        np.testing.assert_allclose(svd.bias.data, [1.0, 2.0, 3.0])

    def test_no_bias_supported(self, rng):
        linear = Linear(5, 3, bias=False, rng=rng)
        svd = SVDLinear.from_linear(linear, rank=2)
        assert svd.bias is None
        out = svd(Tensor(rng.normal(size=(2, 5))))
        assert out.shape == (2, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SVDLinear(np.zeros((4, 3)), np.zeros(2), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            SVDLinear(np.zeros((4, 3)), np.zeros((3, 1)), np.zeros((3, 5)))

    def test_truncated_output_close_for_lowrank_weight(self, rng):
        # If the true weight is rank-2, a rank-2 SVDLinear is lossless.
        linear = Linear(8, 6, bias=False, rng=rng)
        linear.weight.data = rng.normal(size=(6, 2)) @ rng.normal(size=(2, 8))
        svd = SVDLinear.from_linear(linear, rank=2)
        x = rng.normal(size=(4, 8))
        np.testing.assert_allclose(svd(Tensor(x)).data, linear(Tensor(x)).data, atol=1e-9)


class TestGradients:
    def test_sigma_gradient_matches_analytic(self, rng):
        """dL/dsigma_i = sum_batch (x@v_i) * (dL/dy @ u_i) for L = sum(y)."""
        linear = Linear(5, 4, bias=False, rng=rng)
        svd = SVDLinear.from_linear(linear, rank=3)
        x = rng.normal(size=(7, 5))
        svd(Tensor(x)).sum().backward()
        # For L = sum(y): dL/dy = 1, so dL/dsigma_i = sum(x @ v_i) * sum(u_i).
        expected = (x @ svd.vt.data.T).sum(axis=0) * svd.u.data.sum(axis=0)
        np.testing.assert_allclose(svd.sigma.grad, expected, atol=1e-9)

    def test_record_requires_backward(self, rng):
        svd = SVDLinear.from_linear(Linear(4, 4, rng=rng), rank=2)
        with pytest.raises(RuntimeError):
            svd.record_sigma_gradient()

    def test_accumulation_and_mean(self, rng):
        svd = SVDLinear.from_linear(Linear(4, 4, rng=rng), rank=2)
        for _ in range(3):
            svd.zero_grad()
            svd(Tensor(rng.normal(size=(2, 4)))).sum().backward()
            svd.record_sigma_gradient()
        mean = svd.mean_sigma_gradient()
        assert mean.shape == (2,)
        assert (mean >= 0).all()
        svd.reset_sigma_gradient()
        np.testing.assert_allclose(svd.mean_sigma_gradient(), np.zeros(2))

    def test_all_factors_are_trainable(self, rng):
        svd = SVDLinear.from_linear(Linear(4, 4, rng=rng), rank=3)
        names = [name for name, _ in svd.named_parameters()]
        assert {"u", "sigma", "vt", "bias"} <= set(names)
        svd(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        assert svd.u.grad is not None
        assert svd.vt.grad is not None
        assert svd.sigma.grad is not None


class TestDeploymentViews:
    def test_merged_factors_compose_to_effective_weight(self, rng):
        svd = SVDLinear.from_linear(Linear(6, 5, rng=rng), rank=3)
        a, b = svd.merged_factors()
        np.testing.assert_allclose(b @ a, svd.effective_weight(), atol=1e-12)

    def test_effective_weight_drifts_after_update(self, rng):
        from repro.nn import AdamW

        svd = SVDLinear.from_linear(Linear(4, 4, rng=rng), rank=2)
        before = svd.effective_weight()
        svd(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        AdamW(list(svd.parameters()), lr=1e-2).step()
        after = svd.effective_weight()
        assert not np.allclose(before, after)

    def test_factors_return_copies(self, rng):
        svd = SVDLinear.from_linear(Linear(4, 4, rng=rng), rank=2)
        factors = svd.factors()
        factors.s[:] = 0.0
        assert svd.sigma.data.max() > 0
