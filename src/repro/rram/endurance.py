"""RRAM endurance / lifetime model (Section 5.2's sustainability argument).

Analog arrays hold *static* weights — programmed once per deployment — so
they are endurance-free.  Digital PIM arrays absorb the real-time Q/K/V and
intermediate writes; the paper argues that with ~10 K daily inference
requests, typical endurance of 1e8 cycles, and HyFlexPIM's large digital
capacity, wear-out exceeds server lifetimes (3-5 years).  This module makes
that argument computable (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rram.cell import RramDeviceParams

__all__ = ["EnduranceModel", "WearReport"]

_DAYS_PER_YEAR = 365.25


@dataclass
class WearReport:
    """Computed wear statistics for a digital PIM deployment."""

    writes_per_cell_per_day: float
    lifetime_years: float
    sustains_server_lifetime: bool


@dataclass
class EnduranceModel:
    """Wear-levelled endurance estimate for the digital PIM storage.

    Parameters
    ----------
    capacity_bytes:
        Total digital RRAM capacity available for intermediate data.
    endurance_cycles:
        Per-cell write endurance (default: 1e8, Grossi et al.).
    server_lifetime_years:
        Threshold the deployment must outlive (paper: 3-5 years; we use 5).
    """

    capacity_bytes: int
    endurance_cycles: float = RramDeviceParams().endurance_cycles
    server_lifetime_years: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")

    def report(
        self, bytes_written_per_inference: float, inferences_per_day: float
    ) -> WearReport:
        """Lifetime under uniform wear levelling across the capacity."""
        if bytes_written_per_inference < 0 or inferences_per_day < 0:
            raise ValueError("write volume and request rate must be non-negative")
        daily_bytes = bytes_written_per_inference * inferences_per_day
        writes_per_cell_per_day = daily_bytes / self.capacity_bytes
        if writes_per_cell_per_day == 0:
            lifetime = float("inf")
        else:
            lifetime = self.endurance_cycles / writes_per_cell_per_day / _DAYS_PER_YEAR
        return WearReport(
            writes_per_cell_per_day=writes_per_cell_per_day,
            lifetime_years=lifetime,
            sustains_server_lifetime=lifetime >= self.server_lifetime_years,
        )
