"""Hardware-projected timing for a sharded deployment.

Bridges the functional serving path and the analytic models: where
:class:`~repro.arch.scaling.ScalabilityModel` projects throughput from a
paper :class:`~repro.models.configs.ModelSpec` and *analytic* array demand,
:class:`HardwareProjection` projects the same quantities from the **actual
deployed geometry** — the arrays the mapper really placed, the PUs the
:class:`~repro.dist.plan.ShardPlan` really assigned, and the interconnect
links the plan really exercises.  ``bench_shard`` cross-checks the two.

Model (matching :class:`~repro.arch.latency.HyFlexPimLatencyModel`):

- One layer advances in ``GEMV_STAGES_PER_LAYER`` dependent analog waves of
  ``(input_bits + 1) x 100 ns``; tensor parallelism adds the OCI
  partial-sum aggregation to every layer's stage window, pipeline
  parallelism adds one PCIe-6.0 hidden-vector handoff per chip boundary
  (amortized per block in the steady-state rate, charged in full in the
  serial fill latency).
- Weights are stationary, so steady-state throughput is *concurrency over
  stage time*: spare capacity on the assigned PUs hosts replicated token
  pipelines (paper case 2), giving ``concurrency = assigned arrays /
  deployed arrays``.
- Per-request projected latency is ``serial fill + (tokens - 1) / rate`` —
  the position the repo's latency model already takes for generation
  ("concurrent streams keep the pipeline full",
  :meth:`~repro.arch.latency.HyFlexPimLatencyModel.inference_time_s`).
"""

from __future__ import annotations

from repro.arch.interconnect import (
    hidden_vector_handoff_cycles,
    partial_sum_aggregation_cycles,
)
from repro.arch.latency import GEMV_STAGES_PER_LAYER
from repro.dist.plan import ShardPlan

__all__ = ["HardwareProjection"]


class HardwareProjection:
    """Projected compute/transfer timing for one :class:`ShardPlan`.

    ``hidden_dim`` sizes the pipeline handoff (one INT8 hidden vector per
    chip boundary per token); pass the served model's ``d_model``.
    """

    def __init__(self, plan: ShardPlan, hidden_dim: int) -> None:
        if hidden_dim < 1:
            raise ValueError(f"hidden_dim must be >= 1, got {hidden_dim}")
        self.plan = plan
        self.hidden_dim = hidden_dim
        self.hardware = plan.mesh.hardware

    # ------------------------------------------------------------------
    # Stage timing
    # ------------------------------------------------------------------
    def gemv_wave_s(self) -> float:
        """Seconds for one bit-serial GEMV wave across an array."""
        hw = self.hardware
        return (hw.input_bits + 1) * hw.conversion_window_ns * 1e-9

    def oci_aggregation_s(self) -> float:
        """Per-layer partial-sum aggregation cost of tensor parallelism."""
        shards = self.plan.tensor_parallel
        if shards < 2:
            return 0.0
        clock = self.hardware.clock_hz
        return partial_sum_aggregation_cycles(shards, clock_hz=clock) / clock

    def handoff_s(self) -> float:
        """One hidden-vector chip-to-chip handoff (per boundary, per token)."""
        clock = self.hardware.clock_hz
        return hidden_vector_handoff_cycles(self.hidden_dim, clock_hz=clock) / clock

    def block_stage_s(self) -> float:
        """Steady-state stage window of one Transformer block.

        The amortized pipeline handoff follows
        :meth:`~repro.arch.scaling.ScalabilityModel.throughput`: with
        ``layers_per_chip`` blocks per chip, each block's window carries
        ``1 / layers_per_chip`` of a handoff.
        """
        stage = GEMV_STAGES_PER_LAYER * self.gemv_wave_s() + self.oci_aggregation_s()
        boundaries = self.plan.pipeline_boundaries
        if boundaries:
            layers_per_chip = max(
                1, -(-self.plan.num_blocks // (boundaries + 1))
            )
            stage += self.handoff_s() / layers_per_chip
        return stage

    # ------------------------------------------------------------------
    # Rates and latencies
    # ------------------------------------------------------------------
    def concurrency(self) -> float:
        """Token pipelines the assigned PUs sustain (weights-stationary).

        Spare arrays on the assigned PUs replicate layer pipelines (paper
        case 2), exactly as in the Fig. 17 scalability model — but measured
        against the arrays the mapper *actually placed*, not the analytic
        demand.
        """
        assigned = self.plan.pus_assigned() * self.plan.mesh.arrays_per_pu()
        demand = max(1, self.plan.arrays_used)
        return max(1.0, assigned / demand)

    def pipeline_rate_tokens_per_s(self) -> float:
        """Steady-state projected tokens/s of the deployed, sharded model."""
        return self.concurrency() / self.block_stage_s()

    def serial_token_latency_s(self) -> float:
        """One token's fill latency through every block and every boundary."""
        per_block = GEMV_STAGES_PER_LAYER * self.gemv_wave_s() + self.oci_aggregation_s()
        return (
            max(1, self.plan.num_blocks) * per_block
            + self.plan.pipeline_boundaries * self.handoff_s()
        )

    def request_latency_s(self, prompt_len: int, new_tokens: int) -> float:
        """Hardware-projected end-to-end latency of one request.

        Serial fill for the first position, then every remaining prompt and
        generated position at the steady-state rate.
        """
        if prompt_len < 0 or new_tokens < 0:
            raise ValueError("prompt_len and new_tokens must be non-negative")
        positions = prompt_len + new_tokens
        if positions == 0:
            return 0.0
        rate = self.pipeline_rate_tokens_per_s()
        return self.serial_token_latency_s() + (positions - 1) / rate

    def request_busy_s(self, prompt_len: int, new_tokens: int) -> float:
        """This request's share of projected pipeline occupancy (throughput
        accounting: shares over concurrent requests sum to total busy time)."""
        return (prompt_len + new_tokens) / self.pipeline_rate_tokens_per_s()

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Plan shape, projected rate and exercised-link traffic."""
        mesh = self.plan.mesh
        return {
            "plan": self.plan.describe(),
            "concurrency": round(self.concurrency(), 3),
            "block_stage_us": round(self.block_stage_s() * 1e6, 4),
            "serial_token_latency_us": round(self.serial_token_latency_s() * 1e6, 4),
            "pipeline_rate_tokens_per_s": round(self.pipeline_rate_tokens_per_s(), 1),
            "traffic": mesh.traffic_report(),
            "transfer_seconds": mesh.transfer_seconds(),
        }
