"""Public API: compile a Transformer for HyFlexPIM and evaluate it.

The full workflow of the paper in four calls:

>>> from repro.core import HyFlexPim
>>> hfp = HyFlexPim(protect_fraction=0.1)
>>> compiled = hfp.compile(model, task.train, task_type="classification")
>>> deployed = hfp.deploy(compiled)           # hybrid SLC/MLC inference form
>>> score = hfp.evaluate(deployed, task.test, metric="accuracy")

``compile`` runs Algorithm 1 (SVD -> hard-threshold truncation -> fine-tune
-> gradient-based rank selection) on the host; ``deploy`` swaps the factored
layers for noisy hybrid PIM layers; ``evaluate`` scores the deployed model.
:meth:`HyFlexPim.protection_sweep` regenerates the Fig. 12/13 accuracy-vs-
SLC-rate curves.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.eval.metrics import metric_for_task
from repro.nn.data import ArrayDataset
from repro.nn.modules import Module
from repro.pim.hybrid import attach_hybrid_layers
from repro.rram.cell import CellType, MLC2
from repro.rram.kernels import KernelPolicy
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.svd.pipeline import GradientRedistributionPipeline, RedistributionPlan
from repro.svd.selection import (
    select_ranks_by_gradient,
    select_ranks_by_rank,
)
from repro.utils.parallel import map_with_pool

__all__ = ["CompiledModel", "HyFlexPim"]


@dataclass
class CompiledModel:
    """Output of :meth:`HyFlexPim.compile`: fine-tuned model + mapping plan."""

    model: Module
    plan: RedistributionPlan
    task_type: str

    def with_protection(self, protect_fraction: float, policy: str = "gradient") -> "CompiledModel":
        """Re-derive the SLC/MLC split at a new rate without re-fine-tuning.

        The expensive part of Algorithm 1 (SVD + fine-tuning) is rate
        independent; only step 5 (mask selection) changes — so sweeping the
        protection rate (Fig. 12) reuses one compilation.
        """
        new_plan = copy.deepcopy(self.plan)
        new_plan.protect_fraction = protect_fraction
        new_plan.policy = policy
        for layer in new_plan.layers.values():
            if policy == "gradient":
                layer.protected_ranks = select_ranks_by_gradient(
                    layer.sigma_gradients, protect_fraction
                )
            elif policy == "rank":
                sigma_proxy = np.linalg.norm(layer.a_matrix, axis=1)
                layer.protected_ranks = select_ranks_by_rank(sigma_proxy, protect_fraction)
            else:
                raise ValueError(f"unknown policy {policy!r}")
        return CompiledModel(model=self.model, plan=new_plan, task_type=self.task_type)


@dataclass
class HyFlexPim:
    """Facade over the compile -> deploy -> evaluate workflow."""

    protect_fraction: float = 0.1
    policy: str = "gradient"
    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-3
    noise: NoiseSpec = field(default_factory=lambda: DEFAULT_NOISE)
    mlc_cell: CellType = MLC2
    mode: str = "fast"  # "fast" (Eq. 5 weight noise) or "crossbar" (bit-serial)
    # Crossbar-mode GEMV kernel selection; None uses the process-wide default
    # (see repro.rram.kernels).
    kernel_policy: KernelPolicy | None = None
    # Tensor precision for the compile-time fine-tuning loop ("float32" /
    # "float64"; None leaves the process-wide nn.tensor default untouched).
    train_dtype: str | None = None
    seed: int = 0

    # ------------------------------------------------------------------
    def compile(
        self,
        model: Module,
        train_data: ArrayDataset,
        task_type: str,
        rank: int | None = None,
    ) -> CompiledModel:
        """Run Algorithm 1 on ``model`` (mutates it to the factored form)."""
        pipeline = GradientRedistributionPipeline(
            protect_fraction=self.protect_fraction,
            policy=self.policy,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            rng=np.random.default_rng(self.seed),
            compute_dtype=self.train_dtype,
        )
        plan = pipeline.run(model, train_data, task_type=task_type, rank=rank)
        return CompiledModel(model=model, plan=plan, task_type=task_type)

    def deploy(
        self,
        compiled: CompiledModel,
        noise: NoiseSpec | None = None,
        mode: str | None = None,
    ) -> Module:
        """Instantiate the hybrid SLC/MLC inference model (a deep copy)."""
        deployed = copy.deepcopy(compiled.model)
        attach_hybrid_layers(
            deployed,
            compiled.plan.layers,
            noise=noise or self.noise,
            mode=mode or self.mode,
            mlc_cell=self.mlc_cell,
            seed=self.seed,
            policy=self.kernel_policy,
        )
        return deployed

    def evaluate(
        self,
        deployed: Module,
        test_data: ArrayDataset,
        task_type: str,
        metric: str = "accuracy",
    ) -> float:
        """Score a deployed model on held-out data."""
        evaluator = metric_for_task(task_type, metric)
        return evaluator(deployed, test_data)

    # ------------------------------------------------------------------
    def protection_sweep(
        self,
        compiled: CompiledModel,
        test_data: ArrayDataset,
        rates: tuple[float, ...],
        metric: str = "accuracy",
        policy: str | None = None,
        workers: int = 0,
    ) -> dict[float, float]:
        """Metric vs SLC protection rate — the Fig. 12/13 experiment.

        ``workers > 1`` fans the rate points out over a process pool.  Each
        point re-derives its mask, deployment noise and score from the spec
        alone (the per-layer RNG is seeded by ``self.seed``, never by
        execution order), so the parallel path is bitwise identical to the
        serial one.
        """
        points = [
            (self, compiled, test_data, rate, metric, policy or self.policy)
            for rate in rates
        ]
        scores = map_with_pool(_protection_point, points, workers)
        return dict(zip(rates, scores))

    # ------------------------------------------------------------------
    def ideal_reference(
        self,
        compiled: CompiledModel,
        test_data: ArrayDataset,
        metric: str = "accuracy",
    ) -> float:
        """Noise-free INT8 baseline (the 'Baseline' series of Fig. 12)."""
        deployed = self.deploy(compiled, noise=NoiseSpec.noiseless())
        return self.evaluate(deployed, test_data, compiled.task_type, metric=metric)


def _protection_point(
    point: tuple["HyFlexPim", CompiledModel, ArrayDataset, float, str, str],
) -> float:
    """Evaluate one protection rate (module-level so pools can pickle it)."""
    hfp, compiled, test_data, rate, metric, policy = point
    variant = compiled.with_protection(rate, policy=policy)
    deployed = hfp.deploy(variant)
    return hfp.evaluate(deployed, test_data, compiled.task_type, metric=metric)
