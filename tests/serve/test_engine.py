"""Tests for the batched serving engine and its KV-cache slot pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DecoderLM, TransformerConfig
from repro.serve import CacheSlotPool, ServingEngine


@pytest.fixture
def model():
    return DecoderLM(
        TransformerConfig(
            vocab_size=40,
            d_model=32,
            num_heads=4,
            num_layers=2,
            d_ff=64,
            max_seq_len=32,
            seed=5,
        )
    )


class FakeClock:
    """Deterministic injectable time source for batching-policy tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSubmitValidation:
    def test_rejects_empty_prompt(self, model):
        engine = ServingEngine(model)
        with pytest.raises(ValueError):
            engine.submit(np.array([], dtype=int), 4)

    def test_rejects_over_capacity_request(self, model, rng):
        engine = ServingEngine(model)
        with pytest.raises(ValueError):
            engine.submit(rng.integers(0, 40, size=30), 10)

    def test_ids_are_unique_and_ordered(self, model, rng):
        engine = ServingEngine(model)
        ids = [engine.submit(rng.integers(0, 40, size=4), 2) for _ in range(3)]
        assert ids == [0, 1, 2]
        assert engine.pending == 3


class TestDynamicBatching:
    def test_full_batch_runs_immediately(self, model, rng):
        clock = FakeClock()
        engine = ServingEngine(model, max_batch_size=2, max_wait_s=10.0, clock=clock, scheduler="static")
        engine.submit(rng.integers(0, 40, size=4), 2)
        assert engine.step() == []  # partial batch, wait budget not exhausted
        engine.submit(rng.integers(0, 40, size=4), 2)
        results = engine.step()  # max_batch reached -> cut now
        assert len(results) == 2
        assert all(r.batch_size == 2 for r in results)

    def test_max_wait_cuts_partial_batch(self, model, rng):
        clock = FakeClock()
        engine = ServingEngine(model, max_batch_size=4, max_wait_s=1.0, clock=clock, scheduler="static")
        engine.submit(rng.integers(0, 40, size=4), 2)
        assert engine.step() == []
        clock.now = 1.5  # oldest request has now waited past max_wait_s
        results = engine.step()
        assert len(results) == 1

    def test_run_until_idle_drains_everything(self, model, rng):
        engine = ServingEngine(model, max_batch_size=3, max_wait_s=100.0, scheduler="static")
        for _ in range(7):
            engine.submit(rng.integers(0, 40, size=5), 3)
        results = engine.run_until_idle()
        assert len(results) == 7
        assert engine.pending == 0
        assert engine.stats.batches == 3  # 3 + 3 + 1

    def test_queue_is_fifo(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2, scheduler="static")
        ids = [engine.submit(rng.integers(0, 40, size=4), 2) for _ in range(4)]
        first = engine.step(force=True)
        assert sorted(r.request_id for r in first) == ids[:2]


class TestServedOutputs:
    def test_engine_matches_per_prompt_generate(self, model, rng):
        """Dynamic-batched ragged serving ≡ one-at-a-time generation."""
        engine = ServingEngine(model, max_batch_size=4)
        prompts = [rng.integers(0, 40, size=n) for n in (3, 9, 5, 7, 4)]
        results = engine.serve(prompts, max_new_tokens=6)
        for prompt, result in zip(prompts, results):
            solo = model.generate(prompt, 6)
            np.testing.assert_array_equal(result.tokens, solo[len(prompt) :])
            np.testing.assert_array_equal(result.full_sequence, solo)

    def test_eos_truncates_result(self, model, rng):
        prompt = rng.integers(0, 40, size=5)
        free = model.generate(prompt, 6)
        eos = int(free[5])
        engine = ServingEngine(model, eos_id=eos)
        [result] = engine.serve([prompt], max_new_tokens=6)
        assert result.tokens.tolist() == [eos]

    def test_per_request_budgets(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2)
        a = engine.submit(rng.integers(0, 40, size=4), 3)
        b = engine.submit(rng.integers(0, 40, size=6), 8)
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[a].tokens.size == 3
        assert results[b].tokens.size == 8


class TestStats:
    def test_throughput_accounting(self, model, rng):
        engine = ServingEngine(model, max_batch_size=4)
        engine.serve([rng.integers(0, 40, size=4) for _ in range(4)], max_new_tokens=5)
        stats = engine.stats
        assert stats.requests_completed == 4
        assert stats.tokens_generated == 20
        assert stats.tokens_per_s > 0
        assert stats.mean_batch_size == 4.0
        assert len(stats.latencies_s) == 4
        payload = stats.as_dict()
        assert payload["tokens_generated"] == 20

    def test_gemv_stats_zero_without_pim(self, model, rng):
        engine = ServingEngine(model)
        engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
        assert not engine.is_pim_deployed()
        assert engine.gemv_stats().adc_conversions == 0


class TestSlotPool:
    def test_hits_after_first_batch(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2)
        for _ in range(3):
            engine.serve([rng.integers(0, 40, size=4), rng.integers(0, 40, size=4)], 2)
        pool = engine.slot_pool.stats
        assert pool.misses == 1
        assert pool.hits == 2

    def test_eviction_when_full(self, model):
        pool = CacheSlotPool(model, max_slots=1)
        a = pool.acquire(1)
        b = pool.acquire(2)
        pool.release(a)
        pool.release(b)  # evicts a (LRU)
        assert pool.stats.evictions == 1
        assert pool.free_slots == 1
        # batch-2 slot survived; batch-1 must be re-allocated
        pool.acquire(2)
        assert pool.stats.hits == 1

    def test_rejects_bad_max_slots(self, model):
        with pytest.raises(ValueError):
            CacheSlotPool(model, max_slots=0)


class TestPimDeployment:
    def test_deploy_attaches_calibrates_and_serves(self, rng):
        from repro.core import HyFlexPim
        from repro.datasets import wikitext2_like

        corpus = wikitext2_like(seed=0)
        config = TransformerConfig(
            vocab_size=corpus.spec.vocab_size,
            d_model=16,
            num_heads=2,
            num_layers=1,
            d_ff=32,
            max_seq_len=corpus.spec.seq_len,
            seed=0,
        )
        lm = DecoderLM(config)
        hfp = HyFlexPim(protect_fraction=0.2, epochs=1, batch_size=16, seed=0)
        compiled = hfp.compile(lm, corpus.train, task_type="lm")
        engine = ServingEngine.deploy(
            compiled.model,
            compiled.plan.layers,
            calibration_prompts=corpus.train.inputs[:2],
            mode="crossbar",
            max_batch_size=2,
        )
        assert engine.is_pim_deployed()
        assert all(layer.is_calibrated for layer in engine.hybrid_layers.values())
        results = engine.serve([corpus.train.inputs[0][:5]], max_new_tokens=3)
        assert results[0].tokens.size == 3
        # Served traffic accumulates crossbar operation counts for the
        # energy/latency models.
        stats = engine.gemv_stats()
        assert stats.adc_conversions > 0
        assert stats.wordline_activations > 0

    def test_deploy_fast_mode_skips_activation_calibration(self, rng):
        from repro.svd.pipeline import LayerPlan

        config = TransformerConfig(
            vocab_size=40, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, seed=0,
        )
        lm = DecoderLM(config)
        plans = {}
        for name, linear in lm.iter_static_linears():
            out_f, in_f = linear.weight.data.shape
            r = min(out_f, in_f)
            mask = np.zeros(r, dtype=bool)
            mask[: r // 4] = True
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(r),
            )
        engine = ServingEngine.deploy(
            lm, plans, calibration_prompts=rng.integers(0, 40, size=(2, 6)), mode="fast"
        )
        assert engine.is_pim_deployed()
        assert not any(layer.is_calibrated for layer in engine.hybrid_layers.values())
        [result] = engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
        assert result.tokens.size == 2


class TestReviewRegressions:
    def test_jointly_incompatible_requests_split_into_batches(self, model, rng):
        """Long-prompt/short-budget + short-prompt/long-budget both fit alone
        but not together (32 positions); the static batch cut must split
        them, not crash and drop them.  (The continuous scheduler has no
        joint geometry — see tests/serve/test_continuous.py.)"""
        engine = ServingEngine(model, max_batch_size=2, scheduler="static")
        a = engine.submit(rng.integers(0, 40, size=24), 8)
        b = engine.submit(rng.integers(0, 40, size=4), 28)
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[a].tokens.size == 8
        assert results[b].tokens.size == 28
        assert results[a].batch_size == 1 and results[b].batch_size == 1
        assert engine.pending == 0

    def test_compatible_requests_still_share_a_batch(self, model, rng):
        engine = ServingEngine(model, max_batch_size=2, scheduler="static")
        engine.submit(rng.integers(0, 40, size=8), 4)
        engine.submit(rng.integers(0, 40, size=6), 6)
        results = engine.run_until_idle()
        assert [r.batch_size for r in results] == [2, 2]

    def test_serve_preserves_earlier_submissions(self, model, rng):
        """serve() drains earlier submit()s too; their results must remain
        claimable instead of being silently discarded."""
        engine = ServingEngine(model, max_batch_size=4)
        prompt_early = rng.integers(0, 40, size=5)
        early = engine.submit(prompt_early, 4)
        [late_result] = engine.serve([rng.integers(0, 40, size=6)], max_new_tokens=3)
        assert late_result.tokens.size == 3
        early_result = engine.pop_result(early)
        assert early_result is not None
        np.testing.assert_array_equal(
            early_result.tokens, model.generate(prompt_early, 4)[5:]
        )
        assert engine.pop_result(early) is None  # claimed exactly once

    def test_per_row_budget_rows_stop_early(self, model, rng):
        """Array max_new_tokens: each row decodes to its own budget and
        matches the same prompt generated alone with that budget."""
        prompts = rng.integers(0, 40, size=(3, 6))
        budgets = np.array([2, 7, 4])
        out = model.generate(prompts, budgets)
        assert out.shape == (3, 6 + 7)
        for i in range(3):
            solo = model.generate(prompts[i], int(budgets[i]))
            np.testing.assert_array_equal(out[i, : 6 + budgets[i]], solo)
            # Tail past a row's own budget stays padded.
            np.testing.assert_array_equal(
                out[i, 6 + budgets[i] :], np.zeros(7 - budgets[i], dtype=np.int64)
            )

    def test_all_rows_done_stops_decode_forwards(self, model, rng):
        """Once every row's budget is spent the decode loop must not keep
        running forwards to some batch-wide maximum."""
        calls = {"n": 0}
        original = type(model).forward

        def counting(self_, token_ids, cache=None):
            calls["n"] += 1
            return original(self_, token_ids, cache=cache)

        type(model).forward = counting
        try:
            model.generate(rng.integers(0, 40, size=(2, 5)), np.array([1, 1]))
        finally:
            type(model).forward = original
        assert calls["n"] == 1  # prefill only; both rows spent after step 0

    def test_calibration_traffic_excluded_from_gemv_stats(self, rng):
        """Deploy-time calibration forwards must not pollute the served-
        traffic energy accounting."""
        from repro.svd.pipeline import LayerPlan

        config = TransformerConfig(
            vocab_size=40, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, seed=0,
        )
        lm = DecoderLM(config)
        plans = {}
        for name, linear in lm.iter_static_linears():
            out_f, in_f = linear.weight.data.shape
            r = min(out_f, in_f)
            mask = np.zeros(r, dtype=bool)
            mask[: r // 4] = True
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(r),
            )
        engine = ServingEngine.deploy(
            lm, plans,
            calibration_prompts=rng.integers(0, 40, size=(4, 8)),
            mode="crossbar",
        )
        assert engine.gemv_stats().adc_conversions == 0  # calibration wiped
        engine.serve([rng.integers(0, 40, size=4)], max_new_tokens=2)
        assert engine.gemv_stats().adc_conversions > 0  # served traffic counts

    def test_submit_rejects_negative_budget(self, model, rng):
        """A bad budget must be rejected at submit() — inside a batch it
        would crash generate() and destroy co-batched requests."""
        engine = ServingEngine(model)
        with pytest.raises(ValueError):
            engine.submit(rng.integers(0, 40, size=4), -1)
        good = engine.submit(rng.integers(0, 40, size=4), 0)
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert results[good].tokens.size == 0

    def test_calibration_runs_in_eval_mode(self, rng):
        """Calibration must observe dropout-free activations: two deploys of
        the same dropout>0 model freeze identical scales."""
        from repro.svd.pipeline import LayerPlan

        config = TransformerConfig(
            vocab_size=40, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, dropout=0.3, seed=0,
        )
        lm = DecoderLM(config)
        plans = {}
        for name, linear in lm.iter_static_linears():
            out_f, in_f = linear.weight.data.shape
            r = min(out_f, in_f)
            mask = np.zeros(r, dtype=bool)
            mask[: r // 4] = True
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(r, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, r)) / np.sqrt(r),
                bias=None,
                protected_ranks=mask,
                sigma_gradients=rng.random(r),
            )
        calib = rng.integers(0, 40, size=(4, 8))
        scales = []
        for _ in range(2):
            engine = ServingEngine.deploy(
                lm, plans, calibration_prompts=calib, mode="crossbar"
            )
            scales.append(
                [float(np.asarray(layer._x_params.scale)) for layer in engine.hybrid_layers.values()]
            )
        assert scales[0] == scales[1]
